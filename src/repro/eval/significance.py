"""Statistical significance for method comparisons.

The paper reports mean Precision@N without significance tests; a careful
redo should say whether "TAT > baseline" survives query-sampling noise.
This module implements the standard **paired bootstrap** over per-query
precision scores: resample the query set with replacement many times and
count how often the mean difference favors the treatment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ReproError


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of one paired bootstrap comparison."""

    mean_difference: float    # treatment − baseline, observed
    p_value: float            # P(difference <= 0) under resampling
    n_queries: int
    n_resamples: int

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05, one-sided."""
        return self.p_value < 0.05


def paired_bootstrap(
    treatment: Sequence[float],
    baseline: Sequence[float],
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapResult:
    """One-sided paired bootstrap: is the treatment's mean truly higher?

    *treatment* and *baseline* hold one score per query, aligned — e.g.
    per-query Precision@10 of two methods on the same workload.
    """
    if len(treatment) != len(baseline):
        raise ReproError("paired samples must align")
    if not treatment:
        raise ReproError("no samples")
    if n_resamples < 1:
        raise ReproError("n_resamples must be >= 1")

    differences = [t - b for t, b in zip(treatment, baseline)]
    n = len(differences)
    observed = sum(differences) / n

    rng = random.Random(seed)
    not_better = 0
    for _ in range(n_resamples):
        resampled = sum(
            differences[rng.randrange(n)] for _ in range(n)
        ) / n
        if resampled <= 0:
            not_better += 1
    return BootstrapResult(
        mean_difference=observed,
        p_value=not_better / n_resamples,
        n_queries=n,
        n_resamples=n_resamples,
    )


def per_query_precision(
    verdict_lists: Sequence[Sequence[bool]], n: int
) -> List[float]:
    """Per-query Precision@n vector (the bootstrap's sample unit)."""
    from repro.eval.metrics import precision_at

    return [precision_at(v, n) for v in verdict_lists]
