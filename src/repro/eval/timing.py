"""Timing harness utilities for the efficiency experiments (Fig 7-10).

Wraps repeated measurements with warmup, returns simple statistics, and
groups measurements by a workload attribute (e.g. query length) the way
the paper's figures bucket their x-axes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


@dataclass(frozen=True)
class TimingStats:
    """Summary statistics of one measured group (seconds)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    total: float

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "TimingStats":
        """Summarize a non-empty list of second-samples."""
        if not samples:
            raise ReproError("no timing samples")
        return TimingStats(
            count=len(samples),
            mean=sum(samples) / len(samples),
            minimum=min(samples),
            maximum=max(samples),
            total=sum(samples),
        )


def measure(fn: Callable[[], T]) -> Tuple[float, T]:
    """One wall-clock measurement of *fn*; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def measure_many(
    fn: Callable[[], T], repeats: int = 3, warmup: int = 1
) -> TimingStats:
    """Repeat *fn* with warmup rounds excluded from the statistics."""
    if repeats < 1:
        raise ReproError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples = [measure(fn)[0] for _ in range(repeats)]
    return TimingStats.from_samples(samples)


def grouped_timings(
    items: Iterable[T],
    key: Callable[[T], int],
    run: Callable[[T], None],
) -> Dict[int, TimingStats]:
    """Measure ``run(item)`` for every item, bucketing samples by *key*.

    This is the Figure 7/8 shape: items are workload queries, the key is
    the query length, the result maps length -> timing stats.
    """
    samples: Dict[int, List[float]] = {}
    for item in items:
        seconds, _ = measure(lambda it=item: run(it))
        samples.setdefault(key(item), []).append(seconds)
    return {
        group: TimingStats.from_samples(vals)
        for group, vals in sorted(samples.items())
    }
