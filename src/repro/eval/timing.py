"""Timing harness utilities for the efficiency experiments (Fig 7-10).

Wraps repeated measurements with warmup, returns simple statistics, and
groups measurements by a workload attribute (e.g. query length) the way
the paper's figures bucket their x-axes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an ascending-sorted sample list."""
    if not 0.0 <= q <= 1.0:
        raise ReproError("quantile must be within [0, 1]")
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


@dataclass(frozen=True)
class TimingStats:
    """Summary statistics of one measured group (seconds).

    ``median`` and ``p95`` are linear-interpolated quantiles of the
    sample list — with few repeats p95 leans on the slowest sample, which
    is the honest reading for tail-latency reporting.
    """

    count: int
    mean: float
    minimum: float
    maximum: float
    total: float
    median: float = 0.0
    p95: float = 0.0

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "TimingStats":
        """Summarize a non-empty list of second-samples."""
        if not samples:
            raise ReproError("no timing samples")
        ordered = sorted(samples)
        return TimingStats(
            count=len(samples),
            mean=sum(samples) / len(samples),
            minimum=ordered[0],
            maximum=ordered[-1],
            total=sum(samples),
            median=_quantile(ordered, 0.5),
            p95=_quantile(ordered, 0.95),
        )


def measure(fn: Callable[[], T]) -> Tuple[float, T]:
    """One wall-clock measurement of *fn*; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def measure_many(
    fn: Callable[[], T], repeats: int = 3, warmup: int = 1
) -> TimingStats:
    """Repeat *fn* with warmup rounds excluded from the statistics."""
    if repeats < 1:
        raise ReproError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples = [measure(fn)[0] for _ in range(repeats)]
    return TimingStats.from_samples(samples)


def grouped_timings(
    items: Iterable[T],
    key: Callable[[T], int],
    run: Callable[[T], None],
) -> Dict[int, TimingStats]:
    """Measure ``run(item)`` for every item, bucketing samples by *key*.

    This is the Figure 7/8 shape: items are workload queries, the key is
    the query length, the result maps length -> timing stats.
    """
    samples: Dict[int, List[float]] = {}
    for item in items:
        seconds, _ = measure(lambda it=item: run(it))
        samples.setdefault(key(item), []).append(seconds)
    return {
        group: TimingStats.from_samples(vals)
        for group, vals in sorted(samples.items())
    }
