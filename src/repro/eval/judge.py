"""Simulated relevance judges for Figure 5.

The paper asked three human evaluators to judge whether each reformulated
query is relevant to the original ("the similarity and semantic closeness
of reformulated ones with respect to the input query").  We replace the
humans with judges that consult the *latent topic assignments* of the
synthetic corpus — information the reformulation pipeline never sees:

* a substituted term is acceptable when it shares a latent topic (or a
  declared related topic) with the term it replaced;
* the whole query must be *cohesive*: it still has at least one joined
  keyword-search result in the database.

To mirror the paper's three-evaluator setup, a panel of three judges with
slightly different strictness votes, and the majority decides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.scoring import ScoredQuery
from repro.data.dblp_synth import GroundTruth
from repro.errors import ReproError
from repro.search.keyword import KeywordSearchEngine


@dataclass(frozen=True)
class JudgeConfig:
    """Strictness knobs of one judge."""

    #: require every substituted term to be topic-compatible
    require_all_terms: bool = True
    #: require the reformulated query to have non-empty search results
    require_cohesion: bool = True
    #: minimum fraction of topic-compatible substitutions (used when
    #: require_all_terms is False)
    min_term_fraction: float = 0.5


class RelevanceJudge:
    """One simulated evaluator."""

    def __init__(
        self,
        ground_truth: GroundTruth,
        search: Optional[KeywordSearchEngine] = None,
        config: Optional[JudgeConfig] = None,
    ) -> None:
        self.ground_truth = ground_truth
        self.search = search
        self.config = config or JudgeConfig()

    def is_relevant(
        self, original: Sequence[str], reformulated: ScoredQuery
    ) -> bool:
        """Judge one reformulated query against the original."""
        new_terms = list(reformulated.terms)
        if len(new_terms) != len(original):
            raise ReproError(
                "reformulated query has different positional length than input"
            )
        query_topics = set()
        for term in original:
            query_topics |= self.ground_truth.topics_of_term(term)
        verdicts: List[bool] = []
        for old, new in zip(original, new_terms):
            if new is None:
                continue  # deleted term: judged by cohesion only
            verdicts.append(self._term_verdict(old, new, query_topics))
        if not verdicts:
            return False
        if self.config.require_all_terms:
            terms_ok = all(verdicts)
        else:
            terms_ok = (
                sum(verdicts) / len(verdicts) >= self.config.min_term_fraction
            )
        if not terms_ok:
            return False
        if self.config.require_cohesion and self.search is not None:
            return self.search.is_cohesive(list(reformulated.keywords))
        return True

    def _term_verdict(self, old: str, new: str, query_topics) -> bool:
        """Judge one substitution.

        A topical original term must be replaced by a topic-compatible
        term.  A *topic-free* original (filler like "scalable", or an
        out-of-vocabulary word) carries no intent of its own, so its
        replacement is judged against the query's overall topics instead:
        acceptable when the new term is filler too or fits the query.
        """
        if old == new:
            return True
        old_topics = self.ground_truth.topics_of_term(old)
        new_topics = self.ground_truth.topics_of_term(new)
        if old_topics:
            return self.ground_truth.terms_relevant(old, new)
        if not new_topics:
            return True  # filler swapped for filler
        if not query_topics:
            return True  # fully generic query: anything goes
        model = self.ground_truth.topic_model
        return any(
            model.topics_related(qt, nt)
            for qt in query_topics
            for nt in new_topics
        )


class JudgePanel:
    """Three judges, majority vote — the paper's evaluator setup."""

    def __init__(
        self,
        ground_truth: GroundTruth,
        search: Optional[KeywordSearchEngine] = None,
    ) -> None:
        self.judges = [
            RelevanceJudge(ground_truth, search, JudgeConfig()),
            RelevanceJudge(
                ground_truth,
                search,
                JudgeConfig(require_all_terms=False, min_term_fraction=0.67),
            ),
            RelevanceJudge(
                ground_truth,
                search,
                JudgeConfig(require_cohesion=False),
            ),
        ]

    def is_relevant(
        self, original: Sequence[str], reformulated: ScoredQuery
    ) -> bool:
        """Majority vote of the three judges."""
        votes = sum(
            1
            for judge in self.judges
            if judge.is_relevant(original, reformulated)
        )
        return votes * 2 > len(self.judges)

    def judge_ranking(
        self, original: Sequence[str], ranking: Sequence[ScoredQuery]
    ) -> List[bool]:
        """Relevance verdict for each ranked reformulation, in order."""
        return [self.is_relevant(original, q) for q in ranking]
