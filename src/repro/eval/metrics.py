"""Evaluation metrics of Section VI.

* **Precision@N** (Figure 5): fraction of the top-N reformulations judged
  relevant, averaged over the query set;
* **Result size** (Table III): average number of keyword-search results of
  the top-10 reformulations;
* **Query distance** (Table III): average shortest-path TAT-graph distance
  between corresponding term pairs of the original and reformulated query
  — the diversity indicator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.scoring import ScoredQuery
from repro.errors import ReproError, UnknownNodeError
from repro.graph.closeness import ClosenessExtractor
from repro.graph.tat import TATGraph
from repro.search.keyword import KeywordSearchEngine


def precision_at(verdicts: Sequence[bool], n: int) -> float:
    """Precision@n for one ranked verdict list.

    When fewer than *n* results were returned, the missing tail counts as
    irrelevant (the system failed to produce enough suggestions).
    """
    if n < 1:
        raise ReproError("n must be >= 1")
    top = list(verdicts[:n])
    return sum(top) / n


def mean_precision_at(
    all_verdicts: Sequence[Sequence[bool]], n: int
) -> float:
    """Average Precision@n over a query set."""
    if not all_verdicts:
        raise ReproError("empty verdict set")
    return sum(precision_at(v, n) for v in all_verdicts) / len(all_verdicts)


def precision_curve(
    all_verdicts: Sequence[Sequence[bool]],
    positions: Sequence[int] = (1, 3, 5, 7, 10),
) -> Dict[int, float]:
    """The Figure 5 curve: Precision@N at the paper's rank positions."""
    return {n: mean_precision_at(all_verdicts, n) for n in positions}


@dataclass(frozen=True)
class QualityReport:
    """Table III row for one method."""

    method: str
    result_size: float
    query_distance: float


class ResultQualityEvaluator:
    """Computes the Table III metrics for ranked reformulations."""

    def __init__(
        self,
        graph: TATGraph,
        search: KeywordSearchEngine,
        distance_extractor: Optional[ClosenessExtractor] = None,
    ) -> None:
        self.graph = graph
        self.search = search
        # Wide, deep extractor: distances need reach more than speed.
        self.distance = distance_extractor or ClosenessExtractor(
            graph, max_depth=6, beam_width=None
        )

    # ------------------------------------------------------------------ #
    # Table III metrics
    # ------------------------------------------------------------------ #

    def result_size(self, queries: Sequence[ScoredQuery]) -> float:
        """Average search-result count over reformulated queries."""
        if not queries:
            return 0.0
        total = sum(
            self.search.result_size(list(q.keywords)) for q in queries
        )
        return total / len(queries)

    def query_distance(
        self, original: Sequence[str], queries: Sequence[ScoredQuery]
    ) -> float:
        """Average TAT shortest-path distance of corresponding term pairs.

        Identical terms have distance 0; unreachable or unresolvable pairs
        fall back to the extractor's max depth + 1 (they are "far").
        """
        if not queries:
            return 0.0
        far = self.distance.max_depth + 1
        pair_distances: List[float] = []
        for query in queries:
            for old, new in zip(original, query.terms):
                if new is None:
                    continue
                if old == new:
                    pair_distances.append(0.0)
                    continue
                d = self._term_distance(old, new)
                pair_distances.append(float(d) if d is not None else float(far))
        if not pair_distances:
            return 0.0
        return sum(pair_distances) / len(pair_distances)

    def report(
        self,
        method: str,
        original: Sequence[str],
        queries: Sequence[ScoredQuery],
    ) -> QualityReport:
        """Both Table III metrics as one QualityReport row."""
        return QualityReport(
            method=method,
            result_size=self.result_size(queries),
            query_distance=self.query_distance(original, queries),
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _term_distance(self, a: str, b: str) -> Optional[int]:
        try:
            node_a = self.graph.resolve_text_one(a)
            node_b = self.graph.resolve_text_one(b)
        except UnknownNodeError:
            return None
        return self.distance.distance(node_a, node_b)


def merge_reports(reports: Sequence[QualityReport]) -> QualityReport:
    """Average several per-query reports of the same method into one row."""
    if not reports:
        raise ReproError("no reports to merge")
    methods = {r.method for r in reports}
    if len(methods) != 1:
        raise ReproError(f"cannot merge different methods: {sorted(methods)}")
    n = len(reports)
    return QualityReport(
        method=reports[0].method,
        result_size=sum(r.result_size for r in reports) / n,
        query_distance=sum(r.query_distance for r in reports) / n,
    )
