"""Inter-judge agreement statistics.

The paper asked three evaluators to judge relevance without reporting
agreement; any rigorous redo should.  This module computes the standard
measures for the simulated panel:

* raw agreement — fraction of items all judges label identically;
* **Fleiss' kappa** — chance-corrected agreement for a fixed panel of n
  judges over binary (or categorical) labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.scoring import ScoredQuery
from repro.errors import ReproError
from repro.eval.judge import JudgePanel


@dataclass(frozen=True)
class AgreementReport:
    """Panel agreement over one judged item set."""

    n_items: int
    n_judges: int
    raw_agreement: float
    fleiss_kappa: float


def fleiss_kappa(label_matrix: Sequence[Sequence[int]]) -> float:
    """Fleiss' kappa for categorical labels.

    *label_matrix* holds one row per item; each row lists every judge's
    label (any hashable coded as int).  Returns 1.0 for perfect
    agreement, ~0 for chance-level, negative for worse than chance.
    Degenerate case: if every judge gives every item the same single
    category, agreement is perfect by definition (kappa 1.0) even though
    the chance correction is undefined.
    """
    if not label_matrix:
        raise ReproError("no items to compute agreement over")
    n_judges = len(label_matrix[0])
    if n_judges < 2:
        raise ReproError("agreement needs at least two judges")
    if any(len(row) != n_judges for row in label_matrix):
        raise ReproError("every item needs the same number of judgements")

    categories = sorted({label for row in label_matrix for label in row})
    n_items = len(label_matrix)

    # per-item agreement P_i and per-category proportions p_j
    category_counts = {c: 0 for c in categories}
    p_i_sum = 0.0
    for row in label_matrix:
        counts = {c: 0 for c in categories}
        for label in row:
            counts[label] += 1
            category_counts[label] += 1
        p_i = (
            sum(v * v for v in counts.values()) - n_judges
        ) / (n_judges * (n_judges - 1))
        p_i_sum += p_i
    p_bar = p_i_sum / n_items
    total = n_items * n_judges
    p_e = sum((v / total) ** 2 for v in category_counts.values())
    if p_e >= 1.0:
        return 1.0  # single category everywhere: perfect by definition
    return (p_bar - p_e) / (1.0 - p_e)


def raw_agreement(label_matrix: Sequence[Sequence[int]]) -> float:
    """Fraction of items on which every judge agrees."""
    if not label_matrix:
        raise ReproError("no items to compute agreement over")
    unanimous = sum(1 for row in label_matrix if len(set(row)) == 1)
    return unanimous / len(label_matrix)


def panel_agreement(
    panel: JudgePanel,
    judged: Sequence[tuple],
) -> AgreementReport:
    """Agreement of a :class:`JudgePanel` over (original, suggestion) pairs.

    *judged* holds ``(original_keywords, ScoredQuery)`` pairs; each judge
    of the panel labels every pair independently.
    """
    if not judged:
        raise ReproError("no judged items")
    matrix: List[List[int]] = []
    for original, suggestion in judged:
        matrix.append([
            int(judge.is_relevant(list(original), suggestion))
            for judge in panel.judges
        ])
    return AgreementReport(
        n_items=len(matrix),
        n_judges=len(panel.judges),
        raw_agreement=raw_agreement(matrix),
        fleiss_kappa=fleiss_kappa(matrix),
    )
