"""Evaluation: metrics, simulated judges and timing harness."""

from repro.eval.agreement import (
    AgreementReport,
    fleiss_kappa,
    panel_agreement,
    raw_agreement,
)
from repro.eval.judge import JudgeConfig, JudgePanel, RelevanceJudge
from repro.eval.significance import (
    BootstrapResult,
    paired_bootstrap,
    per_query_precision,
)
from repro.eval.metrics import (
    QualityReport,
    ResultQualityEvaluator,
    mean_precision_at,
    merge_reports,
    precision_at,
    precision_curve,
)
from repro.eval.timing import (
    TimingStats,
    grouped_timings,
    measure,
    measure_many,
)

__all__ = [
    "AgreementReport",
    "fleiss_kappa",
    "panel_agreement",
    "raw_agreement",
    "BootstrapResult",
    "paired_bootstrap",
    "per_query_precision",
    "JudgeConfig",
    "JudgePanel",
    "RelevanceJudge",
    "QualityReport",
    "ResultQualityEvaluator",
    "mean_precision_at",
    "merge_reports",
    "precision_at",
    "precision_curve",
    "TimingStats",
    "grouped_timings",
    "measure",
    "measure_many",
]
