"""Lane-vs-lane evaluation: replay one workload through two lanes.

The lane subsystem makes reformulation strategies swappable per request;
this module makes them *comparable*.  A workload is replayed through two
lanes of one :class:`~repro.lanes.router.LaneRouter`, every ranking is
judged by the paper's three-judge panel, and the per-query Precision@k
vectors go through the paired bootstrap of
:mod:`repro.eval.significance` — the same machinery the offline quality
experiments use, so lane A/B deltas are directly comparable to the
paper-replication numbers.

Two extra measurements cover what precision cannot see:

* :func:`fallback_coverage` — of the queries whose hmm best path is
  *incohesive* (below the router's threshold), what fraction does the
  relaxation lane still answer non-emptily?  This is the lane
  subsystem's reason to exist: the acceptance bar is ≥ 95 %.
* relaxed/fallback rates per arm, so a quality win can be attributed to
  substitution or to relaxation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.eval.judge import JudgePanel
from repro.eval.significance import (
    BootstrapResult,
    paired_bootstrap,
    per_query_precision,
)
from repro.lanes.base import LaneResult
from repro.lanes.router import LaneRouter


@dataclass(frozen=True)
class LaneArm:
    """One lane's replay over one workload."""

    lane: str
    results: Tuple[LaneResult, ...]
    #: Per-query Precision@k, aligned with the workload (bootstrap input).
    precision: Tuple[float, ...]
    #: Fraction of queries answered with at least one suggestion.
    answered: float
    #: Fraction of queries answered with relaxed suggestions.
    relaxed: float
    #: Fraction of queries that went through the fallback chain.
    fell_back: float

    @property
    def mean_precision(self) -> float:
        """Macro-averaged Precision@k over the workload."""
        return sum(self.precision) / len(self.precision)


@dataclass(frozen=True)
class LaneComparison:
    """Judged A/B of two lanes on one workload (A is the treatment)."""

    arm_a: LaneArm
    arm_b: LaneArm
    bootstrap: BootstrapResult

    @property
    def delta(self) -> float:
        """Mean Precision@k difference, arm A minus arm B."""
        return self.arm_a.mean_precision - self.arm_b.mean_precision


@dataclass(frozen=True)
class FallbackCoverage:
    """How completely relaxation rescues incohesive queries."""

    n_queries: int
    n_low_cohesion: int
    n_answered: int

    @property
    def coverage(self) -> float:
        """Answered fraction of the low-cohesion queries (1.0 if none)."""
        if self.n_low_cohesion == 0:
            return 1.0
        return self.n_answered / self.n_low_cohesion


def replay_lane(
    router: LaneRouter,
    queries: Sequence[Sequence[str]],
    lane: str,
    k: int = 10,
    algorithm: str = "astar",
) -> List[LaneResult]:
    """Route every query through one lane, preserving workload order."""
    return [
        router.route(list(query), k=k, lane=lane, algorithm=algorithm)
        for query in queries
    ]


def judge_arm(
    panel: JudgePanel,
    queries: Sequence[Sequence[str]],
    results: Sequence[LaneResult],
    lane: str,
    k: int,
) -> LaneArm:
    """Judge one lane's replay into a :class:`LaneArm`.

    Suggestions whose positional length differs from the input (the
    schema lane decodes with schema tokens removed) are judged against
    the lane's own decoded query, taken from the result metadata.
    """
    verdicts: List[List[bool]] = []
    answered = relaxed = fell_back = 0
    for query, result in zip(queries, results):
        reference = list(query)
        decoded = result.metadata.get("decoded_query")
        if decoded is not None:
            reference = list(decoded)
        judgeable = [
            s for s in result.suggestions if len(s.terms) == len(reference)
        ]
        verdicts.append(panel.judge_ranking(reference, judgeable))
        answered += bool(result.suggestions)
        relaxed += result.relaxed
        fell_back += result.fallback_from is not None
    n = len(verdicts)
    if n == 0:
        raise ReproError("cannot judge an empty workload")
    return LaneArm(
        lane=lane,
        results=tuple(results),
        precision=tuple(per_query_precision(verdicts, k)),
        answered=answered / n,
        relaxed=relaxed / n,
        fell_back=fell_back / n,
    )


def compare_lanes(
    router: LaneRouter,
    panel: JudgePanel,
    queries: Sequence[Sequence[str]],
    lane_a: str,
    lane_b: str,
    k: int = 10,
    algorithm: str = "astar",
    n_resamples: int = 2000,
    seed: int = 0,
) -> LaneComparison:
    """Judged, significance-tested A/B of two lanes on one workload."""
    queries = [list(query) for query in queries]
    arm_a = judge_arm(
        panel, queries, replay_lane(router, queries, lane_a, k, algorithm),
        lane_a, k,
    )
    arm_b = judge_arm(
        panel, queries, replay_lane(router, queries, lane_b, k, algorithm),
        lane_b, k,
    )
    bootstrap = paired_bootstrap(
        arm_a.precision, arm_b.precision,
        n_resamples=n_resamples, seed=seed,
    )
    return LaneComparison(arm_a=arm_a, arm_b=arm_b, bootstrap=bootstrap)


def fallback_coverage(
    router: LaneRouter,
    queries: Sequence[Sequence[str]],
    k: int = 10,
    threshold: Optional[float] = None,
) -> FallbackCoverage:
    """Relaxation coverage of the workload's incohesive queries.

    Each query first runs through the ``hmm`` lane to measure its best
    path's cohesion; queries below *threshold* (default: the router's
    configured one) are then routed through ``relaxation``, and coverage
    is the fraction answered with at least one suggestion.
    """
    if threshold is None:
        threshold = router.config.cohesion_threshold
    low = answered = 0
    queries = [list(query) for query in queries]
    for query in queries:
        probe = router.route(query, k=k, lane="hmm")
        if probe.cohesion is None or probe.cohesion >= threshold:
            continue
        low += 1
        relaxed = router.route(query, k=k, lane="relaxation")
        answered += bool(relaxed.suggestions)
    return FallbackCoverage(
        n_queries=len(queries), n_low_cohesion=low, n_answered=answered
    )


__all__ = [
    "FallbackCoverage",
    "LaneArm",
    "LaneComparison",
    "compare_lanes",
    "fallback_coverage",
    "judge_arm",
    "replay_lane",
]
