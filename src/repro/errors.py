"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the storage, indexing, graph and
reformulation layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """Invalid schema definition (duplicate columns, bad references, ...)."""


class IntegrityError(ReproError):
    """A tuple violates a schema constraint (missing PK, dangling FK, ...)."""


class UnknownTableError(SchemaError):
    """A referenced table does not exist in the database."""


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in a table."""


class DuplicateKeyError(IntegrityError):
    """Primary key already present in the table."""


class IndexError_(ReproError):
    """Inverted-index failure (unknown field, empty analyzer output, ...)."""


class GraphError(ReproError):
    """TAT-graph construction or traversal failure."""


class UnknownNodeError(GraphError):
    """A node id is not present in the graph."""


class ConvergenceError(GraphError):
    """Random walk failed to converge within the iteration budget."""


class ReformulationError(ReproError):
    """Online query-generation failure."""


class EmptyCandidateError(ReformulationError):
    """A query term has no candidate states at all (not even itself)."""
