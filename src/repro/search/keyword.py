"""Keyword search over the tuple graph (the paper's substrate [5], [20]).

Implements backward-expansion search in the style of BANKS: every keyword
selects its matching tuples through the inverted index, BFS waves expand
simultaneously from each keyword's match set over the tuple graph, and a
node reached by *all* waves becomes the root of a joined-tuple-tree result
(Definition 3).  Trees are minimal by construction: each branch is a
shortest path from the root to one matched tuple.

The paper itself does not contribute a search algorithm — it needs one to
(a) validate cohesion of reformulated queries and (b) measure the "Result
size" column of Table III.  This module is that substrate.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.index.inverted import InvertedIndex
from repro.search.results import Edge, ResultSet, SearchResult
from repro.storage.database import TupleRef
from repro.storage.tuplegraph import TupleGraph


class KeywordSearchEngine:
    """Backward-expansion keyword search.

    Parameters
    ----------
    tuple_graph:
        Tuple graph of the target database.
    index:
        Built inverted index over the same database.
    max_depth:
        Maximum BFS radius per keyword wave; total tree diameter is at
        most ``2 * max_depth``.
    max_results:
        Stop after this many distinct results.
    """

    def __init__(
        self,
        tuple_graph: TupleGraph,
        index: InvertedIndex,
        max_depth: int = 3,
        max_results: int = 100,
    ) -> None:
        if max_depth < 0:
            raise ReproError("max_depth must be >= 0")
        if max_results < 1:
            raise ReproError("max_results must be >= 1")
        self.tuple_graph = tuple_graph
        self.index = index.build()
        self.max_depth = max_depth
        self.max_results = max_results
        # result_size is hammered by the evaluation (every judge re-checks
        # cohesion of the same reformulations); cache the counts.
        self._size_cache: Dict[Tuple[str, ...], int] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def search(self, keywords: List[str]) -> ResultSet:
        """Run a keyword query; returns minimal joined-tuple-tree results."""
        keywords = [k for k in (kw.strip() for kw in keywords) if k]
        result_set = ResultSet(query=tuple(keywords))
        if not keywords:
            return result_set

        match_sets = [self._matches(kw) for kw in keywords]
        if any(not m for m in match_sets):
            return result_set  # some keyword matches nothing -> no results

        if len(keywords) == 1:
            self._single_keyword(keywords[0], match_sets[0], result_set)
            return result_set

        self._multi_keyword(keywords, match_sets, result_set)
        return result_set

    def result_size(self, keywords: List[str]) -> int:
        """Number of results for *keywords* — Table III's metric (cached)."""
        key = tuple(keywords)
        cached = self._size_cache.get(key)
        if cached is None:
            cached = self.search(keywords).size
            self._size_cache[key] = cached
        return cached

    def is_cohesive(self, keywords: List[str]) -> bool:
        """True iff the query covers at least one joined result."""
        return self.result_size(keywords) > 0

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _matches(self, keyword: str) -> Dict[TupleRef, int]:
        return self.index.tuples_matching(keyword)

    def _single_keyword(
        self,
        keyword: str,
        matches: Dict[TupleRef, int],
        result_set: ResultSet,
    ) -> None:
        ranked = sorted(matches.items(), key=lambda item: (-item[1], item[0]))
        for ref, _tf in ranked:
            if len(result_set.results) >= self.max_results:
                result_set.truncated = True
                return
            result_set.results.append(
                SearchResult(
                    root=ref,
                    nodes=frozenset([ref]),
                    edges=frozenset(),
                    matches=((keyword, ref),),
                )
            )

    def _multi_keyword(
        self,
        keywords: List[str],
        match_sets: List[Dict[TupleRef, int]],
        result_set: ResultSet,
    ) -> None:
        n = len(keywords)
        # parents[i][node] = predecessor of node in keyword i's BFS wave
        parents: List[Dict[TupleRef, Optional[TupleRef]]] = []
        frontiers: List[List[TupleRef]] = []
        for matches in match_sets:
            wave: Dict[TupleRef, Optional[TupleRef]] = {
                ref: None for ref in matches
            }
            parents.append(wave)
            frontiers.append(list(matches))

        seen_signatures: Set[Tuple] = set()
        self._collect_roots(keywords, parents, seen_signatures, result_set)
        if len(result_set.results) >= self.max_results:
            result_set.truncated = True
            return

        for _depth in range(self.max_depth):
            progressed = False
            for i in range(n):
                next_frontier: List[TupleRef] = []
                for node in frontiers[i]:
                    for nbr in self.tuple_graph.neighbors(node):
                        if nbr in parents[i]:
                            continue
                        parents[i][nbr] = node
                        next_frontier.append(nbr)
                frontiers[i] = next_frontier
                if next_frontier:
                    progressed = True
            self._collect_roots(keywords, parents, seen_signatures, result_set)
            if len(result_set.results) >= self.max_results:
                result_set.truncated = True
                return
            if not progressed:
                return

    def _collect_roots(
        self,
        keywords: List[str],
        parents: List[Dict[TupleRef, Optional[TupleRef]]],
        seen: Set[Tuple],
        result_set: ResultSet,
    ) -> None:
        """Emit a result for every node currently reached by all waves."""
        common = set(parents[0])
        for wave in parents[1:]:
            common &= set(wave)
            if not common:
                return
        for root in sorted(common):
            result = self._build_tree(root, keywords, parents)
            if result is None:
                continue
            sig = result.signature()
            if sig in seen:
                continue
            seen.add(sig)
            result_set.results.append(result)
            if len(result_set.results) >= self.max_results:
                return

    def _build_tree(
        self,
        root: TupleRef,
        keywords: List[str],
        parents: List[Dict[TupleRef, Optional[TupleRef]]],
    ) -> Optional[SearchResult]:
        nodes: Set[TupleRef] = {root}
        edges: Set[Edge] = set()
        matches: List[Tuple[str, TupleRef]] = []
        for keyword, wave in zip(keywords, parents):
            # Walk from the root back to this keyword's matched tuple.
            path: List[TupleRef] = [root]
            node = root
            while wave[node] is not None:
                node = wave[node]
                path.append(node)
            matches.append((keyword, node))
            for a, b in zip(path, path[1:]):
                nodes.add(b)
                edges.add((a, b) if a <= b else (b, a))
        return SearchResult(
            root=root,
            nodes=frozenset(nodes),
            edges=frozenset(edges),
            matches=tuple(matches),
        )
