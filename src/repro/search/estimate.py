"""Result-size estimation from an offline corpus summary.

Section IV-C of the paper: fetching exact search results to validate
every candidate term combination "is especially prohibitive ... A
feasible approach is to summarize the target corpus by term pair
coverage, and estimate the result size of each query."

The summary stored here is one **reach ball** per term: the set of tuples
within *depth* hops of any tuple matching the term.  A joined-tuple-tree
result rooted at node *r* exists exactly when *r* lies within depth of
every keyword's match set, so

    |results(q1..qm)|  ≈  |B(q1) ∩ ... ∩ B(qm)|

— the intersection of the balls counts the candidate roots the
backward-expansion engine would discover.  Estimation is then pure set
intersection: no graph traversal at query time.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro.errors import ReproError
from repro.index.inverted import InvertedIndex
from repro.storage.database import TupleRef
from repro.storage.tuplegraph import TupleGraph


class ResultSizeEstimator:
    """Ball-intersection estimator for keyword-query result counts.

    Parameters
    ----------
    tuple_graph:
        Tuple graph of the corpus.
    index:
        Built inverted index over the same corpus.
    depth:
        Ball radius; must equal the ``max_depth`` of the search engine
        whose result counts are being estimated.
    """

    def __init__(
        self,
        tuple_graph: TupleGraph,
        index: InvertedIndex,
        depth: int = 2,
    ) -> None:
        if depth < 0:
            raise ReproError("depth must be >= 0")
        self.tuple_graph = tuple_graph
        self.index = index.build()
        self.depth = depth
        self._balls: Dict[str, FrozenSet[TupleRef]] = {}

    # ------------------------------------------------------------------ #
    # offline summary
    # ------------------------------------------------------------------ #

    def ball(self, keyword: str) -> FrozenSet[TupleRef]:
        """The reach ball of one keyword (cached)."""
        normalized = self.index.analyzer.normalize(keyword)
        cached = self._balls.get(normalized)
        if cached is not None:
            return cached
        matches = set(self.index.tuples_matching(normalized))
        reached = set(matches)
        frontier = list(matches)
        for _hop in range(self.depth):
            next_frontier: List[TupleRef] = []
            for node in frontier:
                for nbr in self.tuple_graph.neighbors(node):
                    if nbr not in reached:
                        reached.add(nbr)
                        next_frontier.append(nbr)
            frontier = next_frontier
        ball = frozenset(reached)
        self._balls[normalized] = ball
        return ball

    def precompute(self, keywords: Iterable[str]) -> None:
        """Offline stage: summarize a vocabulary of keywords."""
        for keyword in keywords:
            self.ball(keyword)

    def summary_size(self) -> int:
        """Total stored ball entries (the summary's memory footprint)."""
        return sum(len(ball) for ball in self._balls.values())

    # ------------------------------------------------------------------ #
    # online estimation
    # ------------------------------------------------------------------ #

    def estimate(self, keywords: Sequence[str]) -> int:
        """Estimated result count: size of the ball intersection."""
        keywords = [k for k in (kw.strip() for kw in keywords) if k]
        if not keywords:
            return 0
        balls = [self.ball(kw) for kw in keywords]
        if any(not b for b in balls):
            return 0
        smallest = min(balls, key=len)
        out = set(smallest)
        for ball in balls:
            if ball is smallest:
                continue
            out &= ball
            if not out:
                return 0
        return len(out)

    def is_cohesive(self, keywords: Sequence[str]) -> bool:
        """Estimated cohesion: non-empty ball intersection.

        Drop-in replacement for
        :meth:`~repro.search.keyword.KeywordSearchEngine.is_cohesive`
        where estimation speed matters more than exact counts.
        """
        return self.estimate(keywords) > 0
