"""Result ranking for keyword search.

The paper defers result ranking to prior work ([6], [21]); we implement a
standard combination so the demo (Figure 6) can show a sensible main
column: results are scored by the tf·idf mass of their keyword matches
divided by the tree size, so tight trees with rare matches rank first.
"""

from __future__ import annotations

from typing import List

from repro.index.inverted import InvertedIndex
from repro.search.results import ResultSet, SearchResult


class ResultRanker:
    """tf·idf-over-size scoring of joined-tuple-tree results."""

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index.build()

    def score(self, result: SearchResult) -> float:
        """Higher is better: total match weight / number of joined tuples."""
        weight = 0.0
        for keyword, ref in result.matches:
            for term in self.index.lookup_text(keyword):
                for posting in self.index.postings(term):
                    if posting.ref == ref:
                        weight += posting.tf * self.index.idf(term)
        return weight / max(1, result.size)

    def rank(self, result_set: ResultSet) -> ResultSet:
        """Return a new ResultSet sorted by descending score."""
        ranked = sorted(
            result_set.results,
            key=lambda r: (-self.score(r), r.size, r.root),
        )
        return ResultSet(
            query=result_set.query,
            results=ranked,
            truncated=result_set.truncated,
        )

    def top(self, result_set: ResultSet, n: int) -> List[SearchResult]:
        """Rank, then return the first n results."""
        return self.rank(result_set).top(n)
