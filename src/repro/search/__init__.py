"""Keyword search over structured data (the paper's search substrate)."""

from repro.search.estimate import ResultSizeEstimator
from repro.search.keyword import KeywordSearchEngine
from repro.search.ranking import ResultRanker
from repro.search.results import Edge, ResultSet, SearchResult

__all__ = [
    "KeywordSearchEngine",
    "ResultSizeEstimator",
    "ResultRanker",
    "Edge",
    "ResultSet",
    "SearchResult",
]
