"""Keyword-search result objects (Definition 3 of the paper).

A result is a subtree of the tuple graph connecting one matching tuple per
keyword such that "no node or edge can be removed without losing
connectivity or keyword matches".  We represent it by its root (the
connecting node), the set of tuple nodes and edges, and the keyword→tuple
match assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.storage.database import Database, TupleRef

Edge = Tuple[TupleRef, TupleRef]


@dataclass(frozen=True)
class SearchResult:
    """One joined-tuple-tree answer to a keyword query."""

    root: TupleRef
    nodes: FrozenSet[TupleRef]
    edges: FrozenSet[Edge]
    matches: Tuple[Tuple[str, TupleRef], ...]  # (keyword, matched tuple)

    @property
    def size(self) -> int:
        """Number of tuples joined in this result (smaller = tighter)."""
        return len(self.nodes)

    def keyword_tuples(self) -> Dict[str, TupleRef]:
        """keyword -> matched tuple mapping."""
        return dict(self.matches)

    def signature(self) -> Tuple:
        """Dedup key: same node set answering the same matches."""
        return (self.nodes, self.matches)

    def render(
        self,
        database: Database,
        text_limit: int = 60,
        highlight: bool = True,
    ) -> str:
        """Human-readable one-result rendering used by the examples.

        With *highlight* (default), matched keywords are wrapped in
        ``[..]`` inside the field snippets, so a reader sees at a glance
        why each tuple is in the tree.
        """
        keywords = [kw for kw, _ref in self.matches] if highlight else []
        lines: List[str] = []
        for ref in sorted(self.nodes):
            row = database.fetch_or_none(ref)
            if row is None:
                lines.append(f"  {ref[0]}#{ref[1]} (missing)")
                continue
            schema = database.table(ref[0]).schema
            texts = []
            for fname in schema.text_fields:
                value = row.get(fname)
                if value:
                    snippet = str(value)[:text_limit]
                    texts.append(_highlight(snippet, keywords))
            summary = " | ".join(texts) if texts else str(row)
            marker = "*" if ref == self.root else " "
            lines.append(f" {marker}{ref[0]}#{ref[1]}: {summary}")
        return "\n".join(lines)


def _highlight(snippet: str, keywords: List[str]) -> str:
    """Wrap case-insensitive whole-token keyword hits in ``[..]``."""
    if not keywords:
        return snippet
    lowered = {kw.lower() for kw in keywords}
    if snippet.lower() in lowered:
        return f"[{snippet}]"  # atomic field matched as a whole
    out = []
    for token in snippet.split(" "):
        if token.lower() in lowered:
            out.append(f"[{token}]")
        else:
            out.append(token)
    return " ".join(out)


@dataclass
class ResultSet:
    """An ordered collection of results for one query."""

    query: Tuple[str, ...]
    results: List[SearchResult] = field(default_factory=list)
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, idx: int) -> SearchResult:
        return self.results[idx]

    @property
    def size(self) -> int:
        """Result count — the 'Result size' metric of Table III."""
        return len(self.results)

    def top(self, n: int) -> List[SearchResult]:
        """The first n results."""
        return self.results[:n]
