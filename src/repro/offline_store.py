"""Sharded term-relation store — format version 2.

Format version 1 (:meth:`repro.offline.TermRelationStore.save`) is one
JSON document holding the whole vocabulary: loading it costs the full
parse even when the online stage touches a handful of terms.  Version 2
splits the vocabulary across shard files under one directory:

.. code-block:: text

    store/
      manifest.json        # format_version, shard list, checksums, build info
      shard-0000.json      # {"terms": {key: {"similar": ..., "closeness": ...}}}
      shard-0001.json
      ...

Term keys are assigned to shards by a stable CRC32 hash, so a reader can
locate any term's shard from the manifest alone.  The manifest carries a
SHA-256 checksum per shard (verified on first read) plus free-form build
metadata (batch size, workers, throughput, ...).

:class:`ShardedTermRelationStore` serves the full
:class:`~repro.offline.TermRelationStore` interface by overriding only
its storage accessors: opening a store parses *just* the manifest, shard
files are read lazily on first access, and an LRU of recently-used
decoded shards bounds resident memory.
"""

from __future__ import annotations

import hashlib
import json
import threading
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.errors import ReproError
from repro.graph.tat import TATGraph
from repro.offline import PathLike, TermRelations, TermRelationStore

FORMAT_VERSION = 2
MANIFEST_NAME = "manifest.json"
DEFAULT_SHARDS = 8
#: Default LRU capacity: decoded shards kept in memory at once.
DEFAULT_CACHE_SHARDS = 4


def shard_of(key: str, n_shards: int) -> int:
    """Stable shard index of one term key (CRC32 mod shard count)."""
    return zlib.crc32(key.encode("utf-8")) % n_shards


def shard_filename(index: int) -> str:
    """Canonical shard file name for one shard index."""
    return f"shard-{index:04d}.json"


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _decode_relations(data: Dict[str, object]) -> TermRelations:
    return TermRelations(
        similar=[(k, float(s)) for k, s in data.get("similar", [])],
        closeness={
            k: float(c) for k, c in data.get("closeness", {}).items()
        },
    )


def write_store_v2(
    store: TermRelationStore,
    path: PathLike,
    n_shards: int = DEFAULT_SHARDS,
    build_info: Optional[Dict[str, object]] = None,
) -> Path:
    """Write *store* as a v2 shard directory; returns the directory path.

    *build_info* is stored verbatim under the manifest's ``"build"`` key —
    the precompute CLI records batch size, workers and throughput there.
    """
    if n_shards < 1:
        raise ReproError("n_shards must be >= 1")
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    buckets: List[Dict[str, Dict[str, object]]] = [
        {} for _ in range(n_shards)
    ]
    for key, relations in store._items():
        buckets[shard_of(key, n_shards)][key] = {
            "similar": relations.similar,
            "closeness": relations.closeness,
        }
    bytes_written = obs.registry().counter(
        "repro_offline_store_bytes_written_total",
        "Bytes of shard data written by write_store_v2",
    )
    shards = []
    n_terms = 0
    for index, bucket in enumerate(buckets):
        name = shard_filename(index)
        blob = json.dumps({"terms": bucket}).encode("utf-8")
        (root / name).write_bytes(blob)
        bytes_written.inc(len(blob))
        shards.append(
            {"file": name, "n_terms": len(bucket), "sha256": _sha256(blob)}
        )
        n_terms += len(bucket)
    manifest = {
        "format_version": FORMAT_VERSION,
        "n_shards": n_shards,
        "n_terms": n_terms,
        "shards": shards,
        "build": dict(build_info or {}),
    }
    (root / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return root


def load_manifest(root: PathLike) -> Dict[str, object]:
    """Parse and validate a v2 manifest (shard files are *not* read)."""
    root = Path(root)
    path = root / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load term relations from {root}: {exc}")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(
            f"{root}: unsupported format version {version!r}"
        )
    shards = manifest.get("shards")
    n_shards = manifest.get("n_shards")
    if not isinstance(shards, list) or not isinstance(n_shards, int):
        raise ReproError(f"{path}: manifest is missing its shard table")
    if len(shards) != n_shards or n_shards < 1:
        raise ReproError(
            f"{path}: manifest lists {len(shards) if shards else 0} shards "
            f"but declares n_shards={n_shards!r}"
        )
    return manifest


def migrate_v1_to_v2(
    src: PathLike,
    dest: PathLike,
    graph: TATGraph,
    n_shards: int = DEFAULT_SHARDS,
    build_info: Optional[Dict[str, object]] = None,
) -> "ShardedTermRelationStore":
    """Convert a v1 single-file store into a v2 shard directory."""
    src = Path(src)
    if src.is_dir():
        raise ReproError(f"{src}: already a sharded (v2) store directory")
    store = TermRelationStore.load(src, graph)
    info = {"migrated_from": str(src)}
    info.update(build_info or {})
    root = write_store_v2(store, dest, n_shards=n_shards, build_info=info)
    return ShardedTermRelationStore.load(root, graph)


def migrate_to_v3(
    src: PathLike,
    dest: PathLike,
    graph: TATGraph,
    build_info: Optional[Dict[str, object]] = None,
):
    """Convert a v1 file or v2 shard directory into a v3 binary store.

    Returns the opened :class:`repro.storage.binary.BinaryTermRelationStore`
    (checksums verified, since the artifact was just written).
    """
    from repro.storage.binary import BinaryTermRelationStore, write_store_v3

    src = Path(src)
    store = TermRelationStore.load(src, graph)
    if isinstance(store, BinaryTermRelationStore):
        raise ReproError(f"{src}: already a binary (v3) store directory")
    info = {
        "migrated_from": str(src),
        "migrated_from_version": store.FORMAT_VERSION,
    }
    info.update(build_info or {})
    root = write_store_v3(store, dest, build_info=info)
    return BinaryTermRelationStore.load(root, graph)


class ShardedTermRelationStore(TermRelationStore):
    """Lazily-loading v2 store with the v1 store's full online interface.

    Parameters
    ----------
    graph:
        The TAT graph used to resolve node ids back to terms.
    root:
        The shard directory.
    manifest:
        A parsed, validated manifest (see :func:`load_manifest`).
    cache_shards:
        LRU capacity — how many decoded shards stay resident; ``None``
        keeps every shard ever read (no eviction).
    """

    FORMAT_VERSION = FORMAT_VERSION

    def __init__(
        self,
        graph: TATGraph,
        root: PathLike,
        manifest: Dict[str, object],
        cache_shards: Optional[int] = DEFAULT_CACHE_SHARDS,
    ) -> None:
        if cache_shards is not None and cache_shards < 1:
            raise ReproError("cache_shards must be >= 1 or None")
        super().__init__(graph)
        self.root = Path(root)
        self.manifest = manifest
        self.n_shards: int = manifest["n_shards"]
        self._shard_meta: List[Dict[str, object]] = manifest["shards"]
        self.cache_shards = cache_shards
        self._shard_cache: "OrderedDict[int, Dict[str, TermRelations]]" = (
            OrderedDict()
        )
        # Guards the LRU OrderedDict and the hit/miss counters: the
        # serving layer reads one store from many request threads, and
        # move_to_end/popitem races corrupt an OrderedDict while bare
        # `+= 1` drops counts.  An RLock keeps the whole lookup atomic.
        self._cache_lock = threading.RLock()
        self.shard_hits = 0
        self.shard_misses = 0

    @classmethod
    def load(
        cls,
        path: PathLike,
        graph: TATGraph,
        cache_shards: Optional[int] = DEFAULT_CACHE_SHARDS,
    ) -> "ShardedTermRelationStore":
        """Open a v2 store.  Only the manifest is read here."""
        root = Path(path)
        if root.name == MANIFEST_NAME and not root.is_dir():
            root = root.parent
        manifest = load_manifest(root)
        return cls(graph, root, manifest, cache_shards=cache_shards)

    # ------------------------------------------------------------------ #
    # lazy shard IO
    # ------------------------------------------------------------------ #

    def _load_shard(self, index: int) -> Dict[str, TermRelations]:
        """Decoded contents of one shard, via the LRU cache.

        Thread-safe: the cache lock is held for the whole lookup (cache
        probe, counters, disk read, insert, eviction), so concurrent
        readers see consistent counters and a structurally sound LRU.
        Holding the lock across the read serializes cold loads of
        different shards, which is an accepted trade — shards are small
        and every subsequent hit is a dict read under a short critical
        section.
        """
        with self._cache_lock:
            return self._load_shard_locked(index)

    def _load_shard_locked(self, index: int) -> Dict[str, TermRelations]:
        cached = self._shard_cache.get(index)
        if cached is not None:
            self.shard_hits += 1
            obs.counter(
                "repro_offline_store_shard_lookups_total",
                "Shard lookups through the LRU cache",
                outcome="hit",
            ).inc()
            self._shard_cache.move_to_end(index)
            return cached
        self.shard_misses += 1
        obs.counter(
            "repro_offline_store_shard_lookups_total",
            "Shard lookups through the LRU cache",
            outcome="miss",
        ).inc()
        meta = self._shard_meta[index]
        path = self.root / meta["file"]
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise ReproError(f"cannot load term relations from {path}: {exc}")
        obs.counter(
            "repro_offline_store_bytes_read_total",
            "Bytes of shard data read on LRU misses",
        ).inc(len(blob))
        expected = meta.get("sha256")
        actual = _sha256(blob)
        if expected != actual:
            raise ReproError(
                f"{path}: shard checksum mismatch "
                f"(manifest {expected}, file {actual})"
            )
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot load term relations from {path}: {exc}")
        terms = {
            key: _decode_relations(data)
            for key, data in payload.get("terms", {}).items()
        }
        self._shard_cache[index] = terms
        if (
            self.cache_shards is not None
            and len(self._shard_cache) > self.cache_shards
        ):
            self._shard_cache.popitem(last=False)
        return terms

    def cache_stats(self) -> Dict[str, int]:
        """Shard-read counters: hits, misses, currently resident shards."""
        with self._cache_lock:
            return {
                "hits": self.shard_hits,
                "misses": self.shard_misses,
                "resident_shards": len(self._shard_cache),
            }

    def hit_rate(self) -> float:
        """Fraction of shard lookups served from the LRU."""
        total = self.shard_hits + self.shard_misses
        return self.shard_hits / total if total else 0.0

    # ------------------------------------------------------------------ #
    # storage accessor overrides
    # ------------------------------------------------------------------ #

    def _get(self, key: str) -> Optional[TermRelations]:
        return self._load_shard(shard_of(key, self.n_shards)).get(key)

    def _keys(self) -> List[str]:
        return [key for key, _relations in self._items()]

    def _items(self) -> Iterator[Tuple[str, TermRelations]]:
        for index in range(self.n_shards):
            yield from self._load_shard(index).items()

    def __len__(self) -> int:
        return self.manifest["n_terms"]

    def put(self, term, similar, closeness) -> None:
        """Sharded stores are read-only serving artifacts."""
        raise ReproError(
            "sharded term-relation stores are read-only; rebuild with "
            "OfflinePrecomputer.build_store() and save_sharded()"
        )

    def build_info(self) -> Dict[str, object]:
        """The manifest's free-form build metadata."""
        return dict(self.manifest.get("build", {}))
