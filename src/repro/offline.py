"""Offline-stage persistence: precompute and store term relations.

The paper splits the system into an offline stage (term relation
extraction over the whole vocabulary) and an online stage that only reads
the precomputed relations.  This module is that boundary as a downstream
user would deploy it:

* :class:`OfflinePrecomputer` walks the vocabulary and materializes each
  term's similar-term list and closeness row;
* :class:`TermRelationStore` holds the materialized relations, serves
  them behind the same ``similar_nodes`` / ``closeness`` interfaces the
  online stage consumes, and round-trips to a single JSON file.

A store-backed :class:`~repro.core.reformulator.Reformulator` never runs
a random walk or a BFS at query time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.graph.closeness import ClosenessExtractor
from repro.graph.nodes import Node
from repro.graph.similarity import SimilarNode
from repro.graph.tat import TATGraph
from repro.index.inverted import FieldTerm

PathLike = Union[str, Path]

#: Serialized term key: "table|field|text".
def _term_key(term: FieldTerm) -> str:
    table, column = term.field
    return f"{table}|{column}|{term.text}"


def _parse_term_key(key: str) -> FieldTerm:
    table, column, text = key.split("|", 2)
    return FieldTerm((table, column), text)


@dataclass
class TermRelations:
    """Materialized relations of one term."""

    similar: List[Tuple[str, float]] = field(default_factory=list)
    closeness: Dict[str, float] = field(default_factory=dict)


class TermRelationStore:
    """Precomputed similarity/closeness, detached from the graph.

    The store speaks term *keys* internally but exposes the node-id
    interface of the live extractors, so it drops into
    :class:`~repro.core.candidates.CandidateListBuilder` and
    :class:`~repro.core.hmm.ReformulationHMM` unchanged.
    """

    FORMAT_VERSION = 1

    def __init__(self, graph: TATGraph) -> None:
        self.graph = graph
        self._relations: Dict[str, TermRelations] = {}

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #

    def put(
        self,
        term: FieldTerm,
        similar: List[Tuple[FieldTerm, float]],
        closeness: Dict[FieldTerm, float],
    ) -> None:
        """Store one term's similar list and closeness row."""
        self._relations[_term_key(term)] = TermRelations(
            similar=[(_term_key(t), s) for t, s in similar],
            closeness={_term_key(t): c for t, c in closeness.items()},
        )

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, term: FieldTerm) -> bool:
        return _term_key(term) in self._relations

    def terms(self) -> List[FieldTerm]:
        """All terms with stored relations."""
        return [_parse_term_key(k) for k in self._relations]

    # ------------------------------------------------------------------ #
    # online interfaces (same surface as the live extractors)
    # ------------------------------------------------------------------ #

    def _term_of_node(self, node_id: int) -> Optional[FieldTerm]:
        node = self.graph.node(node_id)
        if node.text is None:
            return None
        return node.payload

    def similar_nodes(self, node_id: int, top_n: int) -> List[SimilarNode]:
        """Stored similar-term list, resolved back to node ids."""
        term = self._term_of_node(node_id)
        if term is None:
            return []
        relations = self._relations.get(_term_key(term))
        if relations is None:
            return []
        out: List[SimilarNode] = []
        for key, score in relations.similar[:top_n]:
            other_id = self.graph.registry.get_id(
                Node.for_term(_parse_term_key(key))
            )
            if other_id is not None:
                out.append(SimilarNode(other_id, score))
        return out

    def similarity(self, node_a: int, node_b: int) -> float:
        """Stored sim(a, b); 0 when outside a's stored list."""
        term_a = self._term_of_node(node_a)
        term_b = self._term_of_node(node_b)
        if term_a is None or term_b is None:
            return 0.0
        relations = self._relations.get(_term_key(term_a))
        if relations is None:
            return 0.0
        key_b = _term_key(term_b)
        for key, score in relations.similar:
            if key == key_b:
                return score
        return 0.0

    def similar_terms(self, text: str, top_n: int = 10) -> List[Tuple[str, float]]:
        """Stored similar terms for a raw keyword."""
        node_id = self.graph.resolve_text_one(text)
        out = []
        for sim in self.similar_nodes(node_id, top_n):
            node = self.graph.node(sim.node_id)
            out.append((node.text or str(node), sim.score))
        return out

    def closeness(self, node_a: int, node_b: int) -> float:
        """Stored clos(a, b); 0 when outside a's stored row."""
        term_a = self._term_of_node(node_a)
        term_b = self._term_of_node(node_b)
        if term_a is None or term_b is None:
            return 0.0
        relations = self._relations.get(_term_key(term_a))
        if relations is None:
            return 0.0
        return relations.closeness.get(_term_key(term_b), 0.0)

    def precompute(self, node_ids: Iterable[int]) -> None:
        """No-op: the store *is* the precomputation (interface parity)."""

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def save(self, path: PathLike) -> None:
        """Write the store as one JSON document."""
        payload = {
            "format_version": self.FORMAT_VERSION,
            "terms": {
                key: {
                    "similar": relations.similar,
                    "closeness": relations.closeness,
                }
                for key, relations in self._relations.items()
            },
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike, graph: TATGraph) -> "TermRelationStore":
        """Load a store previously written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot load term relations from {path}: {exc}")
        if payload.get("format_version") != cls.FORMAT_VERSION:
            raise ReproError(
                f"{path}: unsupported format version "
                f"{payload.get('format_version')!r}"
            )
        store = cls(graph)
        for key, data in payload.get("terms", {}).items():
            store._relations[key] = TermRelations(
                similar=[(k, float(s)) for k, s in data.get("similar", [])],
                closeness={
                    k: float(c) for k, c in data.get("closeness", {}).items()
                },
            )
        return store


class OfflinePrecomputer:
    """Materializes the offline stage for a vocabulary of terms.

    Parameters
    ----------
    graph:
        The TAT graph.
    similarity:
        A live similarity backend (contextual walk by default).
    closeness:
        A live closeness extractor.
    n_similar:
        How many similar terms to store per term (the online candidate
        lists can only be as long as this).
    closeness_top:
        How many closeness entries to store per term (its closest term
        nodes); pairs outside the stored row read as 0.
    """

    def __init__(
        self,
        graph: TATGraph,
        similarity=None,
        closeness: Optional[ClosenessExtractor] = None,
        n_similar: int = 20,
        closeness_top: int = 200,
    ) -> None:
        if n_similar < 1 or closeness_top < 1:
            raise ReproError("n_similar and closeness_top must be >= 1")
        from repro.graph.similarity import SimilarityExtractor

        self.graph = graph
        self.similarity = similarity or SimilarityExtractor(graph)
        self.closeness = closeness or ClosenessExtractor(graph)
        self.n_similar = n_similar
        self.closeness_top = closeness_top

    def vocabulary(self, fields: Optional[List[Tuple[str, str]]] = None) -> List[FieldTerm]:
        """The terms to precompute: all indexed terms, or chosen fields."""
        return [
            term
            for term in self.graph.index.terms()
            if fields is None or term.field in fields
        ]

    def precompute_term(self, term: FieldTerm) -> TermRelations:
        """Materialize one term's relations (used by the store builder)."""
        node_id = self.graph.term_node_id(term)
        similar = [
            (self.graph.node(s.node_id).payload, s.score)
            for s in self.similarity.similar_nodes(node_id, self.n_similar)
        ]
        closeness = {
            self.graph.node(other).payload: score
            for other, score in self.closeness.close_terms(
                node_id, self.closeness_top
            )
        }
        return TermRelations(
            similar=[(_term_key(t), s) for t, s in similar],
            closeness={_term_key(t): c for t, c in closeness.items()},
        )

    def build_store(
        self,
        fields: Optional[List[Tuple[str, str]]] = None,
        progress_every: int = 0,
    ) -> TermRelationStore:
        """Run the full offline stage and return the populated store."""
        store = TermRelationStore(self.graph)
        vocabulary = self.vocabulary(fields)
        for i, term in enumerate(vocabulary, 1):
            store._relations[_term_key(term)] = self.precompute_term(term)
            if progress_every and i % progress_every == 0:
                print(f"precomputed {i}/{len(vocabulary)} terms")
        return store
