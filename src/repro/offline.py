"""Offline-stage persistence: precompute and store term relations.

The paper splits the system into an offline stage (term relation
extraction over the whole vocabulary) and an online stage that only reads
the precomputed relations.  This module is that boundary as a downstream
user would deploy it:

* :class:`OfflinePrecomputer` walks the vocabulary in **batches** —
  contextual preference vectors are built as columns and solved together
  (one cached sparse-LU factorization amortized over the vocabulary),
  closeness BFS rows are fanned across a thread pool — and materializes
  each term's similar-term list and closeness row;
* :class:`TermRelationStore` holds the materialized relations, serves
  them behind the same ``similar_nodes`` / ``closeness`` interfaces the
  online stage consumes, and round-trips to a single JSON file (format
  version 1) or, via :meth:`TermRelationStore.save_sharded`, to the
  sharded format-version-2 layout of :mod:`repro.offline_store`.

A store-backed :class:`~repro.core.reformulator.Reformulator` never runs
a random walk or a BFS at query time.
"""

from __future__ import annotations

import json
import logging
import shutil
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro import obs
from repro.errors import ReproError
from repro.graph.closeness import ClosenessExtractor
from repro.graph.nodes import Node
from repro.graph.similarity import SimilarNode
from repro.graph.tat import TATGraph
from repro.index.inverted import FieldTerm

logger = logging.getLogger(__name__)

PathLike = Union[str, Path]

#: Solver passed through to the batched walk; "direct" reuses one cached
#: sparse-LU factorization across every batch of the vocabulary.
DEFAULT_WALK_METHOD = "direct"


def _escape_part(part: str) -> str:
    return part.replace("\\", "\\\\").replace("|", "\\|")


def _term_key(term: FieldTerm) -> str:
    """Serialized term key ``table|field|text`` with ``\\``/``|`` escaped.

    Escaping makes the key a lossless encoding for *any* term text —
    including pipes and backslashes — where the historical raw
    ``f"{table}|{column}|{text}"`` form was ambiguous.
    """
    table, column = term.field
    return "|".join(
        _escape_part(part) for part in (table, column, term.text)
    )


def _split_key(key: str) -> List[str]:
    """Split a term key on unescaped pipes, undoing the escapes."""
    parts: List[str] = []
    buf: List[str] = []
    escaped = False
    for ch in key:
        if escaped:
            buf.append(ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == "|":
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if escaped:  # lone trailing backslash: keep it literal
        buf.append("\\")
    parts.append("".join(buf))
    return parts


def _parse_term_key(key: str) -> FieldTerm:
    """Inverse of :func:`_term_key`, tolerant of legacy unescaped keys.

    Format-version-1 files wrote the text unescaped; a legacy key whose
    text contains pipes splits into more than three parts, and falls back
    to the historical "split at the first two pipes" reading.
    """
    parts = _split_key(key)
    if len(parts) == 3:
        return FieldTerm((parts[0], parts[1]), parts[2])
    pieces = key.split("|", 2)
    if len(pieces) != 3:
        raise ReproError(f"malformed term key {key!r}")
    return FieldTerm((pieces[0], pieces[1]), pieces[2])


@dataclass
class TermRelations:
    """Materialized relations of one term."""

    similar: List[Tuple[str, float]] = field(default_factory=list)
    closeness: Dict[str, float] = field(default_factory=dict)


class TermRelationStore:
    """Precomputed similarity/closeness, detached from the graph.

    The store speaks term *keys* internally but exposes the node-id
    interface of the live extractors, so it drops into
    :class:`~repro.core.candidates.CandidateListBuilder` and
    :class:`~repro.core.hmm.ReformulationHMM` unchanged.

    All reads route through the :meth:`_get` / :meth:`_keys` /
    :meth:`_items` accessors; the sharded v2 store
    (:class:`repro.offline_store.ShardedTermRelationStore`) overrides
    just those to serve the same interface from lazily-loaded shards.
    """

    FORMAT_VERSION = 1

    def __init__(self, graph: TATGraph) -> None:
        self.graph = graph
        self._relations: Dict[str, TermRelations] = {}

    # ------------------------------------------------------------------ #
    # storage accessors (the override surface of the sharded store)
    # ------------------------------------------------------------------ #

    def _get(self, key: str) -> Optional[TermRelations]:
        """Relations of one term key, or None when absent."""
        return self._relations.get(key)

    def _keys(self) -> List[str]:
        """All stored term keys."""
        return list(self._relations)

    def _items(self) -> Iterator[Tuple[str, TermRelations]]:
        """All (key, relations) pairs."""
        return iter(self._relations.items())

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #

    def put(
        self,
        term: FieldTerm,
        similar: List[Tuple[FieldTerm, float]],
        closeness: Dict[FieldTerm, float],
    ) -> None:
        """Store one term's similar list and closeness row."""
        self._relations[_term_key(term)] = TermRelations(
            similar=[(_term_key(t), s) for t, s in similar],
            closeness={_term_key(t): c for t, c in closeness.items()},
        )

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, term: FieldTerm) -> bool:
        return self._get(_term_key(term)) is not None

    def terms(self) -> List[FieldTerm]:
        """All terms with stored relations."""
        return [_parse_term_key(k) for k in self._keys()]

    # ------------------------------------------------------------------ #
    # online interfaces (same surface as the live extractors)
    # ------------------------------------------------------------------ #

    def _term_of_node(self, node_id: int) -> Optional[FieldTerm]:
        node = self.graph.node(node_id)
        if node.text is None:
            return None
        return node.payload

    def similar_nodes(self, node_id: int, top_n: int) -> List[SimilarNode]:
        """Stored similar-term list, resolved back to node ids."""
        term = self._term_of_node(node_id)
        if term is None:
            return []
        relations = self._get(_term_key(term))
        if relations is None:
            return []
        out: List[SimilarNode] = []
        for key, score in relations.similar[:top_n]:
            other_id = self.graph.registry.get_id(
                Node.for_term(_parse_term_key(key))
            )
            if other_id is not None:
                out.append(SimilarNode(other_id, score))
        return out

    def similarity(self, node_a: int, node_b: int) -> float:
        """Stored sim(a, b); 0 when outside a's stored list."""
        term_a = self._term_of_node(node_a)
        term_b = self._term_of_node(node_b)
        if term_a is None or term_b is None:
            return 0.0
        relations = self._get(_term_key(term_a))
        if relations is None:
            return 0.0
        key_b = _term_key(term_b)
        for key, score in relations.similar:
            if key == key_b:
                return score
        return 0.0

    def similar_terms(self, text: str, top_n: int = 10) -> List[Tuple[str, float]]:
        """Stored similar terms for a raw keyword."""
        node_id = self.graph.resolve_text_one(text)
        out = []
        for sim in self.similar_nodes(node_id, top_n):
            node = self.graph.node(sim.node_id)
            out.append((node.text or str(node), sim.score))
        return out

    def closeness(self, node_a: int, node_b: int) -> float:
        """Stored clos(a, b); 0 when outside a's stored row."""
        term_a = self._term_of_node(node_a)
        term_b = self._term_of_node(node_b)
        if term_a is None or term_b is None:
            return 0.0
        relations = self._get(_term_key(term_a))
        if relations is None:
            return 0.0
        return relations.closeness.get(_term_key(term_b), 0.0)

    def precompute(self, node_ids: Iterable[int]) -> None:
        """No-op: the store *is* the precomputation (interface parity)."""

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def save(self, path: PathLike) -> None:
        """Write the store as one JSON document (format version 1)."""
        payload = {
            "format_version": TermRelationStore.FORMAT_VERSION,
            "terms": {
                key: {
                    "similar": relations.similar,
                    "closeness": relations.closeness,
                }
                for key, relations in self._items()
            },
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    def save_sharded(
        self,
        path: PathLike,
        n_shards: int = 8,
        build_info: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Write the sharded v2 layout; see :mod:`repro.offline_store`."""
        from repro.offline_store import write_store_v2

        return write_store_v2(
            self, path, n_shards=n_shards, build_info=build_info
        )

    @classmethod
    def load(cls, path: PathLike, graph: TATGraph) -> "TermRelationStore":
        """Load a store written by any supported format (v1/v2/v3).

        A directory (or a path to its ``manifest.json``) is dispatched on
        the manifest's ``format_version``: 3 opens as a memmapped
        :class:`~repro.storage.binary.BinaryTermRelationStore`, otherwise
        it comes back as a lazily-loading
        :class:`~repro.offline_store.ShardedTermRelationStore` (v2); a
        plain file is the single-document v1 format.  A directory store
        carrying a ``layers/layers.json`` delta chain comes back wrapped
        in a :class:`~repro.storage.layers.LayeredTermRelationStore`.
        """
        p = Path(path)
        if p.is_dir() or p.name == "manifest.json":
            root = p if p.is_dir() else p.parent
            manifest_path = root / "manifest.json"
            version = None
            if manifest_path.exists():
                # A manifest that exists but cannot be read or parsed is a
                # corrupt store — fail loudly with the path and cause
                # instead of falling through to a confusing v2 error.
                try:
                    version = json.loads(
                        manifest_path.read_text(encoding="utf-8")
                    ).get("format_version")
                except (OSError, json.JSONDecodeError) as exc:
                    raise ReproError(
                        f"cannot read store manifest {manifest_path}: {exc}"
                    ) from exc
            if version == 3:
                from repro.storage.binary import BinaryTermRelationStore

                base: TermRelationStore = BinaryTermRelationStore.load(
                    root, graph
                )
            else:
                from repro.offline_store import ShardedTermRelationStore

                base = ShardedTermRelationStore.load(p, graph)
            from repro.storage import layers as layer_io

            if layer_io.chain_path(root).exists():
                return layer_io.LayeredTermRelationStore.load(
                    root, base, graph
                )
            return base
        try:
            payload = json.loads(p.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot load term relations from {path}: {exc}")
        if payload.get("format_version") != cls.FORMAT_VERSION:
            raise ReproError(
                f"{path}: unsupported format version "
                f"{payload.get('format_version')!r}"
            )
        store = cls(graph)

        def canon(key: str) -> str:
            # canonicalize legacy raw (unescaped) v1 keys to escaped form
            # so FieldTerm lookups find them; identity for escaped keys
            return _term_key(_parse_term_key(key))

        for key, data in payload.get("terms", {}).items():
            store._relations[canon(key)] = TermRelations(
                similar=[
                    (canon(k), float(s)) for k, s in data.get("similar", [])
                ],
                closeness={
                    canon(k): float(c)
                    for k, c in data.get("closeness", {}).items()
                },
            )
        return store


@dataclass
class PrecomputeStats:
    """Per-run snapshot of one :meth:`OfflinePrecomputer.build_store` run.

    The same numbers are recorded into the :mod:`repro.obs` metrics
    registry as the run progresses (``repro_offline_*`` series — see
    ``docs/observability.md``); this dataclass is the cumulative view of
    one run, kept for programmatic access and CLI summaries.  Both are
    written from a single update site in :meth:`~OfflinePrecomputer.build_store`.
    """

    total_terms: int = 0
    terms_done: int = 0
    n_batches: int = 0
    batch_size: int = 0
    workers: int = 0
    walk_method: str = DEFAULT_WALK_METHOD
    elapsed_seconds: float = 0.0
    walk_iterations: int = 0
    #: verified per-batch walk residuals (max over the batch's columns)
    batch_residuals: List[float] = field(default_factory=list)

    @property
    def terms_per_second(self) -> float:
        """Throughput of the run so far."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.terms_done / self.elapsed_seconds

    @property
    def max_residual(self) -> float:
        """Worst verified walk residual across all batches."""
        return max(self.batch_residuals) if self.batch_residuals else 0.0


class OfflinePrecomputer:
    """Materializes the offline stage for a vocabulary of terms.

    Parameters
    ----------
    graph:
        The TAT graph.
    similarity:
        A live similarity backend (contextual walk by default).
    closeness:
        A live closeness extractor.
    n_similar:
        How many similar terms to store per term (the online candidate
        lists can only be as long as this).
    closeness_top:
        How many closeness entries to store per term (its closest term
        nodes); pairs outside the stored row read as 0.
    """

    def __init__(
        self,
        graph: TATGraph,
        similarity=None,
        closeness: Optional[ClosenessExtractor] = None,
        n_similar: int = 20,
        closeness_top: int = 200,
    ) -> None:
        if n_similar < 1 or closeness_top < 1:
            raise ReproError("n_similar and closeness_top must be >= 1")
        from repro.graph.similarity import SimilarityExtractor

        self.graph = graph
        self.similarity = similarity or SimilarityExtractor(graph)
        self.closeness = closeness or ClosenessExtractor(graph)
        self.n_similar = n_similar
        self.closeness_top = closeness_top
        self.stats = PrecomputeStats()

    def vocabulary(self, fields: Optional[List[Tuple[str, str]]] = None) -> List[FieldTerm]:
        """The terms to precompute: all indexed terms, or chosen fields."""
        return [
            term
            for term in self.graph.index.terms()
            if fields is None or term.field in fields
        ]

    def precompute_term(self, term: FieldTerm) -> TermRelations:
        """Materialize one term's relations (the sequential unit of work)."""
        node_id = self.graph.term_node_id(term)
        similar = [
            (self.graph.node(s.node_id).payload, s.score)
            for s in self.similarity.similar_nodes(node_id, self.n_similar)
        ]
        closeness = {
            self.graph.node(other).payload: score
            for other, score in self.closeness.close_terms(
                node_id, self.closeness_top
            )
        }
        return TermRelations(
            similar=[(_term_key(t), s) for t, s in similar],
            closeness={_term_key(t): c for t, c in closeness.items()},
        )

    def _close_rows(
        self, node_ids: List[int], workers: int
    ) -> Dict[int, List[Tuple[int, float]]]:
        """Closeness rows for one batch, fanned across a thread pool.

        Each worker's chunk touches disjoint per-source cache entries, so
        the extractor's dict caches stay consistent under the pool.
        """
        if not hasattr(self.closeness, "close_rows"):
            return {
                nid: self.closeness.close_terms(nid, self.closeness_top)
                for nid in node_ids
            }
        if workers <= 1 or len(node_ids) <= 1:
            return self.closeness.close_rows(node_ids, self.closeness_top)
        chunks = [c for c in (node_ids[i::workers] for i in range(workers)) if c]
        rows: Dict[int, List[Tuple[int, float]]] = {}
        with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            futures = [
                pool.submit(self.closeness.close_rows, chunk, self.closeness_top)
                for chunk in chunks
            ]
            for future in futures:
                rows.update(future.result())
        return rows

    def build_store(
        self,
        fields: Optional[List[Tuple[str, str]]] = None,
        progress_every: int = 0,
        batch_size: int = 64,
        workers: int = 1,
        walk_method: str = DEFAULT_WALK_METHOD,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> TermRelationStore:
        """Run the full offline stage and return the populated store.

        The vocabulary is processed in batches of *batch_size* terms:
        each batch's contextual walks are solved together (see
        :meth:`~repro.graph.similarity.SimilarityExtractor.batch_walk`)
        and its closeness BFS rows are fanned across *workers* threads.
        Extractor caches are evicted as soon as a term's relations are
        read, so memory stays O(batch), not O(vocabulary).

        *progress* is called as ``progress(done, total)`` after every
        batch; *progress_every* additionally logs every that-many terms
        through the module logger.
        """
        if batch_size < 1:
            raise ReproError("batch_size must be >= 1")
        if workers < 1:
            raise ReproError("workers must be >= 1")
        store = TermRelationStore(self.graph)
        vocabulary = self.vocabulary(fields)
        stats = PrecomputeStats(
            total_terms=len(vocabulary),
            batch_size=batch_size,
            workers=workers,
            walk_method=walk_method,
        )
        self.stats = stats

        # The registry mirror of this run's counters: the offline stage
        # always records (it runs for seconds; the updates are per-batch,
        # not per-term), so `repro stats` sees precompute activity even
        # without the tracing switch.
        registry = obs.registry()
        terms_counter = registry.counter(
            "repro_offline_terms_total", "Vocabulary terms precomputed"
        )
        batches_counter = registry.counter(
            "repro_offline_batches_total", "Precompute batches processed"
        )
        iterations_counter = registry.counter(
            "repro_offline_walk_iterations_total",
            "Batched-walk solver iterations",
        )
        residual_hist = registry.histogram(
            "repro_offline_walk_residual",
            "Verified max walk residual per batch",
            buckets=[10.0 ** e for e in range(-16, -2)],
        )
        batch_seconds_hist = registry.histogram(
            "repro_offline_batch_seconds",
            "Wall-clock seconds per precompute batch",
        )

        start = time.perf_counter()
        batched = hasattr(self.similarity, "batch_walk")
        done = 0
        with obs.span(
            "precompute.build_store",
            terms=len(vocabulary),
            batch_size=batch_size,
            workers=workers,
            walk_method=walk_method,
        ):
            for lo in range(0, len(vocabulary), batch_size):
                batch = vocabulary[lo:lo + batch_size]
                batch_start = time.perf_counter()
                with obs.span(
                    "precompute.batch", index=stats.n_batches, size=len(batch)
                ) as batch_span:
                    node_ids = [
                        self.graph.term_node_id(term) for term in batch
                    ]
                    if batched:
                        result = self.similarity.batch_walk(
                            node_ids, method=walk_method
                        )
                        if result is not None:
                            stats.batch_residuals.append(result.residual)
                            stats.walk_iterations += result.iterations
                            iterations_counter.inc(result.iterations)
                            residual_hist.observe(result.residual)
                            batch_span.set_attribute(
                                "residual", result.residual
                            )
                            batch_span.set_attribute(
                                "iterations", result.iterations
                            )
                    close_rows = self._close_rows(node_ids, workers)
                    for term, node_id in zip(batch, node_ids):
                        similar = [
                            (self.graph.node(s.node_id).payload, s.score)
                            for s in self.similarity.similar_nodes(
                                node_id, self.n_similar
                            )
                        ]
                        closeness = {
                            self.graph.node(other).payload: score
                            for other, score in close_rows[node_id]
                        }
                        store.put(term, similar, closeness)
                        if hasattr(self.similarity, "evict"):
                            self.similarity.evict(node_id)
                        if hasattr(self.closeness, "evict"):
                            self.closeness.evict(node_id)
                        done += 1
                        if progress_every and done % progress_every == 0:
                            logger.info(
                                "precomputed %d/%d terms",
                                done, len(vocabulary),
                            )
                stats.n_batches += 1
                stats.terms_done = done
                stats.elapsed_seconds = time.perf_counter() - start
                terms_counter.inc(len(batch))
                batches_counter.inc()
                batch_seconds_hist.observe(
                    time.perf_counter() - batch_start
                )
                if progress is not None:
                    progress(done, len(vocabulary))
        return store


@dataclass
class DeltaIngestStats:
    """Per-run snapshot of one :meth:`DeltaIngestor.ingest` call."""

    epoch: int = 0
    n_rows: int = 0
    n_recomputed: int = 0
    n_new_terms: int = 0
    n_invalidated: int = 0
    elapsed_seconds: float = 0.0
    graph_seconds: float = 0.0
    walk_seconds: float = 0.0
    closeness_seconds: float = 0.0
    write_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view (CLI/HTTP responses)."""
        return {
            "epoch": self.epoch,
            "n_rows": self.n_rows,
            "n_recomputed": self.n_recomputed,
            "n_new_terms": self.n_new_terms,
            "n_invalidated": self.n_invalidated,
            "elapsed_seconds": self.elapsed_seconds,
            "graph_seconds": self.graph_seconds,
            "walk_seconds": self.walk_seconds,
            "closeness_seconds": self.closeness_seconds,
            "write_seconds": self.write_seconds,
        }


class DeltaIngestor:
    """Incrementally folds new rows into a directory-backed store.

    The expensive part of the offline stage is per-term: one contextual
    walk plus one closeness BFS for every vocabulary term.  An ingest of
    a few rows only *requires* fresh rows for the terms occurring in
    those rows — every candidate list the online stage builds for a
    query keyword reads that keyword's own similar list, so recomputing
    exactly the ingested terms keeps queries over them bit-identical to
    a from-scratch build on the merged corpus.  The ingest run:

    1. inserts the rows into the database (and, when a live serving
       graph is passed, extends it in place via
       :meth:`~repro.graph.tat.TATGraph.add_tuples`);
    2. rebuilds the canonical merged graph — same node order and floats
       a from-scratch build would produce — and recomputes similar +
       closeness rows for the ingested terms with the batch-invariant
       direct solver;
    3. computes the structural dirty ball and marks every other term
       inside it **invalidated**: their stored closeness rows are stale,
       and the layered store re-BFSes them lazily (and exactly) at serve
       time;
    4. writes the result as one delta layer beside the untouched base
       (see :mod:`repro.storage.layers`).

    Similar rows of terms *outside* the ingested set keep their stored
    version although global idf drifted — the documented staleness that
    :meth:`compact` erases by folding everything into a fresh base.

    Parameters default from the newest layer's parameters, then the base
    manifest's build info, so stacked layers stay consistent with the
    build they extend.
    """

    def __init__(
        self,
        database,
        store_path: PathLike,
        n_similar: Optional[int] = None,
        closeness_top: Optional[int] = None,
        batch_size: int = 64,
        walk_method: str = DEFAULT_WALK_METHOD,
    ) -> None:
        from repro.storage import layers as layer_io

        self.database = database
        self.store_path = Path(store_path)
        if not self.store_path.is_dir():
            raise ReproError(
                f"{self.store_path}: delta layers need a directory-backed "
                "store (v2 shards or v3 binary); single-file v1 stores "
                "cannot stack layers"
            )
        manifest_path = self.store_path / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"cannot read store manifest {manifest_path}: {exc}"
            ) from exc
        self._manifest = manifest
        build = manifest.get("build") or {}
        layer_params: Dict[str, object] = {}
        chain = layer_io.read_chain(self.store_path)
        for entry in chain["layers"]:  # newest-last wins
            meta = layer_io.read_layer_meta(self.store_path, entry["dir"])
            layer_params = dict(meta.get("params", {}))

        def pick(name: str, explicit: Optional[int], default: int) -> int:
            if explicit is not None:
                return explicit
            for source in (layer_params, build):
                if source.get(name) is not None:
                    return int(source[name])
            return default

        self.n_similar = pick("n_similar", n_similar, 20)
        self.closeness_top = pick("closeness_top", closeness_top, 200)
        if self.n_similar < 1 or self.closeness_top < 1:
            raise ReproError("n_similar and closeness_top must be >= 1")
        if batch_size < 1:
            raise ReproError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.walk_method = walk_method
        self.stats = DeltaIngestStats()

    @staticmethod
    def _check_rows(rows: List[Dict[str, object]]) -> None:
        if not rows:
            raise ReproError("ingest needs at least one row")
        for item in rows:
            if (
                not isinstance(item, dict)
                or not isinstance(item.get("table"), str)
                or not isinstance(item.get("row"), dict)
            ):
                raise ReproError(
                    'ingest rows must be {"table": str, "row": {...}} '
                    f"objects, got {item!r}"
                )

    def ingest(
        self,
        rows: List[Dict[str, object]],
        graph: Optional[TATGraph] = None,
    ) -> DeltaIngestStats:
        """Ingest *rows* (``{"table": ..., "row": {...}}``) as one layer.

        The rows must not already exist in the database — the ingestor
        inserts them.  Pass the currently-serving *graph* (built over the
        same database) to have it extended in place instead of going
        stale.  Returns the run's :class:`DeltaIngestStats`; the new
        layer is on disk when this returns.
        """
        from repro.graph.similarity import SimilarityExtractor
        from repro.index.inverted import InvertedIndex
        from repro.storage import layers as layer_io

        self._check_rows(rows)
        registry = obs.registry()
        start = time.perf_counter()
        stats = DeltaIngestStats(n_rows=len(rows))
        self.stats = stats
        with obs.span("ingest.delta", rows=len(rows)):
            refs = [
                self.database.insert(item["table"], dict(item["row"]))
                for item in rows
            ]
            if graph is not None:
                # keep the caller's serving graph current (dirty set not
                # needed here: the canonical graph below recomputes it)
                graph.add_tuples(refs)

            # canonical merged graph: identical node order and floats to
            # a fresh build over the merged corpus, which is what makes
            # the recomputed rows bit-compatible with full rebuilds
            t0 = time.perf_counter()
            canonical = TATGraph(self.database, InvertedIndex(self.database))
            stats.graph_seconds = time.perf_counter() - t0

            ref_set = set(refs)
            ingested_terms = sorted(
                {
                    term
                    for ref in refs
                    for term, _tf in canonical.index.terms_of(ref)
                },
                key=lambda t: canonical.term_node_id(t),
            )
            node_ids = [canonical.term_node_id(t) for t in ingested_terms]
            stats.n_recomputed = len(ingested_terms)
            stats.n_new_terms = sum(
                1
                for term in ingested_terms
                if all(
                    p.ref in ref_set
                    for p in canonical.index.postings(term)
                )
            )

            # structural dirty ball -> closeness invalidation set
            closeness = ClosenessExtractor(canonical)
            matrix = canonical.adjacency.matrix
            touched = set()
            for ref in refs:
                nid = canonical.tuple_node_id(ref)
                touched.add(nid)
                touched.update(
                    int(n)
                    for n in matrix.indices[
                        matrix.indptr[nid]:matrix.indptr[nid + 1]
                    ]
                )
            affected = closeness.affected_sources(sorted(touched))
            recomputed_keys = {_term_key(t) for t in ingested_terms}
            invalidated = sorted(
                {
                    _term_key(canonical.node(nid).payload)
                    for nid in affected
                }
                - recomputed_keys
            )
            stats.n_invalidated = len(invalidated)

            # exact recompute of the ingested terms (direct solver:
            # per-column solves make the bits batch-independent)
            similarity = SimilarityExtractor(canonical)
            delta_store = TermRelationStore(canonical)
            t0 = time.perf_counter()
            for lo in range(0, len(node_ids), self.batch_size):
                similarity.batch_walk(
                    node_ids[lo:lo + self.batch_size],
                    method=self.walk_method,
                )
            stats.walk_seconds = time.perf_counter() - t0
            for term, node_id in zip(ingested_terms, node_ids):
                similar = [
                    (canonical.node(s.node_id).payload, s.score)
                    for s in similarity.similar_nodes(node_id, self.n_similar)
                ]
                t0 = time.perf_counter()
                close_row = {
                    canonical.node(other).payload: score
                    for other, score in closeness.close_terms(
                        node_id, self.closeness_top
                    )
                }
                stats.closeness_seconds += time.perf_counter() - t0
                delta_store.put(term, similar, close_row)
                similarity.evict(node_id)
                closeness.evict(node_id)

            t0 = time.perf_counter()
            epoch = layer_io.latest_epoch(self.store_path) + 1
            layer_io.write_layer(
                self.store_path,
                delta_store,
                epoch=epoch,
                rows=rows,
                invalidated=invalidated,
                params={
                    "n_similar": self.n_similar,
                    "closeness_top": self.closeness_top,
                    "walk_method": self.walk_method,
                },
                build_info={
                    "delta_epoch": epoch,
                    "ingested_rows": len(rows),
                    "recomputed_terms": len(ingested_terms),
                },
            )
            stats.write_seconds = time.perf_counter() - t0
            stats.epoch = epoch
        stats.elapsed_seconds = time.perf_counter() - start

        registry.counter(
            "repro_ingest_total", "Delta ingest runs completed"
        ).inc()
        registry.counter(
            "repro_ingest_rows_total", "Rows folded in by delta ingests"
        ).inc(stats.n_rows)
        registry.counter(
            "repro_ingest_terms_recomputed_total",
            "Terms recomputed exactly by delta ingests",
        ).inc(stats.n_recomputed)
        registry.counter(
            "repro_ingest_invalidated_total",
            "Closeness rows invalidated (lazily recomputed at serve time)",
        ).inc(stats.n_invalidated)
        registry.histogram(
            "repro_ingest_seconds", "Wall-clock seconds per delta ingest"
        ).observe(stats.elapsed_seconds)
        registry.gauge(
            "repro_ingest_layer_epoch", "Newest delta layer epoch"
        ).set(stats.epoch)
        return stats

    def compact(
        self,
        batch_size: Optional[int] = None,
        workers: int = 1,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> Path:
        """Fold the base and every layer into a fresh base build.

        Rebuilds the whole store over the current database (erasing the
        documented similar-row staleness of stacked layers), writes it in
        the base's format, atomically swaps it into place, and clears the
        layer chain.  Returns the store path.
        """
        from repro.index.inverted import InvertedIndex

        canonical = TATGraph(self.database, InvertedIndex(self.database))
        precomputer = OfflinePrecomputer(
            canonical,
            n_similar=self.n_similar,
            closeness_top=self.closeness_top,
        )
        store = precomputer.build_store(
            batch_size=batch_size or self.batch_size,
            walk_method=self.walk_method,
            progress=progress,
        )
        build_info = {
            "compacted": True,
            "n_similar": self.n_similar,
            "closeness_top": self.closeness_top,
            "walk_method": self.walk_method,
            "terms": len(store),
        }
        tmp = self.store_path.with_name(self.store_path.name + ".compact-new")
        old = self.store_path.with_name(self.store_path.name + ".compact-old")
        for leftover in (tmp, old):
            if leftover.exists():
                shutil.rmtree(leftover)
        if self._manifest.get("format_version") == 3:
            from repro.storage.binary import write_store_v3

            write_store_v3(store, tmp, build_info=build_info)
        else:
            from repro.offline_store import write_store_v2

            write_store_v2(
                store,
                tmp,
                n_shards=int(self._manifest.get("n_shards", 8)),
                build_info=build_info,
            )
        self.store_path.rename(old)
        tmp.rename(self.store_path)
        shutil.rmtree(old)
        try:
            self._manifest = json.loads(
                (self.store_path / "manifest.json").read_text(
                    encoding="utf-8"
                )
            )
        except (OSError, json.JSONDecodeError) as exc:  # pragma: no cover
            raise ReproError(
                f"compacted store manifest unreadable: {exc}"
            ) from exc
        return self.store_path
