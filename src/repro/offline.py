"""Offline-stage persistence: precompute and store term relations.

The paper splits the system into an offline stage (term relation
extraction over the whole vocabulary) and an online stage that only reads
the precomputed relations.  This module is that boundary as a downstream
user would deploy it:

* :class:`OfflinePrecomputer` walks the vocabulary in **batches** —
  contextual preference vectors are built as columns and solved together
  (one cached sparse-LU factorization amortized over the vocabulary),
  closeness BFS rows are fanned across a thread pool — and materializes
  each term's similar-term list and closeness row;
* :class:`TermRelationStore` holds the materialized relations, serves
  them behind the same ``similar_nodes`` / ``closeness`` interfaces the
  online stage consumes, and round-trips to a single JSON file (format
  version 1) or, via :meth:`TermRelationStore.save_sharded`, to the
  sharded format-version-2 layout of :mod:`repro.offline_store`.

A store-backed :class:`~repro.core.reformulator.Reformulator` never runs
a random walk or a BFS at query time.
"""

from __future__ import annotations

import json
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro import obs
from repro.errors import ReproError
from repro.graph.closeness import ClosenessExtractor
from repro.graph.nodes import Node
from repro.graph.similarity import SimilarNode
from repro.graph.tat import TATGraph
from repro.index.inverted import FieldTerm

logger = logging.getLogger(__name__)

PathLike = Union[str, Path]

#: Solver passed through to the batched walk; "direct" reuses one cached
#: sparse-LU factorization across every batch of the vocabulary.
DEFAULT_WALK_METHOD = "direct"


def _escape_part(part: str) -> str:
    return part.replace("\\", "\\\\").replace("|", "\\|")


def _term_key(term: FieldTerm) -> str:
    """Serialized term key ``table|field|text`` with ``\\``/``|`` escaped.

    Escaping makes the key a lossless encoding for *any* term text —
    including pipes and backslashes — where the historical raw
    ``f"{table}|{column}|{text}"`` form was ambiguous.
    """
    table, column = term.field
    return "|".join(
        _escape_part(part) for part in (table, column, term.text)
    )


def _split_key(key: str) -> List[str]:
    """Split a term key on unescaped pipes, undoing the escapes."""
    parts: List[str] = []
    buf: List[str] = []
    escaped = False
    for ch in key:
        if escaped:
            buf.append(ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == "|":
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if escaped:  # lone trailing backslash: keep it literal
        buf.append("\\")
    parts.append("".join(buf))
    return parts


def _parse_term_key(key: str) -> FieldTerm:
    """Inverse of :func:`_term_key`, tolerant of legacy unescaped keys.

    Format-version-1 files wrote the text unescaped; a legacy key whose
    text contains pipes splits into more than three parts, and falls back
    to the historical "split at the first two pipes" reading.
    """
    parts = _split_key(key)
    if len(parts) == 3:
        return FieldTerm((parts[0], parts[1]), parts[2])
    pieces = key.split("|", 2)
    if len(pieces) != 3:
        raise ReproError(f"malformed term key {key!r}")
    return FieldTerm((pieces[0], pieces[1]), pieces[2])


@dataclass
class TermRelations:
    """Materialized relations of one term."""

    similar: List[Tuple[str, float]] = field(default_factory=list)
    closeness: Dict[str, float] = field(default_factory=dict)


class TermRelationStore:
    """Precomputed similarity/closeness, detached from the graph.

    The store speaks term *keys* internally but exposes the node-id
    interface of the live extractors, so it drops into
    :class:`~repro.core.candidates.CandidateListBuilder` and
    :class:`~repro.core.hmm.ReformulationHMM` unchanged.

    All reads route through the :meth:`_get` / :meth:`_keys` /
    :meth:`_items` accessors; the sharded v2 store
    (:class:`repro.offline_store.ShardedTermRelationStore`) overrides
    just those to serve the same interface from lazily-loaded shards.
    """

    FORMAT_VERSION = 1

    def __init__(self, graph: TATGraph) -> None:
        self.graph = graph
        self._relations: Dict[str, TermRelations] = {}

    # ------------------------------------------------------------------ #
    # storage accessors (the override surface of the sharded store)
    # ------------------------------------------------------------------ #

    def _get(self, key: str) -> Optional[TermRelations]:
        """Relations of one term key, or None when absent."""
        return self._relations.get(key)

    def _keys(self) -> List[str]:
        """All stored term keys."""
        return list(self._relations)

    def _items(self) -> Iterator[Tuple[str, TermRelations]]:
        """All (key, relations) pairs."""
        return iter(self._relations.items())

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #

    def put(
        self,
        term: FieldTerm,
        similar: List[Tuple[FieldTerm, float]],
        closeness: Dict[FieldTerm, float],
    ) -> None:
        """Store one term's similar list and closeness row."""
        self._relations[_term_key(term)] = TermRelations(
            similar=[(_term_key(t), s) for t, s in similar],
            closeness={_term_key(t): c for t, c in closeness.items()},
        )

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, term: FieldTerm) -> bool:
        return self._get(_term_key(term)) is not None

    def terms(self) -> List[FieldTerm]:
        """All terms with stored relations."""
        return [_parse_term_key(k) for k in self._keys()]

    # ------------------------------------------------------------------ #
    # online interfaces (same surface as the live extractors)
    # ------------------------------------------------------------------ #

    def _term_of_node(self, node_id: int) -> Optional[FieldTerm]:
        node = self.graph.node(node_id)
        if node.text is None:
            return None
        return node.payload

    def similar_nodes(self, node_id: int, top_n: int) -> List[SimilarNode]:
        """Stored similar-term list, resolved back to node ids."""
        term = self._term_of_node(node_id)
        if term is None:
            return []
        relations = self._get(_term_key(term))
        if relations is None:
            return []
        out: List[SimilarNode] = []
        for key, score in relations.similar[:top_n]:
            other_id = self.graph.registry.get_id(
                Node.for_term(_parse_term_key(key))
            )
            if other_id is not None:
                out.append(SimilarNode(other_id, score))
        return out

    def similarity(self, node_a: int, node_b: int) -> float:
        """Stored sim(a, b); 0 when outside a's stored list."""
        term_a = self._term_of_node(node_a)
        term_b = self._term_of_node(node_b)
        if term_a is None or term_b is None:
            return 0.0
        relations = self._get(_term_key(term_a))
        if relations is None:
            return 0.0
        key_b = _term_key(term_b)
        for key, score in relations.similar:
            if key == key_b:
                return score
        return 0.0

    def similar_terms(self, text: str, top_n: int = 10) -> List[Tuple[str, float]]:
        """Stored similar terms for a raw keyword."""
        node_id = self.graph.resolve_text_one(text)
        out = []
        for sim in self.similar_nodes(node_id, top_n):
            node = self.graph.node(sim.node_id)
            out.append((node.text or str(node), sim.score))
        return out

    def closeness(self, node_a: int, node_b: int) -> float:
        """Stored clos(a, b); 0 when outside a's stored row."""
        term_a = self._term_of_node(node_a)
        term_b = self._term_of_node(node_b)
        if term_a is None or term_b is None:
            return 0.0
        relations = self._get(_term_key(term_a))
        if relations is None:
            return 0.0
        return relations.closeness.get(_term_key(term_b), 0.0)

    def precompute(self, node_ids: Iterable[int]) -> None:
        """No-op: the store *is* the precomputation (interface parity)."""

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def save(self, path: PathLike) -> None:
        """Write the store as one JSON document (format version 1)."""
        payload = {
            "format_version": TermRelationStore.FORMAT_VERSION,
            "terms": {
                key: {
                    "similar": relations.similar,
                    "closeness": relations.closeness,
                }
                for key, relations in self._items()
            },
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    def save_sharded(
        self,
        path: PathLike,
        n_shards: int = 8,
        build_info: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Write the sharded v2 layout; see :mod:`repro.offline_store`."""
        from repro.offline_store import write_store_v2

        return write_store_v2(
            self, path, n_shards=n_shards, build_info=build_info
        )

    @classmethod
    def load(cls, path: PathLike, graph: TATGraph) -> "TermRelationStore":
        """Load a store written by any supported format (v1/v2/v3).

        A directory (or a path to its ``manifest.json``) is dispatched on
        the manifest's ``format_version``: 3 opens as a memmapped
        :class:`~repro.storage.binary.BinaryTermRelationStore`, otherwise
        it comes back as a lazily-loading
        :class:`~repro.offline_store.ShardedTermRelationStore` (v2); a
        plain file is the single-document v1 format.
        """
        p = Path(path)
        if p.is_dir() or p.name == "manifest.json":
            root = p if p.is_dir() else p.parent
            version = None
            try:
                version = json.loads(
                    (root / "manifest.json").read_text(encoding="utf-8")
                ).get("format_version")
            except (OSError, json.JSONDecodeError):
                pass  # let the per-format loader raise its own error
            if version == 3:
                from repro.storage.binary import BinaryTermRelationStore

                return BinaryTermRelationStore.load(root, graph)
            from repro.offline_store import ShardedTermRelationStore

            return ShardedTermRelationStore.load(p, graph)
        try:
            payload = json.loads(p.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot load term relations from {path}: {exc}")
        if payload.get("format_version") != cls.FORMAT_VERSION:
            raise ReproError(
                f"{path}: unsupported format version "
                f"{payload.get('format_version')!r}"
            )
        store = cls(graph)

        def canon(key: str) -> str:
            # canonicalize legacy raw (unescaped) v1 keys to escaped form
            # so FieldTerm lookups find them; identity for escaped keys
            return _term_key(_parse_term_key(key))

        for key, data in payload.get("terms", {}).items():
            store._relations[canon(key)] = TermRelations(
                similar=[
                    (canon(k), float(s)) for k, s in data.get("similar", [])
                ],
                closeness={
                    canon(k): float(c)
                    for k, c in data.get("closeness", {}).items()
                },
            )
        return store


@dataclass
class PrecomputeStats:
    """Per-run snapshot of one :meth:`OfflinePrecomputer.build_store` run.

    The same numbers are recorded into the :mod:`repro.obs` metrics
    registry as the run progresses (``repro_offline_*`` series — see
    ``docs/observability.md``); this dataclass is the cumulative view of
    one run, kept for programmatic access and CLI summaries.  Both are
    written from a single update site in :meth:`~OfflinePrecomputer.build_store`.
    """

    total_terms: int = 0
    terms_done: int = 0
    n_batches: int = 0
    batch_size: int = 0
    workers: int = 0
    walk_method: str = DEFAULT_WALK_METHOD
    elapsed_seconds: float = 0.0
    walk_iterations: int = 0
    #: verified per-batch walk residuals (max over the batch's columns)
    batch_residuals: List[float] = field(default_factory=list)

    @property
    def terms_per_second(self) -> float:
        """Throughput of the run so far."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.terms_done / self.elapsed_seconds

    @property
    def max_residual(self) -> float:
        """Worst verified walk residual across all batches."""
        return max(self.batch_residuals) if self.batch_residuals else 0.0


class OfflinePrecomputer:
    """Materializes the offline stage for a vocabulary of terms.

    Parameters
    ----------
    graph:
        The TAT graph.
    similarity:
        A live similarity backend (contextual walk by default).
    closeness:
        A live closeness extractor.
    n_similar:
        How many similar terms to store per term (the online candidate
        lists can only be as long as this).
    closeness_top:
        How many closeness entries to store per term (its closest term
        nodes); pairs outside the stored row read as 0.
    """

    def __init__(
        self,
        graph: TATGraph,
        similarity=None,
        closeness: Optional[ClosenessExtractor] = None,
        n_similar: int = 20,
        closeness_top: int = 200,
    ) -> None:
        if n_similar < 1 or closeness_top < 1:
            raise ReproError("n_similar and closeness_top must be >= 1")
        from repro.graph.similarity import SimilarityExtractor

        self.graph = graph
        self.similarity = similarity or SimilarityExtractor(graph)
        self.closeness = closeness or ClosenessExtractor(graph)
        self.n_similar = n_similar
        self.closeness_top = closeness_top
        self.stats = PrecomputeStats()

    def vocabulary(self, fields: Optional[List[Tuple[str, str]]] = None) -> List[FieldTerm]:
        """The terms to precompute: all indexed terms, or chosen fields."""
        return [
            term
            for term in self.graph.index.terms()
            if fields is None or term.field in fields
        ]

    def precompute_term(self, term: FieldTerm) -> TermRelations:
        """Materialize one term's relations (the sequential unit of work)."""
        node_id = self.graph.term_node_id(term)
        similar = [
            (self.graph.node(s.node_id).payload, s.score)
            for s in self.similarity.similar_nodes(node_id, self.n_similar)
        ]
        closeness = {
            self.graph.node(other).payload: score
            for other, score in self.closeness.close_terms(
                node_id, self.closeness_top
            )
        }
        return TermRelations(
            similar=[(_term_key(t), s) for t, s in similar],
            closeness={_term_key(t): c for t, c in closeness.items()},
        )

    def _close_rows(
        self, node_ids: List[int], workers: int
    ) -> Dict[int, List[Tuple[int, float]]]:
        """Closeness rows for one batch, fanned across a thread pool.

        Each worker's chunk touches disjoint per-source cache entries, so
        the extractor's dict caches stay consistent under the pool.
        """
        if not hasattr(self.closeness, "close_rows"):
            return {
                nid: self.closeness.close_terms(nid, self.closeness_top)
                for nid in node_ids
            }
        if workers <= 1 or len(node_ids) <= 1:
            return self.closeness.close_rows(node_ids, self.closeness_top)
        chunks = [c for c in (node_ids[i::workers] for i in range(workers)) if c]
        rows: Dict[int, List[Tuple[int, float]]] = {}
        with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            futures = [
                pool.submit(self.closeness.close_rows, chunk, self.closeness_top)
                for chunk in chunks
            ]
            for future in futures:
                rows.update(future.result())
        return rows

    def build_store(
        self,
        fields: Optional[List[Tuple[str, str]]] = None,
        progress_every: int = 0,
        batch_size: int = 64,
        workers: int = 1,
        walk_method: str = DEFAULT_WALK_METHOD,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> TermRelationStore:
        """Run the full offline stage and return the populated store.

        The vocabulary is processed in batches of *batch_size* terms:
        each batch's contextual walks are solved together (see
        :meth:`~repro.graph.similarity.SimilarityExtractor.batch_walk`)
        and its closeness BFS rows are fanned across *workers* threads.
        Extractor caches are evicted as soon as a term's relations are
        read, so memory stays O(batch), not O(vocabulary).

        *progress* is called as ``progress(done, total)`` after every
        batch; *progress_every* additionally logs every that-many terms
        through the module logger.
        """
        if batch_size < 1:
            raise ReproError("batch_size must be >= 1")
        if workers < 1:
            raise ReproError("workers must be >= 1")
        store = TermRelationStore(self.graph)
        vocabulary = self.vocabulary(fields)
        stats = PrecomputeStats(
            total_terms=len(vocabulary),
            batch_size=batch_size,
            workers=workers,
            walk_method=walk_method,
        )
        self.stats = stats

        # The registry mirror of this run's counters: the offline stage
        # always records (it runs for seconds; the updates are per-batch,
        # not per-term), so `repro stats` sees precompute activity even
        # without the tracing switch.
        registry = obs.registry()
        terms_counter = registry.counter(
            "repro_offline_terms_total", "Vocabulary terms precomputed"
        )
        batches_counter = registry.counter(
            "repro_offline_batches_total", "Precompute batches processed"
        )
        iterations_counter = registry.counter(
            "repro_offline_walk_iterations_total",
            "Batched-walk solver iterations",
        )
        residual_hist = registry.histogram(
            "repro_offline_walk_residual",
            "Verified max walk residual per batch",
            buckets=[10.0 ** e for e in range(-16, -2)],
        )
        batch_seconds_hist = registry.histogram(
            "repro_offline_batch_seconds",
            "Wall-clock seconds per precompute batch",
        )

        start = time.perf_counter()
        batched = hasattr(self.similarity, "batch_walk")
        done = 0
        with obs.span(
            "precompute.build_store",
            terms=len(vocabulary),
            batch_size=batch_size,
            workers=workers,
            walk_method=walk_method,
        ):
            for lo in range(0, len(vocabulary), batch_size):
                batch = vocabulary[lo:lo + batch_size]
                batch_start = time.perf_counter()
                with obs.span(
                    "precompute.batch", index=stats.n_batches, size=len(batch)
                ) as batch_span:
                    node_ids = [
                        self.graph.term_node_id(term) for term in batch
                    ]
                    if batched:
                        result = self.similarity.batch_walk(
                            node_ids, method=walk_method
                        )
                        if result is not None:
                            stats.batch_residuals.append(result.residual)
                            stats.walk_iterations += result.iterations
                            iterations_counter.inc(result.iterations)
                            residual_hist.observe(result.residual)
                            batch_span.set_attribute(
                                "residual", result.residual
                            )
                            batch_span.set_attribute(
                                "iterations", result.iterations
                            )
                    close_rows = self._close_rows(node_ids, workers)
                    for term, node_id in zip(batch, node_ids):
                        similar = [
                            (self.graph.node(s.node_id).payload, s.score)
                            for s in self.similarity.similar_nodes(
                                node_id, self.n_similar
                            )
                        ]
                        closeness = {
                            self.graph.node(other).payload: score
                            for other, score in close_rows[node_id]
                        }
                        store.put(term, similar, closeness)
                        if hasattr(self.similarity, "evict"):
                            self.similarity.evict(node_id)
                        if hasattr(self.closeness, "evict"):
                            self.closeness.evict(node_id)
                        done += 1
                        if progress_every and done % progress_every == 0:
                            logger.info(
                                "precomputed %d/%d terms",
                                done, len(vocabulary),
                            )
                stats.n_batches += 1
                stats.terms_done = done
                stats.elapsed_seconds = time.perf_counter() - start
                terms_counter.inc(len(batch))
                batches_counter.inc()
                batch_seconds_hist.observe(
                    time.perf_counter() - batch_start
                )
                if progress is not None:
                    progress(done, len(vocabulary))
        return store
