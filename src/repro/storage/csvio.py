"""CSV / TSV import and export for the storage engine.

Real deployments would load a DBLP dump; this module lets users bulk-load
their own structured data from delimited files, with the same integrity
checks as programmatic inserts.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import SchemaError
from repro.storage.database import Database
from repro.storage.schema import TableSchema

PathLike = Union[str, Path]


def _coerce(value: str, col_type: str) -> object:
    """Convert a CSV cell to the column's declared type ('' -> None)."""
    if value == "":
        return None
    if col_type == "int":
        try:
            return int(value)
        except ValueError:
            raise SchemaError(f"cannot coerce {value!r} to int") from None
    if col_type == "float":
        try:
            return float(value)
        except ValueError:
            raise SchemaError(f"cannot coerce {value!r} to float") from None
    return value


def load_table_csv(
    database: Database,
    table_name: str,
    path: PathLike,
    delimiter: str = ",",
    columns: Optional[List[str]] = None,
) -> int:
    """Load rows from a delimited file into *table_name*.

    The file must have a header row unless *columns* is given.  Returns the
    number of rows inserted.
    """
    schema: TableSchema = database.table(table_name).schema
    inserted = 0
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        if columns is None:
            header = next(reader, None)
            if header is None:
                return 0
            columns = [h.strip() for h in header]
        types = [schema.column(c).type for c in columns]
        for raw in reader:
            if not raw:
                continue
            if len(raw) != len(columns):
                raise SchemaError(
                    f"{path}: row has {len(raw)} cells, expected {len(columns)}"
                )
            row: Dict[str, object] = {
                c: _coerce(v, t) for c, v, t in zip(columns, raw, types)
            }
            database.insert(table_name, row)
            inserted += 1
    return inserted


def dump_table_csv(
    database: Database,
    table_name: str,
    path: PathLike,
    delimiter: str = ",",
) -> int:
    """Write all rows of *table_name* to a delimited file with a header."""
    table = database.table(table_name)
    columns = table.schema.column_names
    written = 0
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        writer.writerow(columns)
        for row in table.scan():
            writer.writerow(
                ["" if row[c] is None else row[c] for c in columns]
            )
            written += 1
    return written
