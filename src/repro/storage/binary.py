"""Binary memmap-able term-relation store — format version 3.

Format v1 is one JSON document, v2 a directory of JSON shards: both pay
a JSON parse per process, and every process keeps its own decoded copy
of the vocabulary on the heap.  That is exactly the wrong shape for a
pre-fork worker pool (:mod:`repro.server.prefork`), where N processes
serve the *same* read-only relations.

Version 3 stores the relations as numpy ``.npy`` blocks opened with
``np.load(..., mmap_mode="r")`` plus an offset-indexed string table:

.. code-block:: text

    store-v3/
      manifest.json          # format_version 3, block table + SHA-256s, build info
      keys.bin               # UTF-8 term keys, concatenated, byte-sorted
      key_offsets.npy        # int64 (n_keys+1,) offsets into keys.bin
      stored.npy             # uint8 (n_keys,) — 1 where the key has a stored row
      similar_indptr.npy     # int64 (n_keys+1,) CSR row pointers (rank order kept)
      similar_cols.npy       # int64 — key-table index of each similar entry
      similar_scores.npy     # float64 — Eq 2 similarity scores
      close_indptr.npy       # int64 (n_keys+1,) CSR row pointers
      close_cols.npy         # int64 — sorted ascending within each row
      close_scores.npy       # float64 — Eq 3 closeness scores

Design points:

* **Cold start is an mmap + index read, not a parse.**  Opening the
  store reads the manifest, maps the blocks, and checks a few boundary
  values; no term is decoded until it is looked up.
* **N processes share one physical copy.**  The blocks are mapped
  read-only, so every worker of a pre-fork pool faults the same page
  cache pages; per-process heap grows only with the tiny lookup caches.
* **Lookups are zero-copy.**  ``closeness(a, b)`` is a binary search
  over the memmapped ``close_cols`` row (the rows are written sorted);
  ``similar_nodes`` slices the rank-ordered ``similar_*`` rows and
  decodes only the keys it returns.  No JSON, no dict materialization
  on the online path.
* **Bit-identical to v1/v2.**  The stored values are the same float64
  scores the JSON formats carry; only the container changed, so a
  store-backed pipeline answers identically across formats (asserted in
  ``tests/test_store_binary.py`` and ``benchmarks/bench_server_qps.py``).

The manifest carries a SHA-256 per block.  ``load(..., verify=True)``
(the default) checks them before serving; pass ``verify=False`` to skip
the hash pass when the store is trusted (e.g. freshly migrated in the
same job).  See ``docs/store_formats.md`` for the full layout and
migration matrix.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ReproError
from repro.graph.nodes import Node
from repro.graph.similarity import SimilarNode
from repro.graph.tat import TATGraph
from repro.offline import (
    PathLike,
    TermRelations,
    TermRelationStore,
    _parse_term_key,
    _term_key,
)

FORMAT_VERSION = 3
MANIFEST_NAME = "manifest.json"

#: Block roles every v3 store must carry, in manifest order.
BLOCK_ROLES = (
    "keys",
    "key_offsets",
    "stored",
    "similar_indptr",
    "similar_cols",
    "similar_scores",
    "close_indptr",
    "close_cols",
    "close_scores",
)

#: Canonical file name per block role.
BLOCK_FILES = {
    "keys": "keys.bin",
    "key_offsets": "key_offsets.npy",
    "stored": "stored.npy",
    "similar_indptr": "similar_indptr.npy",
    "similar_cols": "similar_cols.npy",
    "similar_scores": "similar_scores.npy",
    "close_indptr": "close_indptr.npy",
    "close_cols": "close_cols.npy",
    "close_scores": "close_scores.npy",
}

#: Key-index and materialized-row LRU capacities (per-process caches;
#: the mapped blocks themselves are shared through the page cache).
DEFAULT_KEY_CACHE = 4096
DEFAULT_ROW_CACHE = 1024


def _sha256_file(path: Path, chunk: int = 1 << 20) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def write_store_v3(
    store: TermRelationStore,
    path: PathLike,
    build_info: Optional[Dict[str, object]] = None,
) -> Path:
    """Write *store* as a v3 block directory; returns the directory path.

    The key table holds every key the store mentions — stored terms plus
    keys referenced only from similar lists or closeness rows — sorted
    by UTF-8 bytes so the reader can binary-search without an index
    structure.  Closeness rows are re-sorted by column index (dict order
    is not semantic); similar rows keep their rank order.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)

    relations: Dict[str, TermRelations] = dict(store._items())
    all_keys = set(relations)
    for rel in relations.values():
        all_keys.update(key for key, _score in rel.similar)
        all_keys.update(rel.closeness)
    key_list = sorted(all_keys, key=lambda key: key.encode("utf-8"))
    index = {key: i for i, key in enumerate(key_list)}
    n_keys = len(key_list)

    encoded = [key.encode("utf-8") for key in key_list]
    key_offsets = np.zeros(n_keys + 1, dtype=np.int64)
    np.cumsum([len(blob) for blob in encoded], out=key_offsets[1:])
    stored = np.zeros(n_keys, dtype=np.uint8)

    sim_indptr = np.zeros(n_keys + 1, dtype=np.int64)
    close_indptr = np.zeros(n_keys + 1, dtype=np.int64)
    sim_cols: List[int] = []
    sim_scores: List[float] = []
    close_cols: List[int] = []
    close_scores: List[float] = []
    for i, key in enumerate(key_list):
        rel = relations.get(key)
        if rel is not None:
            stored[i] = 1
            for other, score in rel.similar:
                sim_cols.append(index[other])
                sim_scores.append(float(score))
            for col, score in sorted(
                (index[other], float(score))
                for other, score in rel.closeness.items()
            ):
                close_cols.append(col)
                close_scores.append(score)
        sim_indptr[i + 1] = len(sim_cols)
        close_indptr[i + 1] = len(close_cols)

    blocks_data = {
        "key_offsets": key_offsets,
        "stored": stored,
        "similar_indptr": sim_indptr,
        "similar_cols": np.asarray(sim_cols, dtype=np.int64),
        "similar_scores": np.asarray(sim_scores, dtype=np.float64),
        "close_indptr": close_indptr,
        "close_cols": np.asarray(close_cols, dtype=np.int64),
        "close_scores": np.asarray(close_scores, dtype=np.float64),
    }

    (root / BLOCK_FILES["keys"]).write_bytes(b"".join(encoded))
    for role, array in blocks_data.items():
        np.save(root / BLOCK_FILES[role], array)

    bytes_written = obs.registry().counter(
        "repro_offline_store_bytes_written_total",
        "Bytes of shard data written by write_store_v2",
    )
    blocks = []
    for role in BLOCK_ROLES:
        file_path = root / BLOCK_FILES[role]
        size = file_path.stat().st_size
        bytes_written.inc(size)
        blocks.append({
            "role": role,
            "file": BLOCK_FILES[role],
            "bytes": size,
            "sha256": _sha256_file(file_path),
        })
    manifest = {
        "format_version": FORMAT_VERSION,
        "n_keys": n_keys,
        "n_terms": int(stored.sum()),
        "blocks": blocks,
        "build": dict(build_info or {}),
    }
    (root / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return root


def load_manifest_v3(root: PathLike) -> Dict[str, object]:
    """Parse and validate a v3 manifest (blocks are *not* read)."""
    root = Path(root)
    path = root / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load term relations from {root}: {exc}")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(f"{root}: unsupported format version {version!r}")
    blocks = manifest.get("blocks")
    if not isinstance(blocks, list):
        raise ReproError(f"{path}: manifest is missing its block table")
    roles = {
        block.get("role") for block in blocks if isinstance(block, dict)
    }
    missing = [role for role in BLOCK_ROLES if role not in roles]
    if missing:
        raise ReproError(
            f"{path}: manifest is missing blocks {missing}"
        )
    if not isinstance(manifest.get("n_keys"), int) or not isinstance(
        manifest.get("n_terms"), int
    ):
        raise ReproError(f"{path}: manifest is missing n_keys/n_terms")
    return manifest


class BinaryTermRelationStore(TermRelationStore):
    """Read-only v3 store serving straight from memmapped blocks.

    The full :class:`~repro.offline.TermRelationStore` online surface is
    overridden to read the arrays directly — no JSON decode and no dict
    materialization on the query path:

    * ``closeness(a, b)`` binary-searches the sorted ``close_cols`` row;
    * ``similar_nodes`` slices the rank-ordered similar row and decodes
      only the returned keys;
    * ``_get`` (the cold accessor behind ``__contains__`` / migration)
      materializes full rows through a bounded LRU.

    Parameters
    ----------
    graph:
        The TAT graph used to resolve node ids back to terms.
    root:
        The block directory.
    manifest:
        A parsed, validated manifest (see :func:`load_manifest_v3`).
    verify:
        When true (the default through :meth:`load`), every block's
        SHA-256 is checked against the manifest before serving.
    """

    FORMAT_VERSION = FORMAT_VERSION

    def __init__(
        self,
        graph: TATGraph,
        root: PathLike,
        manifest: Dict[str, object],
        verify: bool = True,
    ) -> None:
        super().__init__(graph)
        self.root = Path(root)
        self.manifest = manifest
        self.n_keys: int = manifest["n_keys"]
        self._blocks = {
            block["role"]: block for block in manifest["blocks"]
        }
        if verify:
            self.verify_checksums()
        self._keys_blob = self._map_keys_blob()
        self._key_offsets = self._load_block("key_offsets", np.int64)
        self._stored = self._load_block("stored", np.uint8)
        self._sim_indptr = self._load_block("similar_indptr", np.int64)
        self._sim_cols = self._load_block("similar_cols", np.int64)
        self._sim_scores = self._load_block("similar_scores", np.float64)
        self._close_indptr = self._load_block("close_indptr", np.int64)
        self._close_cols = self._load_block("close_cols", np.int64)
        self._close_scores = self._load_block("close_scores", np.float64)
        self._check_structure()
        self._key_index_cache: "OrderedDict[str, Optional[int]]" = OrderedDict()
        self._row_cache: "OrderedDict[int, TermRelations]" = OrderedDict()
        registry = obs.registry()
        registry.counter(
            "repro_store_v3_opens_total", "v3 binary stores opened"
        ).inc()
        registry.gauge(
            "repro_store_v3_mapped_bytes",
            "Bytes of v3 blocks mapped by the last open",
        ).set(sum(block["bytes"] for block in self._blocks.values()))

    # ------------------------------------------------------------------ #
    # open / verify
    # ------------------------------------------------------------------ #

    @classmethod
    def load(
        cls,
        path: PathLike,
        graph: TATGraph,
        verify: bool = True,
    ) -> "BinaryTermRelationStore":
        """Open a v3 store: manifest parse + mmap, no term decoded."""
        root = Path(path)
        if root.name == MANIFEST_NAME and not root.is_dir():
            root = root.parent
        manifest = load_manifest_v3(root)
        return cls(graph, root, manifest, verify=verify)

    def verify_checksums(self) -> None:
        """Hash every block against the manifest; raise on any mismatch."""
        for role in BLOCK_ROLES:
            block = self._blocks[role]
            path = self.root / block["file"]
            try:
                actual = _sha256_file(path)
            except OSError as exc:
                raise ReproError(
                    f"cannot load term relations from {path}: {exc}"
                )
            if actual != block.get("sha256"):
                raise ReproError(
                    f"{path}: block checksum mismatch "
                    f"(manifest {block.get('sha256')}, file {actual})"
                )

    def _map_keys_blob(self) -> np.ndarray:
        path = self.root / self._blocks["keys"]["file"]
        try:
            if path.stat().st_size == 0:
                return np.empty(0, dtype=np.uint8)
            return np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot load term relations from {path}: {exc}")

    def _load_block(self, role: str, dtype) -> np.ndarray:
        path = self.root / self._blocks[role]["file"]
        try:
            array = np.load(path, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot load term relations from {path}: {exc}")
        if array.dtype != dtype or array.ndim != 1:
            raise ReproError(
                f"{path}: expected 1-d {np.dtype(dtype).name} block, "
                f"got {array.ndim}-d {array.dtype.name}"
            )
        return array

    def _check_structure(self) -> None:
        """Boundary consistency checks — touch O(1) values, not blocks."""
        n = self.n_keys
        ok = (
            len(self._key_offsets) == n + 1
            and len(self._stored) == n
            and len(self._sim_indptr) == n + 1
            and len(self._close_indptr) == n + 1
            and (n == 0 or int(self._key_offsets[0]) == 0)
            and int(self._key_offsets[-1]) == len(self._keys_blob)
            and int(self._sim_indptr[-1])
            == len(self._sim_cols)
            == len(self._sim_scores)
            and int(self._close_indptr[-1])
            == len(self._close_cols)
            == len(self._close_scores)
        )
        if not ok:
            raise ReproError(
                f"{self.root}: v3 block shapes disagree with the manifest"
            )

    # ------------------------------------------------------------------ #
    # string table
    # ------------------------------------------------------------------ #

    def _key_bytes_at(self, row: int) -> bytes:
        lo = int(self._key_offsets[row])
        hi = int(self._key_offsets[row + 1])
        return self._keys_blob[lo:hi].tobytes()

    def _key_at(self, row: int) -> str:
        return self._key_bytes_at(row).decode("utf-8")

    def _key_index(self, key: str) -> Optional[int]:
        """Row of *key* in the byte-sorted table, or None (LRU-cached)."""
        cached = self._key_index_cache.get(key, _MISS)
        if cached is not _MISS:
            self._key_index_cache.move_to_end(key)
            return cached
        target = key.encode("utf-8")
        lo, hi = 0, self.n_keys
        while lo < hi:
            mid = (lo + hi) // 2
            if self._key_bytes_at(mid) < target:
                lo = mid + 1
            else:
                hi = mid
        row: Optional[int] = (
            lo
            if lo < self.n_keys and self._key_bytes_at(lo) == target
            else None
        )
        self._key_index_cache[key] = row
        if len(self._key_index_cache) > DEFAULT_KEY_CACHE:
            self._key_index_cache.popitem(last=False)
        return row

    # ------------------------------------------------------------------ #
    # zero-copy online interfaces
    # ------------------------------------------------------------------ #

    def similar_nodes(self, node_id: int, top_n: int) -> List[SimilarNode]:
        """Top-*top_n* similar nodes, sliced from the rank-ordered
        ``similar_*`` CSR row; only the returned keys are decoded."""
        term = self._term_of_node(node_id)
        if term is None:
            return []
        row = self._key_index(_term_key(term))
        if row is None or not self._stored[row]:
            return []
        lo = int(self._sim_indptr[row])
        hi = min(int(self._sim_indptr[row + 1]), lo + top_n)
        out: List[SimilarNode] = []
        for col, score in zip(
            self._sim_cols[lo:hi], self._sim_scores[lo:hi]
        ):
            other_id = self.graph.registry.get_id(
                Node.for_term(_parse_term_key(self._key_at(int(col))))
            )
            if other_id is not None:
                out.append(SimilarNode(other_id, float(score)))
        return out

    def similarity(self, node_a: int, node_b: int) -> float:
        """Stored Eq 2 similarity of ``node_b`` in ``node_a``'s list
        (0.0 outside the stored top list), read off the mapped row."""
        term_a = self._term_of_node(node_a)
        term_b = self._term_of_node(node_b)
        if term_a is None or term_b is None:
            return 0.0
        row = self._key_index(_term_key(term_a))
        if row is None or not self._stored[row]:
            return 0.0
        col = self._key_index(_term_key(term_b))
        if col is None:
            return 0.0
        lo = int(self._sim_indptr[row])
        hi = int(self._sim_indptr[row + 1])
        hits = np.nonzero(self._sim_cols[lo:hi] == col)[0]
        if len(hits):
            return float(self._sim_scores[lo + int(hits[0])])
        return 0.0

    def closeness(self, node_a: int, node_b: int) -> float:
        """Stored Eq 3 closeness, via one ``searchsorted`` over the
        column-sorted memmapped row — the zero-copy HMM lookup path."""
        term_a = self._term_of_node(node_a)
        term_b = self._term_of_node(node_b)
        if term_a is None or term_b is None:
            return 0.0
        row = self._key_index(_term_key(term_a))
        if row is None or not self._stored[row]:
            return 0.0
        col = self._key_index(_term_key(term_b))
        if col is None:
            return 0.0
        lo = int(self._close_indptr[row])
        hi = int(self._close_indptr[row + 1])
        if lo == hi:
            return 0.0
        # rows are written sorted by column index: binary search, then a
        # single element compare — no row materialization
        pos = lo + int(
            np.searchsorted(self._close_cols[lo:hi], col)
        )
        if pos < hi and int(self._close_cols[pos]) == col:
            return float(self._close_scores[pos])
        return 0.0

    # ------------------------------------------------------------------ #
    # storage accessor overrides (cold paths: contains/terms/migration)
    # ------------------------------------------------------------------ #

    def _materialize(self, row: int) -> TermRelations:
        cached = self._row_cache.get(row)
        if cached is not None:
            self._row_cache.move_to_end(row)
            return cached
        slo = int(self._sim_indptr[row])
        shi = int(self._sim_indptr[row + 1])
        clo = int(self._close_indptr[row])
        chi = int(self._close_indptr[row + 1])
        relations = TermRelations(
            similar=[
                (self._key_at(int(col)), float(score))
                for col, score in zip(
                    self._sim_cols[slo:shi], self._sim_scores[slo:shi]
                )
            ],
            closeness={
                self._key_at(int(col)): float(score)
                for col, score in zip(
                    self._close_cols[clo:chi], self._close_scores[clo:chi]
                )
            },
        )
        self._row_cache[row] = relations
        if len(self._row_cache) > DEFAULT_ROW_CACHE:
            self._row_cache.popitem(last=False)
        return relations

    def _get(self, key: str) -> Optional[TermRelations]:
        row = self._key_index(key)
        if row is None or not self._stored[row]:
            return None
        return self._materialize(row)

    def _keys(self) -> List[str]:
        return [
            self._key_at(row)
            for row in range(self.n_keys)
            if self._stored[row]
        ]

    def _items(self) -> Iterator[Tuple[str, TermRelations]]:
        for row in range(self.n_keys):
            if self._stored[row]:
                yield self._key_at(row), self._materialize(row)

    def __len__(self) -> int:
        return self.manifest["n_terms"]

    def put(self, term, similar, closeness) -> None:
        """Binary stores are read-only serving artifacts."""
        raise ReproError(
            "binary (v3) term-relation stores are read-only; rebuild with "
            "OfflinePrecomputer.build_store() and write_store_v3()"
        )

    def build_info(self) -> Dict[str, object]:
        """The manifest's free-form build metadata."""
        return dict(self.manifest.get("build", {}))

    def blocks_info(self) -> List[Dict[str, object]]:
        """The manifest's block table (role, file, bytes, sha256)."""
        return [dict(block) for block in self.manifest["blocks"]]


#: Sentinel distinguishing "cached None" from "not cached".
_MISS = object()
