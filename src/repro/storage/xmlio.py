"""XML ingestion (the paper's other schemaless target).

Section III: the approach applies "to other kind of schema or even
schemaless structured data, e.g., XML, RDF and graph data".  This module
shreds an XML document into the relational substrate:

* every element becomes a row of ``elements`` (tag atomic, text content
  segmented), with a self-referencing FK to its parent — the document
  tree becomes the tuple graph;
* every attribute becomes a row of ``attributes`` (name atomic, value
  segmented) linked to its element.

Element text and attribute values feed the inverted index, so XML
vocabulary becomes TAT term nodes with no further changes.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Optional, Union

from repro.errors import ReproError
from repro.storage.database import Database
from repro.storage.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)

PathLike = Union[str, Path]


def xml_schema() -> DatabaseSchema:
    """The shredded-document relational schema."""
    schema = DatabaseSchema()
    schema.add_table(TableSchema(
        "elements",
        [
            Column("eid", "int", nullable=False),
            Column("tag", "text"),
            Column("text", "text"),
            Column("parent", "int"),
        ],
        primary_key="eid",
        text_fields=["tag", "text"],
        atomic_fields=["tag"],
    ))
    schema.add_table(TableSchema(
        "attributes",
        [
            Column("aid", "int", nullable=False),
            Column("eid", "int"),
            Column("name", "text"),
            Column("value", "text"),
        ],
        primary_key="aid",
        text_fields=["name", "value"],
        atomic_fields=["name"],
    ))
    schema.add_foreign_key(ForeignKey("elements", "parent", "elements", "eid"))
    schema.add_foreign_key(ForeignKey("attributes", "eid", "elements", "eid"))
    return schema


def xml_to_database(
    source: Union[str, PathLike],
    database: Optional[Database] = None,
) -> Database:
    """Shred an XML document (string or file path) into a database.

    Multiple documents can share one database: pass the database returned
    by a previous call to append another document's tree.
    """
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith(".xml")
    ):
        try:
            root = ET.parse(str(source)).getroot()
        except (OSError, ET.ParseError) as exc:
            raise ReproError(f"cannot parse XML file {source}: {exc}")
    else:
        try:
            root = ET.fromstring(source)
        except ET.ParseError as exc:
            raise ReproError(f"cannot parse XML string: {exc}")

    if database is None:
        database = Database(xml_schema())
    elements = database.table("elements")
    attributes = database.table("attributes")
    next_eid = len(elements)
    next_aid = len(attributes)

    def visit(element: ET.Element, parent: Optional[int]) -> None:
        nonlocal next_eid, next_aid
        eid = next_eid
        next_eid += 1
        text = (element.text or "").strip() or None
        database.insert("elements", {
            "eid": eid,
            "tag": element.tag,
            "text": text,
            "parent": parent,
        })
        for name, value in sorted(element.attrib.items()):
            database.insert("attributes", {
                "aid": next_aid,
                "eid": eid,
                "name": name,
                "value": value,
            })
            next_aid += 1
        for child in element:
            visit(child, eid)

    visit(root, None)
    return database
