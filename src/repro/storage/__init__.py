"""In-memory relational storage engine (the paper's MySQL substitute).

Public surface::

    from repro.storage import (
        Column, TableSchema, ForeignKey, DatabaseSchema,
        Database, Table, TupleGraph,
        load_table_csv, dump_table_csv,
    )
"""

from repro.storage.csvio import dump_table_csv, load_table_csv
from repro.storage.database import Database, TupleRef
from repro.storage.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.storage.table import Row, Table
from repro.storage.tuplegraph import TupleGraph

__all__ = [
    "Column",
    "TableSchema",
    "ForeignKey",
    "DatabaseSchema",
    "Database",
    "Table",
    "Row",
    "TupleRef",
    "TupleGraph",
    "load_table_csv",
    "dump_table_csv",
]
