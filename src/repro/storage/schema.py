"""Relational schema objects.

The paper stores its DBLP corpus in MySQL; this module is the schema half of
our in-memory substitute.  A :class:`DatabaseSchema` is a set of
:class:`TableSchema` objects plus :class:`ForeignKey` references between
them — exactly the information needed to build the tuple graph of
Definition 1 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError

#: Column types understood by the storage engine.  The engine is dynamically
#: typed like SQLite; declared types are used for validation and for deciding
#: which columns the indexer treats as text.
COLUMN_TYPES = ("int", "float", "text")


@dataclass(frozen=True)
class Column:
    """A single column: a name, a declared type and a nullability flag."""

    name: str
    type: str = "text"
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.type not in COLUMN_TYPES:
            raise SchemaError(
                f"column {self.name!r}: unknown type {self.type!r}, "
                f"expected one of {COLUMN_TYPES}"
            )

    def validate_value(self, value: object) -> None:
        """Raise :class:`SchemaError` if *value* does not fit this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        if self.type == "int" and not isinstance(value, int):
            raise SchemaError(
                f"column {self.name!r} expects int, got {type(value).__name__}"
            )
        if self.type == "float" and not isinstance(value, (int, float)):
            raise SchemaError(
                f"column {self.name!r} expects float, got {type(value).__name__}"
            )
        if self.type == "text" and not isinstance(value, str):
            raise SchemaError(
                f"column {self.name!r} expects text, got {type(value).__name__}"
            )


@dataclass(frozen=True)
class ForeignKey:
    """A reference ``table.column -> ref_table.ref_column``.

    Foreign keys become the tuple-tuple edges of the TAT graph, so every
    join path the paper's random walk exploits is declared here.
    """

    table: str
    column: str
    ref_table: str
    ref_column: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.table}.{self.column} -> {self.ref_table}.{self.ref_column}"


class TableSchema:
    """Schema of one table: ordered columns, a primary key, text fields.

    Parameters
    ----------
    name:
        Table name; must be a valid identifier.
    columns:
        Ordered list of :class:`Column` (or plain names, which become
        nullable text columns).
    primary_key:
        Name of the primary-key column.  Required — the tuple graph
        identifies nodes by ``(table, pk)``.
    text_fields:
        Columns whose values are tokenized into term nodes.  Defaults to
        every declared ``text`` column except the primary key.
    atomic_fields:
        Text columns that must *not* be segmented (author names,
        institution names, conference names — see Section IV-A of the
        paper).  Each atomic field value becomes a single term node.
    """

    def __init__(
        self,
        name: str,
        columns: List,
        primary_key: str,
        text_fields: Optional[List[str]] = None,
        atomic_fields: Optional[List[str]] = None,
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name: {name!r}")
        normalized: List[Column] = []
        for col in columns:
            if isinstance(col, str):
                col = Column(col)
            elif not isinstance(col, Column):
                raise SchemaError(f"expected Column or str, got {type(col).__name__}")
            normalized.append(col)
        names = [c.name for c in normalized]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r}: duplicate column names in {names}")
        if primary_key not in names:
            raise UnknownColumnError(
                f"table {name!r}: primary key {primary_key!r} is not a column"
            )

        self.name = name
        self.columns: Tuple[Column, ...] = tuple(normalized)
        self.primary_key = primary_key
        self._by_name: Dict[str, Column] = {c.name: c for c in normalized}

        if text_fields is None:
            text_fields = [
                c.name
                for c in normalized
                if c.type == "text" and c.name != primary_key
            ]
        for f in text_fields:
            if f not in self._by_name:
                raise UnknownColumnError(f"table {name!r}: text field {f!r} unknown")
            if self._by_name[f].type != "text":
                raise SchemaError(f"table {name!r}: field {f!r} is not text")
        self.text_fields: Tuple[str, ...] = tuple(text_fields)

        atomic_fields = atomic_fields or []
        for f in atomic_fields:
            if f not in self.text_fields:
                raise SchemaError(
                    f"table {name!r}: atomic field {f!r} must be a text field"
                )
        self.atomic_fields: Tuple[str, ...] = tuple(atomic_fields)

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        """Column by name (raises if unknown)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownColumnError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        """True iff the column exists."""
        return name in self._by_name

    def is_atomic(self, field_name: str) -> bool:
        """True if *field_name* must be kept as a single term node."""
        return field_name in self.atomic_fields

    def validate_row(self, row: Dict[str, object]) -> None:
        """Validate a full row dict against this schema."""
        unknown = set(row) - set(self.column_names)
        if unknown:
            raise UnknownColumnError(
                f"table {self.name!r}: unknown columns {sorted(unknown)}"
            )
        for col in self.columns:
            col.validate_value(row.get(col.name))
        if row.get(self.primary_key) is None:
            raise SchemaError(
                f"table {self.name!r}: primary key {self.primary_key!r} is required"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TableSchema({self.name!r}, pk={self.primary_key!r}, cols={self.column_names})"


@dataclass
class DatabaseSchema:
    """All table schemas plus the foreign keys connecting them."""

    tables: Dict[str, TableSchema] = field(default_factory=dict)
    foreign_keys: List[ForeignKey] = field(default_factory=list)

    def add_table(self, table: TableSchema) -> None:
        """Register a table schema (name must be fresh)."""
        if table.name in self.tables:
            raise SchemaError(f"table {table.name!r} already defined")
        self.tables[table.name] = table

    def add_foreign_key(self, fk: ForeignKey) -> None:
        """Register a validated foreign key."""
        for tbl, col in ((fk.table, fk.column), (fk.ref_table, fk.ref_column)):
            if tbl not in self.tables:
                raise UnknownTableError(f"foreign key {fk}: unknown table {tbl!r}")
            if not self.tables[tbl].has_column(col):
                raise UnknownColumnError(
                    f"foreign key {fk}: table {tbl!r} has no column {col!r}"
                )
        if fk.ref_column != self.tables[fk.ref_table].primary_key:
            raise SchemaError(
                f"foreign key {fk}: must reference the primary key of "
                f"{fk.ref_table!r}"
            )
        self.foreign_keys.append(fk)

    def table(self, name: str) -> TableSchema:
        """Table schema by name (raises if unknown)."""
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTableError(f"unknown table {name!r}") from None

    def foreign_keys_of(self, table: str) -> List[ForeignKey]:
        """Outgoing foreign keys declared on *table*."""
        return [fk for fk in self.foreign_keys if fk.table == table]

    def foreign_keys_into(self, table: str) -> List[ForeignKey]:
        """Foreign keys from other tables that reference *table*."""
        return [fk for fk in self.foreign_keys if fk.ref_table == table]
