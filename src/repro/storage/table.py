"""In-memory table: rows indexed by primary key, with secondary indexes.

Rows are stored as immutable tuples in column order; callers interact with
plain dicts.  The table keeps a hash index on the primary key and lazily
built hash indexes on any other column that gets probed, which makes
foreign-key joins (the backbone of the tuple graph) O(1) per edge.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import DuplicateKeyError, IntegrityError, UnknownColumnError
from repro.storage.schema import TableSchema

Row = Dict[str, object]


class Table:
    """One relational table bound to a :class:`TableSchema`."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns = schema.column_names
        self._pk_pos = self._columns.index(schema.primary_key)
        self._rows: List[Tuple[object, ...]] = []
        self._pk_index: Dict[object, int] = {}
        self._secondary: Dict[str, Dict[object, List[int]]] = {}

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def insert(self, row: Row) -> object:
        """Insert one row dict; returns its primary-key value."""
        self.schema.validate_row(row)
        pk = row[self.schema.primary_key]
        if pk in self._pk_index:
            raise DuplicateKeyError(
                f"table {self.schema.name!r}: duplicate primary key {pk!r}"
            )
        values = tuple(row.get(c) for c in self._columns)
        pos = len(self._rows)
        self._rows.append(values)
        self._pk_index[pk] = pos
        for col, index in self._secondary.items():
            index.setdefault(row.get(col), []).append(pos)
        return pk

    def insert_many(self, rows: List[Row]) -> int:
        """Insert many rows; returns the number inserted."""
        for row in rows:
            self.insert(row)
        return len(rows)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, pk: object) -> bool:
        return pk in self._pk_index

    def get(self, pk: object) -> Row:
        """Fetch the row with primary key *pk* (raises if missing)."""
        try:
            pos = self._pk_index[pk]
        except KeyError:
            raise IntegrityError(
                f"table {self.schema.name!r}: no row with pk {pk!r}"
            ) from None
        return self._to_dict(self._rows[pos])

    def get_or_none(self, pk: object) -> Optional[Row]:
        """Row by primary key, or None."""
        pos = self._pk_index.get(pk)
        if pos is None:
            return None
        return self._to_dict(self._rows[pos])

    def find(self, column: str, value: object) -> List[Row]:
        """All rows whose *column* equals *value*, via a lazy hash index."""
        if not self.schema.has_column(column):
            raise UnknownColumnError(
                f"table {self.schema.name!r} has no column {column!r}"
            )
        index = self._secondary.get(column)
        if index is None:
            index = self._build_secondary(column)
        return [self._to_dict(self._rows[pos]) for pos in index.get(value, ())]

    def scan(self) -> Iterator[Row]:
        """Iterate all rows in insertion order."""
        for values in self._rows:
            yield self._to_dict(values)

    def primary_keys(self) -> Iterator[object]:
        """Iterate primary-key values in insertion order."""
        yield from self._pk_index

    def value_of(self, pk: object, column: str) -> object:
        """Single-cell fetch without materializing the full row dict."""
        if not self.schema.has_column(column):
            raise UnknownColumnError(
                f"table {self.schema.name!r} has no column {column!r}"
            )
        pos = self._pk_index.get(pk)
        if pos is None:
            raise IntegrityError(
                f"table {self.schema.name!r}: no row with pk {pk!r}"
            )
        return self._rows[pos][self._columns.index(column)]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _build_secondary(self, column: str) -> Dict[object, List[int]]:
        col_pos = self._columns.index(column)
        index: Dict[object, List[int]] = {}
        for pos, values in enumerate(self._rows):
            index.setdefault(values[col_pos], []).append(pos)
        self._secondary[column] = index
        return index

    def _to_dict(self, values: Tuple[object, ...]) -> Row:
        return dict(zip(self._columns, values))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.schema.name!r}, rows={len(self)})"
