"""The in-memory relational database used as the paper's MySQL substitute.

A :class:`Database` owns the tables and enforces foreign-key integrity on
insert.  It also knows how to enumerate the foreign-key *edges* between
tuples, which is the raw material of the tuple graph (Definition 1) and of
the term-augmented tuple graph (Definition 5).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import IntegrityError, UnknownTableError
from repro.storage.schema import DatabaseSchema, ForeignKey, TableSchema
from repro.storage.table import Row, Table

#: A tuple is globally identified by ``(table_name, primary_key_value)``.
TupleRef = Tuple[str, object]


class Database:
    """A set of tables with enforced foreign keys.

    Parameters
    ----------
    schema:
        The full :class:`DatabaseSchema`.  Tables are created empty.
    enforce_fk:
        When True (default) inserts that reference a missing parent row
        raise :class:`IntegrityError`.  Bulk loaders that insert parents
        later can disable this and call :meth:`check_integrity` at the end.
    """

    def __init__(self, schema: DatabaseSchema, enforce_fk: bool = True) -> None:
        self.schema = schema
        self.enforce_fk = enforce_fk
        self._tables: Dict[str, Table] = {
            name: Table(tschema) for name, tschema in schema.tables.items()
        }
        # Outgoing FK columns per table, precomputed for fast edge iteration.
        self._fk_by_table: Dict[str, List[ForeignKey]] = {
            name: schema.foreign_keys_of(name) for name in schema.tables
        }

    # ------------------------------------------------------------------ #
    # table access
    # ------------------------------------------------------------------ #

    def table(self, name: str) -> Table:
        """Table object by name (raises if unknown)."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(f"unknown table {name!r}") from None

    @property
    def table_names(self) -> Tuple[str, ...]:
        """All table names."""
        return tuple(self._tables)

    def __len__(self) -> int:
        """Total number of tuples across all tables."""
        return sum(len(t) for t in self._tables.values())

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def insert(self, table_name: str, row: Row) -> TupleRef:
        """Insert *row* into *table_name*; returns its :data:`TupleRef`."""
        table = self.table(table_name)
        if self.enforce_fk:
            self._check_row_fks(table_name, row)
        pk = table.insert(row)
        return (table_name, pk)

    def insert_many(self, table_name: str, rows: List[Row]) -> int:
        """Insert many rows into one table."""
        for row in rows:
            self.insert(table_name, row)
        return len(rows)

    # ------------------------------------------------------------------ #
    # integrity
    # ------------------------------------------------------------------ #

    def _check_row_fks(self, table_name: str, row: Row) -> None:
        for fk in self._fk_by_table[table_name]:
            value = row.get(fk.column)
            if value is None:
                continue
            if value not in self.table(fk.ref_table):
                raise IntegrityError(
                    f"{fk}: value {value!r} has no parent row"
                )

    def check_integrity(self) -> None:
        """Validate every foreign key in the database (for bulk loads)."""
        for fk in self.schema.foreign_keys:
            parent = self.table(fk.ref_table)
            for row in self.table(fk.table).scan():
                value = row.get(fk.column)
                if value is not None and value not in parent:
                    raise IntegrityError(f"{fk}: dangling value {value!r}")

    # ------------------------------------------------------------------ #
    # graph material
    # ------------------------------------------------------------------ #

    def tuple_refs(self) -> Iterator[TupleRef]:
        """Every tuple in the database as a ``(table, pk)`` reference."""
        for name, table in self._tables.items():
            for pk in table.primary_keys():
                yield (name, pk)

    def fk_edges(self) -> Iterator[Tuple[TupleRef, TupleRef]]:
        """Every foreign-key edge as a pair of tuple refs (child, parent)."""
        for table_name, fks in self._fk_by_table.items():
            if not fks:
                continue
            table = self.table(table_name)
            for row in table.scan():
                child: TupleRef = (table_name, row[table.schema.primary_key])
                for fk in fks:
                    value = row.get(fk.column)
                    if value is not None:
                        yield (child, (fk.ref_table, value))

    def fetch(self, ref: TupleRef) -> Row:
        """Fetch the row behind a tuple ref."""
        table_name, pk = ref
        return self.table(table_name).get(pk)

    def fetch_or_none(self, ref: TupleRef) -> Optional[Row]:
        """Row behind a tuple ref, or None."""
        table_name, pk = ref
        if table_name not in self._tables:
            return None
        return self.table(table_name).get_or_none(pk)

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #

    def describe(self) -> str:
        """Human-readable summary (used by examples and the README)."""
        lines = [f"Database with {len(self._tables)} tables, {len(self)} tuples"]
        for name, table in self._tables.items():
            lines.append(f"  {name}: {len(table)} rows, pk={table.schema.primary_key}")
        for fk in self.schema.foreign_keys:
            lines.append(f"  FK {fk}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Database(tables={list(self._tables)}, tuples={len(self)})"
