"""Tuple graph (Definition 1 of the paper).

Nodes are tuples, edges are foreign-key references.  The keyword search
engine walks this graph to join matching tuples into result trees, and the
TAT graph of Definition 5 is this graph augmented with term nodes.

The graph is undirected for traversal purposes (a join can be followed in
either direction) but we remember the FK orientation for presentation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

import networkx as nx

from repro.storage.database import Database, TupleRef


class TupleGraph:
    """Undirected graph over the tuples of a :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._adj: Dict[TupleRef, Set[TupleRef]] = {}
        for ref in database.tuple_refs():
            self._adj[ref] = set()
        for child, parent in database.fk_edges():
            # fk_edges only yields validated references, so both endpoints
            # exist in _adj unless FK enforcement was disabled.
            self._adj.setdefault(child, set()).add(parent)
            self._adj.setdefault(parent, set()).add(child)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, ref: TupleRef) -> bool:
        return ref in self._adj

    def nodes(self) -> Iterator[TupleRef]:
        """Iterate all tuple refs."""
        yield from self._adj

    def neighbors(self, ref: TupleRef) -> Set[TupleRef]:
        """Adjacent tuple refs of one node."""
        return self._adj.get(ref, set())

    def degree(self, ref: TupleRef) -> int:
        """Number of FK edges touching one node."""
        return len(self._adj.get(ref, ()))

    def edge_count(self) -> int:
        """Number of undirected FK edges."""
        return sum(len(n) for n in self._adj.values()) // 2

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def bfs_distances(
        self, source: TupleRef, max_depth: int
    ) -> Dict[TupleRef, int]:
        """Hop distances from *source* up to *max_depth* (inclusive)."""
        dist: Dict[TupleRef, int] = {source: 0}
        frontier: List[TupleRef] = [source]
        depth = 0
        while frontier and depth < max_depth:
            depth += 1
            next_frontier: List[TupleRef] = []
            for node in frontier:
                for nbr in self._adj[node]:
                    if nbr not in dist:
                        dist[nbr] = depth
                        next_frontier.append(nbr)
            frontier = next_frontier
        return dist

    def shortest_path(
        self, source: TupleRef, target: TupleRef, max_depth: int = 8
    ) -> List[TupleRef]:
        """One shortest path source→target, or ``[]`` if none within depth."""
        if source == target:
            return [source]
        parent: Dict[TupleRef, TupleRef] = {source: source}
        frontier = [source]
        depth = 0
        while frontier and depth < max_depth:
            depth += 1
            next_frontier: List[TupleRef] = []
            for node in frontier:
                for nbr in self._adj[node]:
                    if nbr in parent:
                        continue
                    parent[nbr] = node
                    if nbr == target:
                        path = [nbr]
                        while path[-1] != source:
                            path.append(parent[path[-1]])
                        return list(reversed(path))
                    next_frontier.append(nbr)
            frontier = next_frontier
        return []

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def to_networkx(self) -> "nx.Graph":
        """Export as a networkx graph (used by examples and tests)."""
        g = nx.Graph()
        g.add_nodes_from(self._adj)
        for node, nbrs in self._adj.items():
            for nbr in nbrs:
                g.add_edge(node, nbr)
        return g
