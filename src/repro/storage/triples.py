"""Schemaless (RDF-style) ingestion.

Section III of the paper notes the approach "is also applicable to other
kind of schema or even schemaless structured data, e.g., XML, RDF and
graph data".  This module makes that concrete: a :class:`TripleStore`
accepts subject-predicate-object facts and compiles them into the same
relational :class:`~repro.storage.Database` the rest of the pipeline
consumes, so reformulation over a knowledge graph needs no new machinery.

Mapping:

* every entity becomes a row of the ``entities`` table, its label an
  *atomic* term node;
* every fact becomes a row of the ``facts`` table with FK edges to its
  subject (and, for entity-valued objects, to the object entity);
* literal-valued facts carry their text in a segmented field, so literal
  words become ordinary term nodes attached to the fact tuple.

The resulting tuple graph is exactly the RDF graph with facts reified as
relationship tuples — entities sharing predicates/literals connect
through two hops, just like authors sharing venues in DBLP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.storage.database import Database
from repro.storage.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)


@dataclass(frozen=True)
class Literal:
    """A literal object value (free text)."""

    text: str


#: An object is either an entity name (str) or a :class:`Literal`.
TripleObject = Union[str, Literal]


@dataclass(frozen=True)
class Triple:
    subject: str
    predicate: str
    object: TripleObject


def triple_schema() -> DatabaseSchema:
    """The reified-fact relational schema."""
    schema = DatabaseSchema()
    schema.add_table(TableSchema(
        "entities",
        [Column("eid", "int", nullable=False), Column("label", "text")],
        primary_key="eid",
        atomic_fields=["label"],
    ))
    schema.add_table(TableSchema(
        "predicates",
        [Column("rid", "int", nullable=False), Column("name", "text")],
        primary_key="rid",
        atomic_fields=["name"],
    ))
    schema.add_table(TableSchema(
        "facts",
        [
            Column("fid", "int", nullable=False),
            Column("subject", "int"),
            Column("rid", "int"),
            Column("object", "int"),       # entity-valued facts
            Column("literal", "text"),     # literal-valued facts
        ],
        primary_key="fid",
        text_fields=["literal"],
    ))
    schema.add_foreign_key(ForeignKey("facts", "subject", "entities", "eid"))
    schema.add_foreign_key(ForeignKey("facts", "rid", "predicates", "rid"))
    schema.add_foreign_key(ForeignKey("facts", "object", "entities", "eid"))
    return schema


class TripleStore:
    """Collects triples, then compiles them into a :class:`Database`."""

    def __init__(self) -> None:
        self._triples: List[Triple] = []
        self._entities: Dict[str, int] = {}
        self._predicates: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # collection
    # ------------------------------------------------------------------ #

    def add(self, subject: str, predicate: str, obj: TripleObject) -> None:
        """Register one fact.  Entities are created on first mention."""
        if not subject or not predicate:
            raise ReproError("subject and predicate must be non-empty")
        if isinstance(obj, str) and not obj:
            raise ReproError("entity object must be non-empty")
        if isinstance(obj, Literal) and not obj.text:
            raise ReproError("literal object must be non-empty")
        self._entity_id(subject)
        self._predicate_id(predicate)
        if isinstance(obj, str):
            self._entity_id(obj)
        self._triples.append(Triple(subject, predicate, obj))

    def add_many(self, triples) -> None:
        """Register many (subject, predicate, object) facts."""
        for subject, predicate, obj in triples:
            self.add(subject, predicate, obj)

    def __len__(self) -> int:
        return len(self._triples)

    @property
    def entity_count(self) -> int:
        """Number of distinct entities seen."""
        return len(self._entities)

    @property
    def predicate_count(self) -> int:
        """Number of distinct predicates seen."""
        return len(self._predicates)

    def _entity_id(self, label: str) -> int:
        existing = self._entities.get(label)
        if existing is None:
            existing = len(self._entities)
            self._entities[label] = existing
        return existing

    def _predicate_id(self, name: str) -> int:
        existing = self._predicates.get(name)
        if existing is None:
            existing = len(self._predicates)
            self._predicates[name] = existing
        return existing

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #

    def to_database(self) -> Database:
        """Compile the collected facts into the reified schema."""
        database = Database(triple_schema())
        for label, eid in self._entities.items():
            database.insert("entities", {"eid": eid, "label": label})
        for name, rid in self._predicates.items():
            database.insert("predicates", {"rid": rid, "name": name})
        for fid, triple in enumerate(self._triples):
            row = {
                "fid": fid,
                "subject": self._entities[triple.subject],
                "rid": self._predicates[triple.predicate],
                "object": None,
                "literal": None,
            }
            if isinstance(triple.object, Literal):
                row["literal"] = triple.object.text
            else:
                row["object"] = self._entities[triple.object]
            database.insert("facts", row)
        return database

    def entity_ref(self, label: str) -> Tuple[str, int]:
        """The tuple ref of an entity in the compiled database."""
        try:
            return ("entities", self._entities[label])
        except KeyError:
            raise ReproError(f"unknown entity {label!r}") from None
