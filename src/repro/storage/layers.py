"""Versioned delta layers stacked over a base term-relation store.

A full offline build is expensive — O(vocabulary) walks and BFS runs —
but the corpus underneath a running service never stops changing.  Delta
layers make small corpus changes cheap: a
:class:`~repro.offline.DeltaIngestor` run recomputes only the terms that
actually occur in the ingested rows and writes them as one **layer**
beside the base store, leaving the base artifact untouched (pre-fork
workers keep sharing one physical memmap/page-cache copy):

.. code-block:: text

    store/
      manifest.json          # the base build (v2 shards or v3 binary)
      ...
      layers/
        layers.json          # the layer chain, newest last
        delta-0001/
          layer.json         # epoch, ingested rows, invalidated keys, params
          store/             # v2 mini-store with the recomputed rows
        delta-0002/
          ...

Reads resolve newest-layer-first: a term key stored in a layer shadows
every older layer and the base.  Closeness rows are *epoch-checked* —
a layer may mark keys it did not recompute as **invalidated** (their
h-hop neighborhood changed structurally), and
:class:`LayeredTermRelationStore` serves those rows by re-running the
exact closeness BFS lazily against the live graph, so layered reads stay
bit-identical to a from-scratch build on the merged corpus.  Compaction
(:meth:`repro.offline.DeltaIngestor.compact`) folds everything back into
a fresh base build and clears the chain.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.graph.nodes import Node
from repro.offline import (
    PathLike,
    TermRelations,
    TermRelationStore,
    _parse_term_key,
    _term_key,
)

#: Chain format marker written into ``layers.json``.
LAYER_FORMAT = "delta-layers-v1"
LAYERS_DIRNAME = "layers"
CHAIN_NAME = "layers.json"
LAYER_META_NAME = "layer.json"
#: Lazily recomputed closeness rows kept resident per store.
DEFAULT_CLOSENESS_CACHE = 4096


def layers_root(store_root: PathLike) -> Path:
    """The ``layers/`` directory of one store root."""
    return Path(store_root) / LAYERS_DIRNAME


def chain_path(store_root: PathLike) -> Path:
    """Path of the layer-chain manifest."""
    return layers_root(store_root) / CHAIN_NAME


def read_chain(store_root: PathLike) -> Dict[str, object]:
    """Parse the layer chain; an absent chain reads as empty.

    A *corrupt* chain raises :class:`ReproError` naming the path and the
    underlying error — never a silent fallback.
    """
    path = chain_path(store_root)
    if not path.exists():
        return {"format": LAYER_FORMAT, "layers": []}
    try:
        chain = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read layer chain {path}: {exc}") from exc
    if chain.get("format") != LAYER_FORMAT:
        raise ReproError(
            f"{path}: unsupported layer chain format {chain.get('format')!r}"
        )
    if not isinstance(chain.get("layers"), list):
        raise ReproError(f"{path}: layer chain is missing its layer list")
    return chain


def latest_epoch(store_root: PathLike) -> int:
    """Newest layer epoch of a store (0 when no layers exist).

    Cheap enough to poll: one small JSON file read.
    """
    layers = read_chain(store_root)["layers"]
    return int(layers[-1]["epoch"]) if layers else 0


def _write_chain(store_root: PathLike, chain: Dict[str, object]) -> None:
    path = chain_path(store_root)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(chain, indent=2), encoding="utf-8")
    os.replace(tmp, path)  # readers see the old or the new chain, never half


def layer_dirname(epoch: int) -> str:
    """Canonical directory name of one layer."""
    return f"delta-{epoch:04d}"


def write_layer(
    store_root: PathLike,
    delta_store: TermRelationStore,
    epoch: int,
    rows: Sequence[Dict[str, object]],
    invalidated: Sequence[str],
    params: Dict[str, object],
    build_info: Optional[Dict[str, object]] = None,
) -> Path:
    """Append one delta layer to a store's chain; returns the layer dir.

    *rows* are the ingested ``{"table": ..., "row": {...}}`` payloads —
    persisted inside the layer so that pre-fork workers (and workers
    respawned later from the master's pre-ingest image) can replay them
    into their own database copy before rebuilding the serving graph.
    *invalidated* lists the term keys whose stored closeness rows this
    layer makes stale without recomputing them.
    """
    from repro.offline_store import write_store_v2

    root = Path(store_root)
    chain = read_chain(root)
    layers: List[Dict[str, object]] = chain["layers"]
    if layers and int(layers[-1]["epoch"]) >= epoch:
        raise ReproError(
            f"layer epoch {epoch} is not newer than the chain tip "
            f"{layers[-1]['epoch']}"
        )
    layer_dir = layers_root(root) / layer_dirname(epoch)
    if layer_dir.exists():
        raise ReproError(f"layer directory {layer_dir} already exists")
    layer_dir.mkdir(parents=True)
    write_store_v2(
        delta_store, layer_dir / "store", n_shards=1, build_info=build_info
    )
    meta = {
        "epoch": epoch,
        "n_rows": len(rows),
        "rows": list(rows),
        "invalidated": sorted(invalidated),
        "params": dict(params),
    }
    (layer_dir / LAYER_META_NAME).write_text(
        json.dumps(meta), encoding="utf-8"
    )
    layers.append({
        "dir": layer_dirname(epoch),
        "epoch": epoch,
        "n_terms": len(delta_store),
        "n_rows": len(rows),
        "n_invalidated": len(meta["invalidated"]),
    })
    _write_chain(root, chain)
    return layer_dir


def read_layer_meta(store_root: PathLike, dirname: str) -> Dict[str, object]:
    """The ``layer.json`` metadata of one layer."""
    path = layers_root(store_root) / dirname / LAYER_META_NAME
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read layer metadata {path}: {exc}") from exc


def pending_rows(
    store_root: PathLike, after_epoch: int
) -> List[Tuple[int, List[Dict[str, object]]]]:
    """Ingested rows of every layer newer than *after_epoch*, oldest first.

    The replay feed for pre-fork fan-out: a worker whose database copy is
    at ingest epoch ``after_epoch`` applies exactly these rows (in order)
    to catch up with the chain tip.
    """
    out: List[Tuple[int, List[Dict[str, object]]]] = []
    for entry in read_chain(store_root)["layers"]:
        epoch = int(entry["epoch"])
        if epoch <= after_epoch:
            continue
        meta = read_layer_meta(store_root, entry["dir"])
        out.append((epoch, list(meta.get("rows", []))))
    return out


def clear_layers(store_root: PathLike) -> None:
    """Remove the whole layer chain (the compaction end-step)."""
    root = layers_root(store_root)
    if root.exists():
        shutil.rmtree(root)


@dataclass
class _Layer:
    """One loaded layer: its mini-store plus the chain/meta fields."""

    epoch: int
    store: TermRelationStore
    invalidated: Set[str]
    params: Dict[str, object]
    n_rows: int = 0
    dirname: str = ""


class LayeredTermRelationStore(TermRelationStore):
    """A base store with delta layers stacked on top.

    Lookup order is newest-layer-first, then the base.  Closeness rows
    carry an implicit epoch (the layer that stored them; 0 for the base):
    when a newer layer *invalidated* a key without restoring it, the row
    is recomputed lazily with the exact closeness BFS over the live graph
    — truncated to the same ``closeness_top`` the offline stage used — so
    every served row matches a from-scratch build bit for bit.  Similar
    rows always serve the newest stored version: term similarity drifts
    with global idf on every ingest, and refreshing rows outside the
    ingested set is compaction's job (the documented staleness contract —
    see ``docs/store_formats.md``).
    """

    def __init__(
        self,
        graph,
        root: PathLike,
        base: TermRelationStore,
        layers: Sequence[_Layer],
        closeness_cache: int = DEFAULT_CLOSENESS_CACHE,
    ) -> None:
        # Attributes the graph-setter touches must exist before
        # super().__init__ assigns self.graph.
        self.base = base
        self._layers: List[_Layer] = list(layers)
        self._lock = threading.RLock()
        self._closeness_cache: "OrderedDict[str, Dict[str, float]]" = (
            OrderedDict()
        )
        self._closeness_cache_max = closeness_cache
        self._extractor = None
        self._all_keys: Optional[List[str]] = None
        #: key -> newest epoch that invalidated its closeness row
        self._invalidated_at: Dict[str, int] = {}
        for layer in self._layers:
            for key in layer.invalidated:
                previous = self._invalidated_at.get(key, 0)
                self._invalidated_at[key] = max(previous, layer.epoch)
        super().__init__(graph)
        self.root = Path(root)

    @property
    def graph(self):
        """The TAT graph lazy closeness recomputes run against.

        The live layer rebinds ``store.graph`` after every corpus
        rebuild; a layered store must fan that out to the base and every
        layer, and drop the lazily recomputed closeness rows (they were
        BFS results over the previous graph).
        """
        return self._graph

    @graph.setter
    def graph(self, value) -> None:
        self._graph = value
        base = getattr(self, "base", None)
        if base is not None:
            base.graph = value
        for layer in getattr(self, "_layers", []):
            layer.store.graph = value
        with self._lock:
            self._closeness_cache.clear()
            self._extractor = None

    @classmethod
    def load(
        cls, root: PathLike, base: TermRelationStore, graph
    ) -> "LayeredTermRelationStore":
        """Open the chain beside an already-opened base store."""
        from repro.offline_store import ShardedTermRelationStore

        root = Path(root)
        layers: List[_Layer] = []
        for entry in read_chain(root)["layers"]:
            dirname = str(entry["dir"])
            meta = read_layer_meta(root, dirname)
            store = ShardedTermRelationStore.load(
                layers_root(root) / dirname / "store", graph
            )
            layers.append(_Layer(
                epoch=int(entry["epoch"]),
                store=store,
                invalidated=set(meta.get("invalidated", [])),
                params=dict(meta.get("params", {})),
                n_rows=int(entry.get("n_rows", 0)),
                dirname=dirname,
            ))
        return cls(graph, root, base, layers)

    # ------------------------------------------------------------------ #
    # chain introspection
    # ------------------------------------------------------------------ #

    @property
    def epoch(self) -> int:
        """Newest layer epoch (0 when serving the bare base)."""
        return self._layers[-1].epoch if self._layers else 0

    @property
    def n_layers(self) -> int:
        """Number of stacked delta layers."""
        return len(self._layers)

    def layers_info(self) -> List[Dict[str, object]]:
        """Per-layer summary, oldest first (the ``store info`` readout)."""
        return [
            {
                "epoch": layer.epoch,
                "dir": layer.dirname,
                "n_terms": len(layer.store),
                "n_rows": layer.n_rows,
                "n_invalidated": len(layer.invalidated),
            }
            for layer in self._layers
        ]

    def base_format_version(self) -> object:
        """Format version of the base store under the chain."""
        return getattr(type(self.base), "FORMAT_VERSION", None)

    def build_info(self) -> Dict[str, object]:
        """Base build metadata plus the chain summary."""
        info: Dict[str, object] = {}
        base_info = getattr(self.base, "build_info", None)
        if callable(base_info):
            info.update(base_info())
        info["layers"] = self.n_layers
        info["layer_epoch"] = self.epoch
        return info

    # ------------------------------------------------------------------ #
    # layered reads
    # ------------------------------------------------------------------ #

    def _lookup(self, key: str) -> Tuple[Optional[TermRelations], int]:
        """(relations, storing epoch) with newest-first resolution."""
        for layer in reversed(self._layers):
            relations = layer.store._get(key)
            if relations is not None:
                return relations, layer.epoch
        relations = self.base._get(key)
        return (relations, 0) if relations is not None else (None, -1)

    def _get(self, key: str) -> Optional[TermRelations]:
        relations, stored_epoch = self._lookup(key)
        if relations is None:
            return None
        if self._invalidated_at.get(key, -1) > stored_epoch:
            # the stored closeness row predates a structural change in the
            # term's h-hop neighborhood — recompute it exactly, keep the
            # stored similar list (see class docstring)
            relations = TermRelations(
                similar=relations.similar,
                closeness=self._fresh_closeness(key),
            )
        return relations

    def _closeness_top(self) -> int:
        for layer in reversed(self._layers):
            top = layer.params.get("closeness_top")
            if top is not None:
                return int(top)
        return 200

    def _fresh_closeness(self, key: str) -> Dict[str, float]:
        """Exact lazy re-BFS of one invalidated closeness row (cached)."""
        with self._lock:
            cached = self._closeness_cache.get(key)
            if cached is not None:
                self._closeness_cache.move_to_end(key)
                return cached
            node_id = self._graph.registry.get_id(
                Node.for_term(_parse_term_key(key))
            )
            if node_id is None:
                return {}
            if self._extractor is None:
                from repro.graph.closeness import ClosenessExtractor

                # default parameters == OfflinePrecomputer's extractor,
                # so the lazy rows match offline-built ones bit for bit
                self._extractor = ClosenessExtractor(self._graph)
            row = {
                _term_key(self._graph.node(other).payload): score
                for other, score in self._extractor.close_terms(
                    node_id, self._closeness_top()
                )
            }
            self._extractor.evict(node_id)
            self._closeness_cache[key] = row
            if len(self._closeness_cache) > self._closeness_cache_max:
                self._closeness_cache.popitem(last=False)
            return row

    def _keys(self) -> List[str]:
        if self._all_keys is None:
            seen: Set[str] = set()
            keys: List[str] = []
            for layer in reversed(self._layers):
                for key in layer.store._keys():
                    if key not in seen:
                        seen.add(key)
                        keys.append(key)
            for key in self.base._keys():
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
            self._all_keys = keys
        return list(self._all_keys)

    def _items(self) -> Iterator[Tuple[str, TermRelations]]:
        for key in self._keys():
            relations = self._get(key)
            if relations is not None:
                yield key, relations

    def __len__(self) -> int:
        return len(self._keys())

    def put(self, term, similar, closeness) -> None:
        """Layered stores are read-only; new data arrives as layers."""
        raise ReproError(
            "layered term-relation stores are read-only; ingest new rows "
            "with DeltaIngestor.ingest() or rebuild with compact()"
        )
