"""JSON schema specifications: describe a database schema in a file.

Lets the CLI (and downstream users) work with arbitrary schemas: a
directory of CSVs plus one ``schema.json`` fully describes a corpus.

Spec format::

    {
      "tables": [
        {
          "name": "papers",
          "primary_key": "pid",
          "columns": [
            {"name": "pid", "type": "int", "nullable": false},
            {"name": "title", "type": "text"}
          ],
          "text_fields": ["title"],
          "atomic_fields": []
        }
      ],
      "foreign_keys": [
        {"table": "papers", "column": "cid",
         "ref_table": "conferences", "ref_column": "cid"}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import SchemaError
from repro.storage.csvio import dump_table_csv, load_table_csv
from repro.storage.database import Database
from repro.storage.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)

PathLike = Union[str, Path]

SCHEMA_FILENAME = "schema.json"


def schema_to_spec(schema: DatabaseSchema) -> Dict:
    """Serialize a :class:`DatabaseSchema` to a JSON-ready dict."""
    return {
        "tables": [
            {
                "name": table.name,
                "primary_key": table.primary_key,
                "columns": [
                    {
                        "name": col.name,
                        "type": col.type,
                        "nullable": col.nullable,
                    }
                    for col in table.columns
                ],
                "text_fields": list(table.text_fields),
                "atomic_fields": list(table.atomic_fields),
            }
            for table in schema.tables.values()
        ],
        "foreign_keys": [
            {
                "table": fk.table,
                "column": fk.column,
                "ref_table": fk.ref_table,
                "ref_column": fk.ref_column,
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_spec(spec: Dict) -> DatabaseSchema:
    """Parse a spec dict back into a :class:`DatabaseSchema`."""
    if "tables" not in spec:
        raise SchemaError("schema spec missing 'tables'")
    schema = DatabaseSchema()
    for tspec in spec["tables"]:
        try:
            columns = [
                Column(
                    c["name"],
                    c.get("type", "text"),
                    c.get("nullable", True),
                )
                for c in tspec["columns"]
            ]
            table = TableSchema(
                tspec["name"],
                columns,
                primary_key=tspec["primary_key"],
                text_fields=tspec.get("text_fields"),
                atomic_fields=tspec.get("atomic_fields"),
            )
        except KeyError as exc:
            raise SchemaError(f"schema spec table missing key: {exc}")
        schema.add_table(table)
    for fspec in spec.get("foreign_keys", []):
        try:
            schema.add_foreign_key(ForeignKey(
                fspec["table"], fspec["column"],
                fspec["ref_table"], fspec["ref_column"],
            ))
        except KeyError as exc:
            raise SchemaError(f"schema spec foreign key missing key: {exc}")
    return schema


def save_database(database: Database, directory: PathLike) -> None:
    """Write ``schema.json`` plus one ``<table>.csv`` per table."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    spec = schema_to_spec(database.schema)
    (directory / SCHEMA_FILENAME).write_text(
        json.dumps(spec, indent=2), encoding="utf-8"
    )
    for table_name in database.table_names:
        dump_table_csv(database, table_name, directory / f"{table_name}.csv")


def load_database(directory: PathLike) -> Database:
    """Load a database previously written by :func:`save_database`."""
    directory = Path(directory)
    schema_path = directory / SCHEMA_FILENAME
    if not schema_path.exists():
        raise SchemaError(f"no {SCHEMA_FILENAME} in {directory}")
    try:
        spec = json.loads(schema_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{schema_path}: invalid JSON ({exc})")
    schema = schema_from_spec(spec)
    # Tables may reference each other in any order; load with deferred
    # integrity checking, then validate once.
    database = Database(schema, enforce_fk=False)
    for table_name in schema.tables:
        csv_path = directory / f"{table_name}.csv"
        if csv_path.exists():
            load_table_csv(database, table_name, csv_path)
    database.check_integrity()
    database.enforce_fk = True
    return database
