"""Command-line interface.

One entry point with subcommands covering the full lifecycle::

    python -m repro.cli synth --out corpus/ --papers 800 --seed 7
    python -m repro.cli describe --data corpus/
    python -m repro.cli reformulate --data corpus/ probabilistic query -k 8
    python -m repro.cli similar --data corpus/ probabilistic
    python -m repro.cli close --data corpus/ probabilistic
    python -m repro.cli search --data corpus/ probabilistic query
    python -m repro.cli precompute --data corpus/ --out relations.json
    python -m repro.cli reformulate --data corpus/ --relations relations.json probabilistic query

``--data`` is a directory holding ``schema.json`` + per-table CSVs (any
schema, not just the bibliographic one); ``synth`` writes such a
directory from the generator.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.data.dblp_synth import SynthConfig, synthesize_dblp
from repro.errors import ReproError
from repro.graph.tat import TATGraph
from repro.index.inverted import InvertedIndex
from repro.offline import OfflinePrecomputer, TermRelationStore
from repro.search.keyword import KeywordSearchEngine
from repro.search.ranking import ResultRanker
from repro.storage.database import Database
from repro.storage.schemaspec import load_database, save_database
from repro.storage.tuplegraph import TupleGraph


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser with every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Keyword query reformulation on structured data "
                    "(ICDE 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="generate a synthetic corpus")
    synth.add_argument("--out", required=True, help="output directory")
    synth.add_argument("--authors", type=int, default=300)
    synth.add_argument("--papers", type=int, default=1200)
    synth.add_argument("--conferences", type=int, default=24)
    synth.add_argument("--seed", type=int, default=7)

    def add_data(p):
        p.add_argument(
            "--data", required=True,
            help="corpus directory (schema.json + CSVs)",
        )

    describe = sub.add_parser("describe", help="summarize a corpus")
    add_data(describe)

    reformulate = sub.add_parser(
        "reformulate", help="suggest substitutive queries"
    )
    add_data(reformulate)
    reformulate.add_argument("keywords", nargs="+")
    reformulate.add_argument("-k", type=int, default=10)
    reformulate.add_argument(
        "--method", choices=("tat", "cooccurrence", "rank"), default="tat"
    )
    reformulate.add_argument("--candidates", type=int, default=15)
    reformulate.add_argument(
        "--relations", default=None,
        help="precomputed term-relation store (JSON) to serve from",
    )

    similar = sub.add_parser("similar", help="similar terms of one keyword")
    add_data(similar)
    similar.add_argument("term")
    similar.add_argument("-n", type=int, default=10)
    similar.add_argument(
        "--method", choices=("walk", "cooccurrence"), default="walk"
    )

    close = sub.add_parser("close", help="close terms of one keyword")
    add_data(close)
    close.add_argument("term")
    close.add_argument("-n", type=int, default=10)

    search = sub.add_parser("search", help="keyword search")
    add_data(search)
    search.add_argument("keywords", nargs="+")
    search.add_argument("-n", type=int, default=5)

    precompute = sub.add_parser(
        "precompute", help="materialize the offline stage to a JSON store"
    )
    add_data(precompute)
    precompute.add_argument("--out", required=True)
    precompute.add_argument("--similar", type=int, default=20)
    precompute.add_argument("--closeness-top", type=int, default=200)

    return parser


# --------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------- #

def _load(args) -> Database:
    return load_database(args.data)


def cmd_synth(args, out) -> int:
    """``synth``: generate a corpus and write schema.json + CSVs."""
    corpus = synthesize_dblp(SynthConfig(
        n_authors=args.authors,
        n_papers=args.papers,
        n_conferences=args.conferences,
        seed=args.seed,
    ))
    save_database(corpus.database, args.out)
    print(f"wrote corpus to {args.out}", file=out)
    print(corpus.database.describe(), file=out)
    return 0


def cmd_describe(args, out) -> int:
    """``describe``: print table counts and TAT graph statistics."""
    database = _load(args)
    print(database.describe(), file=out)
    index = InvertedIndex(database).build()
    graph = TATGraph(database, index)
    print(f"TAT graph: {graph.stats()}", file=out)
    return 0


def cmd_reformulate(args, out) -> int:
    """``reformulate``: print top-k substitutive queries."""
    database = _load(args)
    graph = TATGraph(database, InvertedIndex(database))
    config = ReformulatorConfig(
        method=args.method, n_candidates=args.candidates
    )
    if args.relations:
        store = TermRelationStore.load(args.relations, graph)
        reformulator = Reformulator(
            graph, config, similarity=store, closeness=store
        )
    else:
        reformulator = Reformulator(graph, config)
    # Segment against the corpus vocabulary so multi-word names survive:
    # `reformulate --data d christian s. jensen spatial` is one name +
    # one word, not four keywords.
    raw_query = " ".join(args.keywords).lower()
    parsed = reformulator.parser.parse(raw_query)
    print(f"input: {' | '.join(parsed.keywords)}", file=out)
    for suggestion in reformulator.reformulate(
        list(parsed.keywords), k=args.k
    ):
        print(f"  {suggestion.score:.3e}  {suggestion.text}", file=out)
    return 0


def cmd_similar(args, out) -> int:
    """``similar``: print one keyword's similar-term list."""
    database = _load(args)
    graph = TATGraph(database, InvertedIndex(database))
    if args.method == "walk":
        from repro.graph.similarity import SimilarityExtractor

        backend = SimilarityExtractor(graph)
    else:
        from repro.graph.cooccurrence import CooccurrenceSimilarity

        backend = CooccurrenceSimilarity(graph)
    for term, score in backend.similar_terms(args.term.lower(), args.n):
        print(f"  {score:.5f}  {term}", file=out)
    return 0


def cmd_close(args, out) -> int:
    """``close``: print one keyword's closest terms (Eq 3)."""
    from repro.graph.closeness import ClosenessExtractor

    database = _load(args)
    graph = TATGraph(database, InvertedIndex(database))
    extractor = ClosenessExtractor(graph)
    node_id = graph.resolve_text_one(args.term.lower())
    for other, score in extractor.close_terms(node_id, args.n):
        print(f"  {score:.5f}  {graph.node(other)}", file=out)
    return 0


def cmd_search(args, out) -> int:
    """``search``: run keyword search and render result trees."""
    database = _load(args)
    index = InvertedIndex(database).build()
    engine = KeywordSearchEngine(TupleGraph(database), index)
    ranker = ResultRanker(index)
    keywords = [kw.lower() for kw in args.keywords]
    results = ranker.rank(engine.search(keywords))
    print(f"{results.size} results", file=out)
    for i, result in enumerate(results.top(args.n), 1):
        print(f"[{i}] tree of {result.size} tuple(s)", file=out)
        print(result.render(database), file=out)
    return 0


def cmd_precompute(args, out) -> int:
    """``precompute``: materialize the offline stage to JSON."""
    database = _load(args)
    graph = TATGraph(database, InvertedIndex(database))
    precomputer = OfflinePrecomputer(
        graph, n_similar=args.similar, closeness_top=args.closeness_top
    )
    store = precomputer.build_store()
    store.save(args.out)
    print(f"precomputed {len(store)} terms -> {args.out}", file=out)
    return 0


COMMANDS = {
    "synth": cmd_synth,
    "describe": cmd_describe,
    "reformulate": cmd_reformulate,
    "similar": cmd_similar,
    "close": cmd_close,
    "search": cmd_search,
    "precompute": cmd_precompute,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
