"""Command-line interface.

One entry point with subcommands covering the full lifecycle::

    python -m repro.cli synth --out corpus/ --papers 800 --seed 7
    python -m repro.cli describe --data corpus/
    python -m repro.cli reformulate --data corpus/ probabilistic query -k 8
    python -m repro.cli similar --data corpus/ probabilistic
    python -m repro.cli close --data corpus/ probabilistic
    python -m repro.cli search --data corpus/ probabilistic query
    python -m repro.cli precompute --data corpus/ --out relations.json
    python -m repro.cli precompute --data corpus/ --out store/ --shards 8 --batch-size 128 --workers 2
    python -m repro.cli store migrate --data corpus/ --src relations.json --dest store/
    python -m repro.cli store info --data corpus/ --store store/
    python -m repro.cli reformulate --data corpus/ --relations store/ probabilistic query
    python -m repro.cli reformulate --data corpus/ --batch queries.txt --workers 4
    python -m repro.cli explain --data corpus/ probabilistic query
    python -m repro.cli --verbose precompute --data corpus/ --out store/ --trace
    python -m repro.cli stats --format prometheus
    python -m repro.cli serve --data corpus/ --port 8080 --relations store/
    python -m repro.cli serve --data corpus/ --workers 4 --access-log access.jsonl
    python -m repro.cli trace --url http://127.0.0.1:8080 --slow-only

``--data`` is a directory holding ``schema.json`` + per-table CSVs (any
schema, not just the bibliographic one); ``synth`` writes such a
directory from the generator.

Result payloads (suggestions, search trees, exports) are printed to the
*out* stream; progress and bookkeeping diagnostics go through
:mod:`logging` (logger ``repro.*``) with a handler on the same stream,
so ``--quiet`` silences them and ``--verbose`` adds debug detail without
disturbing anything that parses the payload.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from repro import obs
from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.data.dblp_synth import SynthConfig, synthesize_dblp
from repro.errors import ReproError
from repro.graph.tat import TATGraph
from repro.index.inverted import InvertedIndex
from repro.offline import OfflinePrecomputer, TermRelationStore
from repro.search.keyword import KeywordSearchEngine
from repro.search.ranking import ResultRanker
from repro.storage.database import Database
from repro.storage.schemaspec import load_database, save_database
from repro.storage.tuplegraph import TupleGraph

# Fixed name (not __name__): under ``python -m repro.cli`` this module is
# "__main__", which would fall outside the "repro" logger that main()
# attaches the diagnostics handler to.
logger = logging.getLogger("repro.cli")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser with every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Keyword query reformulation on structured data "
                    "(ICDE 2012 reproduction)",
    )
    volume = parser.add_mutually_exclusive_group()
    volume.add_argument(
        "-v", "--verbose", action="store_true",
        help="show debug-level diagnostics",
    )
    volume.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress progress and bookkeeping diagnostics",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="generate a synthetic corpus")
    synth.add_argument("--out", required=True, help="output directory")
    synth.add_argument("--authors", type=int, default=300)
    synth.add_argument("--papers", type=int, default=1200)
    synth.add_argument("--conferences", type=int, default=24)
    synth.add_argument("--seed", type=int, default=7)

    def add_data(p):
        p.add_argument(
            "--data", required=True,
            help="corpus directory (schema.json + CSVs)",
        )

    describe = sub.add_parser("describe", help="summarize a corpus")
    add_data(describe)

    reformulate = sub.add_parser(
        "reformulate", help="suggest substitutive queries"
    )
    add_data(reformulate)
    reformulate.add_argument("keywords", nargs="*")
    reformulate.add_argument("-k", type=int, default=10)
    reformulate.add_argument(
        "--method", choices=("tat", "cooccurrence", "rank"), default="tat"
    )
    reformulate.add_argument(
        "--algorithm",
        choices=("astar", "viterbi_topk", "brute_force",
                 "astar_log", "viterbi_topk_log"),
        default="astar",
    )
    reformulate.add_argument("--candidates", type=int, default=15)
    reformulate.add_argument(
        "--decode-impl", choices=("vectorized", "reference"),
        default="vectorized",
        help="decode lane: batched numpy (default) or the plain-Python "
             "reference lane (bit-identical results)",
    )
    reformulate.add_argument(
        "--batch", default=None, metavar="FILE",
        help="serve every query in FILE (one per line) through the "
             "batched fast path instead of the positional keywords",
    )
    reformulate.add_argument(
        "--workers", type=int, default=1,
        help="threads fanning batched decode (only with --batch)",
    )
    reformulate.add_argument(
        "--no-plan-cache", action="store_true",
        help="disable the per-term plan cache (uncached reference path)",
    )
    reformulate.add_argument(
        "--relations", default=None,
        help="precomputed term-relation store to serve from "
             "(v1 JSON file or v2 shard directory)",
    )
    reformulate.add_argument(
        "--trace", action="store_true",
        help="record spans/metrics for this run and print the span tree",
    )
    reformulate.add_argument(
        "--metrics-out", default=None,
        help="write a JSON metrics-registry export to this file",
    )
    reformulate.add_argument(
        "--lane", choices=("hmm", "enumeration", "relaxation", "schema"),
        default="hmm",
        help="reformulation lane: the HMM decoder (default), the "
             "rank-based enumeration baseline, Wiese-style relaxation "
             "(drops/generalizes terms when no cohesive substitution "
             "exists), or the schema-aware lane (keywords like 'author' "
             "bind the next keyword to that field)",
    )

    explain = sub.add_parser(
        "explain",
        help="reformulate plus a span trace and per-position score "
             "decomposition of every suggestion",
    )
    add_data(explain)
    explain.add_argument("keywords", nargs="+")
    explain.add_argument("-k", type=int, default=5)
    explain.add_argument(
        "--method", choices=("tat", "cooccurrence", "rank"), default="tat"
    )
    explain.add_argument(
        "--algorithm",
        choices=("astar", "viterbi_topk", "brute_force",
                 "astar_log", "viterbi_topk_log"),
        default="astar",
    )
    explain.add_argument("--candidates", type=int, default=15)
    explain.add_argument(
        "--decode-impl", choices=("vectorized", "reference"),
        default="vectorized",
        help="decode lane: batched numpy (default) or the plain-Python "
             "reference lane (bit-identical results)",
    )
    explain.add_argument(
        "--relations", default=None,
        help="precomputed term-relation store to serve from",
    )

    similar = sub.add_parser("similar", help="similar terms of one keyword")
    add_data(similar)
    similar.add_argument("term")
    similar.add_argument("-n", type=int, default=10)
    similar.add_argument(
        "--method", choices=("walk", "cooccurrence"), default="walk"
    )

    close = sub.add_parser("close", help="close terms of one keyword")
    add_data(close)
    close.add_argument("term")
    close.add_argument("-n", type=int, default=10)

    search = sub.add_parser("search", help="keyword search")
    add_data(search)
    search.add_argument("keywords", nargs="+")
    search.add_argument("-n", type=int, default=5)

    precompute = sub.add_parser(
        "precompute", help="materialize the offline stage to a relation store"
    )
    add_data(precompute)
    precompute.add_argument("--out", required=True)
    precompute.add_argument("--similar", type=int, default=20)
    precompute.add_argument("--closeness-top", type=int, default=200)
    precompute.add_argument(
        "--batch-size", type=int, default=64,
        help="vocabulary terms solved per batched walk (default 64)",
    )
    precompute.add_argument(
        "--workers", type=int, default=1,
        help="threads fanning the closeness BFS within a batch",
    )
    precompute.add_argument(
        "--walk-method", choices=("direct", "iterative"), default="direct",
        help="batched walk solver (direct = cached sparse LU)",
    )
    precompute.add_argument(
        "--shards", type=int, default=0,
        help="write the sharded v2 store with this many shards "
             "(0 = single-file v1 format)",
    )
    precompute.add_argument(
        "--progress-every", type=int, default=0,
        help="print progress every N terms (0 = silent)",
    )
    precompute.add_argument(
        "--trace", action="store_true",
        help="print the offline stage's span tree after the run",
    )
    precompute.add_argument(
        "--metrics-out", default=None,
        help="write a JSON metrics-registry export to this file",
    )

    ingest = sub.add_parser(
        "ingest",
        help="fold new rows into an existing relation store as one "
             "delta layer (incremental offline stage)",
    )
    add_data(ingest)
    ingest.add_argument(
        "--store", required=True,
        help="directory-backed relation store (v2 shards or v3 binary)",
    )
    ingest.add_argument(
        "--rows", required=True,
        help='JSON file: [{"table": ..., "row": {...}}, ...] — the rows '
             "are also persisted in the layer for worker replay",
    )
    ingest.add_argument(
        "--similar", type=int, default=None,
        help="similar-list length (default: inherited from the store)",
    )
    ingest.add_argument(
        "--closeness-top", type=int, default=None,
        help="closeness row length (default: inherited from the store)",
    )
    ingest.add_argument("--batch-size", type=int, default=64)
    ingest.add_argument(
        "--trace", action="store_true",
        help="print the ingest's span tree after the run",
    )

    stats = sub.add_parser(
        "stats", help="export the in-process observability metrics"
    )
    stats.add_argument(
        "--format", choices=("json", "prometheus"), default="json"
    )
    stats.add_argument(
        "--from-json", default=None,
        help="re-export a JSON snapshot written by --metrics-out instead "
             "of the live in-process registry",
    )

    serve = sub.add_parser(
        "serve", help="run the HTTP serving daemon over a corpus"
    )
    add_data(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 = pick an ephemeral port)",
    )
    serve.add_argument(
        "--relations", default=None,
        help="precomputed term-relation store to serve from "
             "(v1 JSON file, v2 shard directory, or v3 binary directory)",
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="pre-fork worker processes sharing the port via "
             "SO_REUSEPORT (0 = classic single-process daemon); warm "
             "the pipeline once, fork N times, kernel balances accepts",
    )
    serve.add_argument(
        "--method", choices=("tat", "cooccurrence", "rank"), default="tat"
    )
    serve.add_argument("--candidates", type=int, default=15)
    serve.add_argument(
        "--decode-impl", choices=("vectorized", "reference"),
        default="vectorized",
        help="decode lane for the online stage (bit-identical results)",
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=8,
        help="requests decoded at once (admission semaphore permits)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="requests allowed to wait for a permit before shedding",
    )
    serve.add_argument(
        "--queue-timeout-ms", type=int, default=1000,
        help="longest a queued request waits before a 429",
    )
    serve.add_argument(
        "--deadline-ms", type=int, default=0,
        help="default per-request deadline (0 = none; requests may "
             "still send their own deadline_ms)",
    )
    serve.add_argument(
        "--result-cache", type=int, default=1024,
        help="query-level result LRU capacity (0 disables)",
    )
    serve.add_argument(
        "--no-metrics", action="store_true",
        help="leave the observability switch off (no /metrics series)",
    )
    serve.add_argument(
        "--access-log", default=None, metavar="FILE",
        help="append one JSON line per request (trace id, route, status, "
             "stage latencies); safe to share across pre-fork workers",
    )
    serve.add_argument(
        "--trace-sample", type=float, default=0.1, metavar="RATE",
        help="head-sampling rate of request traces kept in the flight "
             "recorder (slow/degraded/shed requests are always kept)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=500.0,
        help="requests slower than this are always captured by the "
             "flight recorder, whatever the sampling decision",
    )
    serve.add_argument(
        "--flight-recorder", type=int, default=64, metavar="N",
        help="per-ring capacity of the in-memory flight recorder "
             "(served at GET /debug/traces)",
    )
    serve.add_argument(
        "--lanes", default="hmm,enumeration,relaxation,schema",
        metavar="NAMES",
        help="comma-separated reformulation lanes to serve; request "
             "bodies naming any other lane get a 400",
    )
    serve.add_argument(
        "--default-lane", default="hmm",
        help="lane used when a request does not name one",
    )
    serve.add_argument(
        "--fallback-lane", default=None,
        help="lane to re-route through when the routed lane's best-path "
             "cohesion falls below the threshold (typically 'relaxation'; "
             "default: no fallback chain)",
    )
    serve.add_argument(
        "--cohesion-threshold", type=float, default=1e-9,
        help="best-path cohesion below which the fallback chain (and "
             "the relaxation lane itself) triggers",
    )

    trace = sub.add_parser(
        "trace",
        help="render request traces recorded by the serving daemon's "
             "flight recorder",
    )
    trace.add_argument(
        "--url", default=None,
        help="base URL of a running daemon, e.g. http://127.0.0.1:8080 "
             "(fetches GET /debug/traces, pool-wide)",
    )
    trace.add_argument(
        "--from-json", default=None, metavar="FILE",
        help="render a saved /debug/traces document or a spooled "
             "traces-worker-*.json instead of contacting a daemon",
    )
    trace.add_argument(
        "--id", default=None, metavar="TRACE_ID",
        help="only the trace(s) with this request id",
    )
    trace.add_argument(
        "--slow-only", action="store_true",
        help="only notable requests (slow, degraded, shed, or errored)",
    )
    trace.add_argument(
        "-n", type=int, default=0,
        help="newest N traces (0 = all retained)",
    )
    trace.add_argument(
        "--explain", action="store_true",
        help="re-decode each rendered query with the explain-mode score "
             "decomposition joined under the trace (needs --data)",
    )
    trace.add_argument(
        "--data", default=None,
        help="corpus directory (schema.json + CSVs); required by --explain",
    )
    trace.add_argument(
        "--method", choices=("tat", "cooccurrence", "rank"), default="tat"
    )
    trace.add_argument("--candidates", type=int, default=15)
    trace.add_argument(
        "--decode-impl", choices=("vectorized", "reference"),
        default="vectorized",
    )
    trace.add_argument(
        "--relations", default=None,
        help="precomputed term-relation store for --explain",
    )

    store = sub.add_parser("store", help="inspect or migrate relation stores")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    migrate = store_sub.add_parser(
        "migrate",
        help="convert a store between formats: --to v2 (JSON shards) "
             "or --to v3 (binary memmap blocks)",
    )
    add_data(migrate)
    migrate.add_argument(
        "--src", required=True,
        help="source store (v1 file; v2 directory also accepted by --to v3)",
    )
    migrate.add_argument("--dest", required=True, help="output directory")
    migrate.add_argument(
        "--to", choices=("v2", "v3"), default="v2",
        help="target format (default v2 for backward compatibility)",
    )
    migrate.add_argument(
        "--shards", type=int, default=8,
        help="shard count for --to v2 (ignored by --to v3)",
    )
    info = store_sub.add_parser(
        "info", help="print a store's format, size and build metadata"
    )
    add_data(info)
    info.add_argument("--store", required=True, help="store file or directory")
    compact = store_sub.add_parser(
        "compact",
        help="fold a store's delta layers back into a fresh base build",
    )
    add_data(compact)
    compact.add_argument(
        "--store", required=True, help="store directory with delta layers"
    )
    compact.add_argument("--batch-size", type=int, default=64)

    return parser


# --------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------- #

def _load(args) -> Database:
    return load_database(args.data)


def _print_trace(out) -> None:
    """Render the most recent root span to *out* (no-op without one)."""
    root = obs.tracer().last_root()
    if root is not None:
        print(obs.export.render_span_tree(root).rstrip("\n"), file=out)


def _write_metrics(path: str) -> None:
    """Dump the global metrics registry as JSON to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(obs.export.registry_to_json(obs.registry()))
    logger.info("wrote metrics export to %s", path)


def cmd_synth(args, out) -> int:
    """``synth``: generate a corpus and write schema.json + CSVs."""
    corpus = synthesize_dblp(SynthConfig(
        n_authors=args.authors,
        n_papers=args.papers,
        n_conferences=args.conferences,
        seed=args.seed,
    ))
    save_database(corpus.database, args.out)
    logger.info("wrote corpus to %s", args.out)
    print(corpus.database.describe(), file=out)
    return 0


def cmd_describe(args, out) -> int:
    """``describe``: print table counts and TAT graph statistics."""
    database = _load(args)
    print(database.describe(), file=out)
    index = InvertedIndex(database).build()
    graph = TATGraph(database, index)
    print(f"TAT graph: {graph.stats()}", file=out)
    return 0


def _build_reformulator(args, database: Database) -> Reformulator:
    """Shared pipeline construction for reformulate/explain."""
    if args.relations:
        # A layered store's journal carries rows the base CSVs don't
        # have; replay it so the graph matches the store's chain tip
        # (same reconstruction `repro serve` performs at startup).
        replayed = _replay_layers(database, args.relations)
        if replayed:
            logger.info(
                "replayed %d delta layer(s) from %s",
                replayed, args.relations,
            )
    graph = TATGraph(database, InvertedIndex(database))
    config = ReformulatorConfig(
        method=args.method,
        n_candidates=args.candidates,
        enable_plan_cache=not getattr(args, "no_plan_cache", False),
        decode_impl=getattr(args, "decode_impl", "vectorized"),
    )
    if args.relations:
        store = TermRelationStore.load(args.relations, graph)
        return Reformulator(graph, config, similarity=store, closeness=store)
    return Reformulator(graph, config)


def _read_batch_file(path: str) -> List[str]:
    """Non-empty lines of a batch query file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return [line.strip() for line in handle if line.strip()]
    except OSError as exc:
        raise ReproError(f"cannot read batch file {path}: {exc}")


def cmd_reformulate(args, out) -> int:
    """``reformulate``: print top-k substitutive queries.

    With ``--batch FILE`` every line of FILE is one query; the whole set
    is served through ``reformulate_many`` (shared-term plan warmup +
    optional thread fan-out) and results are printed per query.
    """
    if bool(args.batch) == bool(args.keywords):
        raise ReproError(
            "provide either positional keywords or --batch FILE (not both)"
        )
    reformulator = _build_reformulator(args, _load(args))
    from repro.lanes import build_router

    router = build_router(reformulator)

    def print_result(result) -> None:
        for suggestion, prov in zip(result.suggestions, result.provenance):
            note = ""
            if prov.get("relaxed"):
                parts = []
                if prov.get("dropped"):
                    parts.append(f"dropped: {', '.join(prov['dropped'])}")
                for was, now in (prov.get("generalized") or {}).items():
                    parts.append(f"{was} -> {now}")
                note = f"  [relaxed; {'; '.join(parts)}]" if parts else "  [relaxed]"
            print(f"  {suggestion.score:.3e}  {suggestion.text}{note}", file=out)

    # Segment against the corpus vocabulary so multi-word names survive:
    # `reformulate --data d christian s. jensen spatial` is one name +
    # one word, not four keywords.
    with obs.enabled(args.trace or obs.is_enabled()):
        if args.batch:
            parsed_queries = [
                list(reformulator.parser.parse(line.lower()).keywords)
                for line in _read_batch_file(args.batch)
            ]
            batches = router.route_many(
                parsed_queries, k=args.k, lane=args.lane,
                algorithm=args.algorithm, workers=args.workers,
            )
            for keywords, result in zip(parsed_queries, batches):
                print(f"input: {' | '.join(keywords)}", file=out)
                print_result(result)
        else:
            raw_query = " ".join(args.keywords).lower()
            parsed = reformulator.parser.parse(raw_query)
            print(f"input: {' | '.join(parsed.keywords)}", file=out)
            result = router.route(
                list(parsed.keywords), k=args.k, lane=args.lane,
                algorithm=args.algorithm,
            )
            print_result(result)
        if args.trace:
            _print_trace(out)
    if args.metrics_out:
        _write_metrics(args.metrics_out)
    return 0


def cmd_explain(args, out) -> int:
    """``explain``: trace one reformulation and decompose every score."""
    reformulator = _build_reformulator(args, _load(args))
    result = reformulator.explain(
        " ".join(args.keywords).lower(), k=args.k, algorithm=args.algorithm
    )
    print(result.render(), file=out)
    return 0


def cmd_stats(args, out) -> int:
    """``stats``: export metrics as JSON or Prometheus text format."""
    if args.from_json:
        try:
            with open(args.from_json, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read snapshot {args.from_json}: {exc}")
    else:
        snapshot = obs.export.registry_to_dict(obs.registry())
    if args.format == "prometheus":
        print(obs.export.prometheus_from_dict(snapshot).rstrip("\n"), file=out)
    else:
        print(json.dumps(snapshot, indent=2), file=out)
    return 0


def cmd_similar(args, out) -> int:
    """``similar``: print one keyword's similar-term list."""
    database = _load(args)
    graph = TATGraph(database, InvertedIndex(database))
    if args.method == "walk":
        from repro.graph.similarity import SimilarityExtractor

        backend = SimilarityExtractor(graph)
    else:
        from repro.graph.cooccurrence import CooccurrenceSimilarity

        backend = CooccurrenceSimilarity(graph)
    for term, score in backend.similar_terms(args.term.lower(), args.n):
        print(f"  {score:.5f}  {term}", file=out)
    return 0


def cmd_close(args, out) -> int:
    """``close``: print one keyword's closest terms (Eq 3)."""
    from repro.graph.closeness import ClosenessExtractor

    database = _load(args)
    graph = TATGraph(database, InvertedIndex(database))
    extractor = ClosenessExtractor(graph)
    node_id = graph.resolve_text_one(args.term.lower())
    for other, score in extractor.close_terms(node_id, args.n):
        print(f"  {score:.5f}  {graph.node(other)}", file=out)
    return 0


def cmd_search(args, out) -> int:
    """``search``: run keyword search and render result trees."""
    database = _load(args)
    index = InvertedIndex(database).build()
    engine = KeywordSearchEngine(TupleGraph(database), index)
    ranker = ResultRanker(index)
    keywords = [kw.lower() for kw in args.keywords]
    results = ranker.rank(engine.search(keywords))
    print(f"{results.size} results", file=out)
    for i, result in enumerate(results.top(args.n), 1):
        print(f"[{i}] tree of {result.size} tuple(s)", file=out)
        print(result.render(database), file=out)
    return 0


def cmd_precompute(args, out) -> int:
    """``precompute``: run the batched offline stage and persist it."""
    database = _load(args)
    graph = TATGraph(database, InvertedIndex(database))
    precomputer = OfflinePrecomputer(
        graph, n_similar=args.similar, closeness_top=args.closeness_top
    )

    last_reported = 0

    def report(done: int, total: int) -> None:
        nonlocal last_reported
        every = args.progress_every
        if every and done // every > last_reported // every:
            logger.info("precomputed %d/%d terms", done, total)
            last_reported = done

    with obs.enabled(args.trace or obs.is_enabled()):
        store = precomputer.build_store(
            batch_size=args.batch_size,
            workers=args.workers,
            walk_method=args.walk_method,
            progress=report,
        )
        if args.trace:
            _print_trace(out)
    stats = precomputer.stats
    if args.shards > 0:
        store.save_sharded(
            args.out,
            n_shards=args.shards,
            build_info={
                "batch_size": stats.batch_size,
                "workers": stats.workers,
                "walk_method": stats.walk_method,
                "terms_per_second": round(stats.terms_per_second, 1),
                "n_similar": args.similar,
                "closeness_top": args.closeness_top,
            },
        )
        layout = f"{args.shards} shards"
    else:
        store.save(args.out)
        layout = "v1 single file"
    logger.info(
        "precomputed %d terms -> %s (%s, %.0f terms/s, max residual %.2e)",
        len(store), args.out, layout,
        stats.terms_per_second, stats.max_residual,
    )
    if args.metrics_out:
        _write_metrics(args.metrics_out)
    return 0


def cmd_serve(args, out) -> int:
    """``serve``: run the HTTP daemon until SIGTERM/SIGINT.

    The pipeline is built before the listening socket accepts queries,
    so ``/readyz`` is green from the first connection; a ``READY``
    line with the bound address is printed to *out* once serving (CI
    and scripts poll for it).  SIGTERM drains in-flight requests
    before the process exits.

    With ``--workers N`` the warmed pipeline is forked into N worker
    processes sharing the port via SO_REUSEPORT (one daemon per core;
    the TAT graph — and, with a v3 store, the memmapped relation blocks
    — stay one physical copy).  SIGTERM on the master fans the drain
    out to every worker.
    """
    from repro.live import LiveReformulator
    from repro.server import PreforkServer, ReformulationServer, ServerConfig

    database = _load(args)
    live = LiveReformulator(
        database,
        ReformulatorConfig(
            method=args.method,
            n_candidates=args.candidates,
            result_cache_size=args.result_cache,
            decode_impl=args.decode_impl,
        ),
        relations=args.relations,
    )
    lanes = tuple(
        name.strip() for name in args.lanes.split(",") if name.strip()
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        queue_timeout_s=args.queue_timeout_ms / 1000.0,
        default_deadline_ms=args.deadline_ms,
        trace_sample_rate=args.trace_sample,
        slow_trace_ms=args.slow_ms,
        flight_recorder_size=args.flight_recorder,
        access_log_path=args.access_log,
        lanes=lanes,
        default_lane=args.default_lane,
        fallback_lane=args.fallback_lane,
        cohesion_threshold=args.cohesion_threshold,
    )
    logger.info(
        "pipeline warming (relations=%s)...", args.relations or "live"
    )
    # A store that accumulated delta layers persists the ingested rows in
    # its chain; replay them into the freshly loaded corpus so serving
    # starts at the chain tip (the same path respawned workers take).
    replayed = live.sync_ingest()
    if replayed:
        logger.info(
            "replayed %d delta layer(s) from %s (ingest epoch %d)",
            replayed, args.relations, live.ingest_epoch,
        )
    live.pipeline()  # before any fork: workers share this copy-on-write
    if args.workers > 0:
        pool = PreforkServer(
            lambda: live,
            config,
            workers=args.workers,
            enable_metrics=not args.no_metrics,
        )
        pool.start()
        pool.install_signal_handlers()
        host, port = pool.address
        print(
            f"READY http://{host}:{port} workers={args.workers}",
            file=out, flush=True,
        )
        pool.serve_forever()
        logger.info("worker pool drained; exiting")
        return 0
    server = ReformulationServer(live, config)
    if not args.no_metrics:
        obs.enable()
    server.install_signal_handlers()
    host, port = server.bind()
    print(f"READY http://{host}:{port}", file=out, flush=True)
    server.serve_forever()
    logger.info("server drained; exiting")
    return 0


def _load_trace_records(args) -> List[dict]:
    """Trace records from a live daemon (--url) or a JSON file."""
    if bool(args.url) == bool(args.from_json):
        raise ReproError("provide exactly one of --url or --from-json")
    if args.url:
        from urllib.parse import urlsplit

        from repro.server.client import ServerClient

        parts = urlsplit(args.url if "//" in args.url else f"//{args.url}")
        with ServerClient(
            host=parts.hostname or "127.0.0.1", port=parts.port or 8080
        ) as client:
            response = client.debug_traces(n=args.n or None)
            if not response.ok:
                raise ReproError(
                    f"GET /debug/traces returned {response.status}"
                )
            payload = response.json
    else:
        try:
            with open(args.from_json, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read {args.from_json}: {exc}")
    if not isinstance(payload, dict) or "traces" not in payload:
        raise ReproError("document has no 'traces' key")
    return list(payload["traces"])


def cmd_trace(args, out) -> int:
    """``trace``: render recorded span trees from the flight recorder.

    Joins the serving-side view (per-stage latencies, queue wait,
    degraded/shed flags, the span tree) with — under ``--explain`` —
    a fresh explain-mode decode of the same keywords, so a slow query's
    trace and its score decomposition read as one document.
    """
    records = _load_trace_records(args)
    if args.id:
        records = [r for r in records if r.get("trace_id") == args.id]
    if args.slow_only:
        records = [r for r in records if r.get("notable")]
    if args.n and len(records) > args.n:
        records = records[-args.n:]
    if not records:
        print("no recorded traces match", file=out)
        return 0
    reformulator = None
    if args.explain:
        if not args.data:
            raise ReproError("--explain needs --data to rebuild the pipeline")
        reformulator = _build_reformulator(args, _load(args))
    for record in records:
        print(obs.export.render_trace_record(record).rstrip("\n"), file=out)
        keywords = record.get("keywords")
        if (
            reformulator is not None
            and isinstance(keywords, list)
            and keywords
            and all(isinstance(k, str) and not k.startswith("<") for k in keywords)
        ):
            result = reformulator.explain(
                [k.lower() for k in keywords],
                algorithm=record.get("algorithm") or "astar",
            )
            for line in result.render().splitlines():
                print(f"    {line}", file=out)
        print(file=out)
    return 0


def _replay_layers(database, store_path) -> int:
    """Apply a store's persisted delta-layer rows to *database*.

    CLI commands load the corpus from its CSVs, which stay at the base
    build; the layer chain carries every ingested row, so replaying it
    reconstructs the merged corpus exactly (the same feed pre-fork
    workers use).  Returns the number of layers applied.
    """
    from repro.storage import layers as layer_io

    applied = 0
    for _epoch, rows in layer_io.pending_rows(store_path, 0):
        for item in rows:
            database.insert(item["table"], dict(item["row"]))
        applied += 1
    return applied


def cmd_ingest(args, out) -> int:
    """``ingest``: run the incremental offline stage over new rows."""
    from repro.offline import DeltaIngestor

    try:
        with open(args.rows, "r", encoding="utf-8") as handle:
            rows = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read rows file {args.rows}: {exc}")
    if not isinstance(rows, list):
        raise ReproError(f"{args.rows}: expected a JSON list of rows")
    database = _load(args)
    replayed = _replay_layers(database, args.store)
    if replayed:
        logger.info(
            "replayed %d existing delta layer(s) before ingesting", replayed
        )
    ingestor = DeltaIngestor(
        database,
        args.store,
        n_similar=args.similar,
        closeness_top=args.closeness_top,
        batch_size=args.batch_size,
    )
    stats = ingestor.ingest(rows)
    logger.info(
        "ingested %d rows as layer epoch %d "
        "(%d terms recomputed, %d new, %d closeness rows invalidated) "
        "in %.3fs",
        stats.n_rows, stats.epoch, stats.n_recomputed,
        stats.n_new_terms, stats.n_invalidated, stats.elapsed_seconds,
    )
    print(json.dumps(stats.to_dict(), indent=2), file=out)
    if args.trace:
        _print_trace(out)
    return 0


def cmd_store(args, out) -> int:
    """``store``: relation-store maintenance subcommands."""
    database = _load(args)
    if args.store_command == "compact":
        from repro.offline import DeltaIngestor

        replayed = _replay_layers(database, args.store)
        ingestor = DeltaIngestor(
            database, args.store, batch_size=args.batch_size
        )
        if replayed == 0:
            logger.info("no delta layers; rebuilding the base in place")
        ingestor.compact()
        logger.info(
            "compacted %d delta layer(s) into %s", replayed, args.store
        )
        return 0
    graph = TATGraph(database, InvertedIndex(database))
    if args.store_command == "migrate":
        if args.to == "v3":
            from repro.offline_store import migrate_to_v3

            migrated = migrate_to_v3(args.src, args.dest, graph)
            total = sum(b["bytes"] for b in migrated.blocks_info())
            logger.info(
                "migrated %d terms: %s -> %s (v3 binary, %d keys, %d bytes)",
                len(migrated), args.src, args.dest,
                migrated.n_keys, total,
            )
            return 0
        from repro.offline_store import migrate_v1_to_v2

        migrated = migrate_v1_to_v2(
            args.src, args.dest, graph, n_shards=args.shards
        )
        logger.info(
            "migrated %d terms: %s -> %s (%d shards)",
            len(migrated), args.src, args.dest, migrated.n_shards,
        )
        return 0
    store = TermRelationStore.load(args.store, graph)
    layered = hasattr(store, "layers_info")
    inner = store.base if layered else store
    if layered:
        print(
            f"format version: {inner.FORMAT_VERSION} "
            f"+ {store.n_layers} delta layer(s)",
            file=out,
        )
        print(f"layer epoch: {store.epoch}", file=out)
    else:
        print(f"format version: {type(store).FORMAT_VERSION}", file=out)
    print(f"terms: {len(store)}", file=out)
    if hasattr(inner, "n_shards"):
        print(f"shards: {inner.n_shards}", file=out)
    if hasattr(inner, "blocks_info"):
        print(f"keys: {inner.n_keys}", file=out)
        for block in inner.blocks_info():
            print(
                f"block.{block['role']}: {block['file']} "
                f"({block['bytes']} bytes)",
                file=out,
            )
    if layered:
        for layer in store.layers_info():
            print(
                f"layer.{layer['epoch']}: {layer['dir']} "
                f"({layer['n_terms']} terms, {layer['n_rows']} rows, "
                f"{layer['n_invalidated']} invalidated)",
                file=out,
            )
    if hasattr(store, "build_info"):
        for key, value in sorted(store.build_info().items()):
            print(f"build.{key}: {value}", file=out)
    return 0


COMMANDS = {
    "synth": cmd_synth,
    "describe": cmd_describe,
    "reformulate": cmd_reformulate,
    "explain": cmd_explain,
    "similar": cmd_similar,
    "close": cmd_close,
    "search": cmd_search,
    "precompute": cmd_precompute,
    "ingest": cmd_ingest,
    "stats": cmd_stats,
    "store": cmd_store,
    "serve": cmd_serve,
    "trace": cmd_trace,
}


def _diagnostics_level(args) -> int:
    """Logging threshold implied by --verbose/--quiet."""
    if args.quiet:
        return logging.WARNING
    if args.verbose:
        return logging.DEBUG
    return logging.INFO


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code.

    Diagnostics from any ``repro.*`` logger are routed to the same *out*
    stream as the result payload for the duration of the call (and only
    for the duration — the handler and previous level are restored on
    exit, so embedding callers keep their own logging configuration).
    """
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    package_logger = logging.getLogger("repro")
    handler = logging.StreamHandler(out)
    handler.setFormatter(logging.Formatter("%(message)s"))
    previous_level = package_logger.level
    package_logger.addHandler(handler)
    package_logger.setLevel(_diagnostics_level(args))
    try:
        return COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        package_logger.removeHandler(handler)
        package_logger.setLevel(previous_level)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # downstream pipe closed early (e.g. `repro trace ... | head`);
        # detach stdout so the interpreter's shutdown flush stays quiet
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(1)
