"""Term-Augmented Tuple graph (Definition 5 of the paper).

``G = (V ∪ V_t, E ∪ E_t)`` where

* ``V``   — tuple nodes, ``E``   — foreign-key edges between tuples;
* ``V_t`` — field-labelled term nodes, ``E_t`` — containment edges linking
  a term node to every tuple whose field value contains it.

Edge weighting follows Section IV-A's discussion: containment edges carry
the in-tuple term frequency, optionally scaled by the term's idf so that
ubiquitous words do not dominate the walk; foreign-key edges carry unit
weight.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import GraphError, UnknownNodeError
from repro.index.inverted import FieldRef, FieldTerm, InvertedIndex
from repro.storage.database import Database, TupleRef
from repro.graph.adjacency import Adjacency, AdjacencyBuilder
from repro.graph.nodes import Node, NodeClass, NodeKind, NodeRegistry


class TATGraph:
    """The heterogeneous graph over tuples and terms.

    Parameters
    ----------
    database:
        Source of tuple nodes and foreign-key edges.
    index:
        A built :class:`InvertedIndex` providing the term nodes and
        containment edges.
    idf_weighted_edges:
        When True, a containment edge ``(tuple, term)`` is weighted
        ``tf · idf(term)`` instead of plain ``tf``.
    fk_edge_weight:
        Weight assigned to every tuple-tuple foreign-key edge.
    """

    def __init__(
        self,
        database: Database,
        index: InvertedIndex,
        idf_weighted_edges: bool = True,
        fk_edge_weight: float = 1.0,
    ) -> None:
        if fk_edge_weight <= 0:
            raise GraphError("fk_edge_weight must be positive")
        self.database = database
        self.index = index.build()
        self.idf_weighted_edges = idf_weighted_edges
        self.fk_edge_weight = fk_edge_weight
        self.registry = NodeRegistry()
        self.adjacency = self._build()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _build(self) -> Adjacency:
        builder = AdjacencyBuilder()
        # 1. tuple nodes
        for ref in self.database.tuple_refs():
            self.registry.add(Node.for_tuple(ref))
        # 2. foreign-key edges (E)
        for child, parent in self.database.fk_edges():
            u = self.registry.id_of(Node.for_tuple(child))
            v = self.registry.id_of(Node.for_tuple(parent))
            builder.add_edge(u, v, self.fk_edge_weight)
        # 3. term nodes and containment edges (V_t, E_t)
        for term in self.index.terms():
            term_id = self.registry.add(Node.for_term(term))
            idf = self.index.idf(term) if self.idf_weighted_edges else 1.0
            for posting in self.index.postings(term):
                tuple_id = self.registry.id_of(Node.for_tuple(posting.ref))
                builder.add_edge(term_id, tuple_id, posting.tf * idf)
        return builder.freeze(len(self.registry))

    # ------------------------------------------------------------------ #
    # incremental extension (delta ingest)
    # ------------------------------------------------------------------ #

    def add_tuples(self, refs: Sequence[TupleRef]) -> Set[int]:
        """Extend the graph in place with freshly inserted rows.

        The rows behind *refs* must already live in ``self.database`` (and
        must reference only pre-existing rows or rows inside this batch —
        the append-only ingest contract).  The index is extended
        incrementally, new tuple/term nodes are registered, and the
        adjacency grows via :meth:`~repro.graph.adjacency.Adjacency.extend`
        — no rebuild.  Because idf depends on the corpus-wide document
        count, every existing containment edge is reweighted exactly by
        its term's ``idf_new / idf_old`` ratio, so the extended graph
        carries the same edge weights a from-scratch rebuild would
        (up to node ordering and float rounding of the ratio).

        Returns the **structural dirty set**: ids of new nodes plus every
        pre-existing node that gained an edge.  This is the seed for
        dirty-set closeness refresh (closeness is purely structural).
        Note that *walk* scores are dirtied globally by any insert — the
        idf reweight perturbs the whole transition matrix — so callers
        refreshing similarity rows must pick their own recompute policy
        (see ``DeltaIngestor``); the dirty set is not a walk-staleness
        bound.
        """
        refs = list(refs)
        if not refs:
            return set()
        old_n = len(self.registry)
        old_idf: Dict[FieldTerm, float] = {}
        if self.idf_weighted_edges:
            old_idf = {t: self.index.idf(t) for t in self.index.terms()}
        indexed = self.index.add_rows(refs)

        dirty: Set[int] = set()
        new_edges: List[Tuple[int, int, float]] = []
        # 1. new tuple nodes + their foreign-key edges
        for ref in refs:
            table_name, _pk = ref
            node_id = self.registry.add(Node.for_tuple(ref))
            if node_id < old_n:
                raise GraphError(f"tuple {ref} is already in the graph")
            dirty.add(node_id)
            row = self.database.fetch(ref)
            for fk in self.database.schema.foreign_keys_of(table_name):
                value = row.get(fk.column)
                if value is None:
                    continue
                parent = self.registry.id_of(
                    Node.for_tuple((fk.ref_table, value))
                )
                new_edges.append((node_id, parent, self.fk_edge_weight))
        # 2. term nodes (new or existing) + containment edges of new rows
        for ref, entry in indexed:
            tuple_id = self.registry.id_of(Node.for_tuple(ref))
            for term, tf in entry:
                term_id = self.registry.add(Node.for_term(term))
                idf = self.index.idf(term) if self.idf_weighted_edges else 1.0
                new_edges.append((term_id, tuple_id, tf * idf))
        # 3. exact idf reweight of existing containment edges: a term
        # node's edges are all containment edges, so scaling its incident
        # entries by idf_new/idf_old (tuple factors stay 1.0) reproduces
        # the rebuilt weights without touching FK edges.
        scale = None
        if self.idf_weighted_edges and old_idf:
            scale = np.ones(old_n, dtype=np.float64)
            for term, before in old_idf.items():
                term_id = self.registry.get_id(Node.for_term(term))
                if term_id is not None and term_id < old_n:
                    scale[term_id] = self.index.idf(term) / before
        for u, v, _w in new_edges:
            dirty.add(u)
            dirty.add(v)
        self.adjacency.extend(len(self.registry), new_edges, scale=scale)
        return dirty

    def add_terms(self, terms: Sequence[FieldTerm]) -> Set[int]:
        """Register term nodes (with all their containment edges) for
        indexed terms that are not yet in the graph.

        Covers the less common delta shape — vocabulary added to the index
        out of band (e.g. a field newly marked as text) — and returns the
        same structural dirty set contract as :meth:`add_tuples`.  Terms
        already present in the graph are skipped.
        """
        dirty: Set[int] = set()
        new_edges: List[Tuple[int, int, float]] = []
        for term in terms:
            node = Node.for_term(term)
            if self.registry.get_id(node) is not None:
                continue
            term_id = self.registry.add(node)
            dirty.add(term_id)
            idf = self.index.idf(term) if self.idf_weighted_edges else 1.0
            for posting in self.index.postings(term):
                tuple_id = self.registry.id_of(Node.for_tuple(posting.ref))
                new_edges.append((term_id, tuple_id, posting.tf * idf))
        if not dirty:
            return dirty
        for u, v, _w in new_edges:
            dirty.add(u)
            dirty.add(v)
        self.adjacency.extend(len(self.registry), new_edges)
        return dirty

    # ------------------------------------------------------------------ #
    # structural queries
    # ------------------------------------------------------------------ #

    @property
    def n_nodes(self) -> int:
        """Total node count (tuples + terms)."""
        return len(self.registry)

    @property
    def n_edges(self) -> int:
        """Total undirected edge count."""
        return self.adjacency.n_edges

    def term_node_id(self, term: FieldTerm) -> int:
        """Node id of a field term (raises if absent)."""
        return self.registry.id_of(Node.for_term(term))

    def tuple_node_id(self, ref: TupleRef) -> int:
        """Node id of a tuple ref (raises if absent)."""
        return self.registry.id_of(Node.for_tuple(ref))

    def node(self, node_id: int) -> Node:
        """Node behind an integer id."""
        return self.registry.node_of(node_id)

    def neighbors(self, node_id: int) -> Iterator[Tuple[int, float]]:
        """(neighbor id, edge weight) pairs of one node."""
        return self.adjacency.neighbors(node_id)

    def resolve_text(self, text: str) -> List[int]:
        """Node ids of every term node matching *text* (any field)."""
        return [
            self.registry.id_of(Node.for_term(term))
            for term in self.index.lookup_text(text)
        ]

    def resolve_text_one(self, text: str) -> int:
        """The single best term node for *text*: highest collection tf.

        Raises :class:`UnknownNodeError` when the text occurs nowhere.
        """
        candidates = self.index.lookup_text(text)
        if not candidates:
            raise UnknownNodeError(f"term {text!r} does not occur in the corpus")
        best = max(candidates, key=lambda t: (self.index.total_tf(t), str(t)))
        return self.registry.id_of(Node.for_term(best))

    def class_of(self, node_id: int) -> NodeClass:
        """Node class of one node id."""
        return self.registry.node_of(node_id).node_class

    def same_class_ids(self, node_id: int) -> List[int]:
        """All node ids in the same class as *node_id* (including itself)."""
        return self.registry.ids_of_class(self.class_of(node_id))

    def term_fields(self) -> List[FieldRef]:
        """All term-node classes (i.e. indexed fields)."""
        return self.index.fields()

    def stats(self) -> Dict[str, int]:
        """Structural summary used by docs, examples and tests."""
        n_terms = sum(1 for _ in self.registry.term_ids())
        return {
            "nodes": self.n_nodes,
            "edges": self.n_edges,
            "tuple_nodes": self.n_nodes - n_terms,
            "term_nodes": n_terms,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"TATGraph(nodes={s['nodes']}, edges={s['edges']}, "
            f"tuples={s['tuple_nodes']}, terms={s['term_nodes']})"
        )
