"""Term closeness extraction (Section IV-C, Eq 3).

``clos(vi, vj) = Σ_{shortest paths τ: vi→vj} 1/len(τ)`` — shortest paths
between the two nodes, each discounted by its length.  Short, plentiful
connections mean the two terms cover joint keyword-search results, which
is the cohesion signal the HMM transition matrix needs (Eq 8: closeness
expresses "how often the terms appear together").

The extraction mirrors the paper's two-stage method: a level-by-level BFS
from each source that counts shortest paths ("Distance i+1 nodes can be
easily derived from distance i ones"), with frequency pruning per level
("We maintain top ones and prune less frequent to guarantee the extraction
performance").

Two path weightings are provided:

* ``"degree"`` (default) — each path contributes the product of
  1/degree over its *intermediate* nodes, divided by its length.  Longer
  paths are geometrically discounted by the graph's branching, so direct
  co-occurrence (distance 2) dominates regardless of corpus density —
  matching the paper's Table I, where the closest terms are the
  frequently co-occurring ones.  Discounting intermediates but not the
  endpoints makes the measure symmetric (``clos(a,b) == clos(b,a)``) and
  keeps hub endpoints from hoarding closeness.
* ``"count"`` — the literal Eq 3: raw shortest-path count / length.  On
  dense graphs the sheer number of length-4 paths can outweigh direct
  co-occurrence; kept for faithfulness studies and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import GraphError
from repro.graph.nodes import NodeKind
from repro.graph.tat import TATGraph

#: Bucket bounds for the frontier-size histogram — frontiers range from a
#: handful of nodes at depth 1 to beam_width (default 2000) after pruning.
_FRONTIER_BUCKETS = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0]

PATH_WEIGHTINGS = ("degree", "count")


@dataclass(frozen=True)
class PathInfo:
    """Shortest-path summary from a source to one node."""

    distance: int
    path_mass: float  # path count ("count") or walk probability ("degree")

    @property
    def closeness(self) -> float:
        """Eq 3 contribution: accumulated path mass / path length."""
        if self.distance == 0:
            return 0.0
        return self.path_mass / self.distance


class ClosenessExtractor:
    """Pruned shortest-path-counting BFS over the TAT graph.

    Parameters
    ----------
    graph:
        The TAT graph.
    max_depth:
        Maximum path length explored.  Two terms sharing a tuple are at
        distance 2 (term—tuple—term), so 4 reaches "same author /
        conference" connections and is the practical default.
    beam_width:
        Per-level pruning: keep only the *beam_width* frontier nodes with
        the most path mass when expanding to the next level.  ``None``
        disables pruning (exact, used by correctness tests).
    path_weighting:
        ``"degree"`` or ``"count"`` — see the module docstring.
    """

    def __init__(
        self,
        graph: TATGraph,
        max_depth: int = 4,
        beam_width: Optional[int] = 2000,
        path_weighting: str = "degree",
    ) -> None:
        if max_depth < 1:
            raise GraphError("max_depth must be >= 1")
        if beam_width is not None and beam_width < 1:
            raise GraphError("beam_width must be >= 1 or None")
        if path_weighting not in PATH_WEIGHTINGS:
            raise GraphError(
                f"path_weighting must be one of {PATH_WEIGHTINGS}, "
                f"got {path_weighting!r}"
            )
        self.graph = graph
        self.max_depth = max_depth
        self.beam_width = beam_width
        self.path_weighting = path_weighting
        self._cache: Dict[int, Dict[int, PathInfo]] = {}
        self._reach_cache: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._term_mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # stage 1: pruned shortest-path search
    # ------------------------------------------------------------------ #

    def _reach(self, source: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Level-by-level pruned BFS, vectorized over each frontier.

        Returns parallel arrays ``(ids, distances, masses)`` over every
        reached node, the source included at distance 0.  One hop expands
        the whole frontier with CSR gathers instead of per-node python
        loops — "Distance i+1 nodes can be easily derived from distance i
        ones" — which is what makes whole-vocabulary extraction cheap.
        """
        cached = self._reach_cache.get(source)
        if cached is not None:
            return cached
        matrix = self.graph.adjacency.matrix
        n = matrix.shape[0]
        indptr, indices = matrix.indptr, matrix.indices

        visited = np.zeros(n, dtype=bool)
        visited[source] = True
        levels: List[Tuple[np.ndarray, int, np.ndarray]] = []
        frontier_ids = np.array([source], dtype=np.int64)
        frontier_mass = np.array([1.0])
        frontier_hist = (
            obs.registry().histogram(
                "repro_closeness_frontier_size",
                "BFS frontier size per depth level in ClosenessExtractor",
                buckets=_FRONTIER_BUCKETS,
            )
            if obs.is_enabled()
            else None
        )
        for depth in range(1, self.max_depth + 1):
            if frontier_hist is not None:
                frontier_hist.observe(frontier_ids.size)
            if (
                self.beam_width is not None
                and frontier_ids.size > self.beam_width
            ):
                # keep the beam_width most path-heavy frontier nodes
                # ("we maintain top ones and prune less frequent")
                order = np.lexsort((frontier_ids, -frontier_mass))
                keep = order[: self.beam_width]
                frontier_ids = frontier_ids[keep]
                frontier_mass = frontier_mass[keep]
            counts = indptr[frontier_ids + 1] - indptr[frontier_ids]
            step_mass = frontier_mass
            # Only intermediate nodes discount the path mass: the source
            # (depth-1 expansion) is an endpoint.
            if self.path_weighting == "degree" and depth > 1:
                expandable = counts > 0
                frontier_ids = frontier_ids[expandable]
                counts = counts[expandable]
                step_mass = frontier_mass[expandable] / counts
            nnz = int(counts.sum())
            if not nnz:
                break
            starts = indptr[frontier_ids]
            slot = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            ) + np.arange(nnz)
            neighbors = indices[slot]
            contrib = np.repeat(step_mass, counts)
            fresh = ~visited[neighbors]  # shorter paths win
            neighbors = neighbors[fresh]
            contrib = contrib[fresh]
            if not neighbors.size:
                break
            level_mass = np.bincount(neighbors, weights=contrib, minlength=n)
            new_ids = np.unique(neighbors)
            visited[new_ids] = True
            levels.append((new_ids, depth, level_mass[new_ids]))
            frontier_ids = new_ids
            frontier_mass = level_mass[new_ids]
        ids = np.concatenate(
            [np.array([source], dtype=np.int64)] + [lv[0] for lv in levels]
        )
        distances = np.concatenate(
            [np.array([0], dtype=np.int64)]
            + [np.full(lv[0].size, lv[1], dtype=np.int64) for lv in levels]
        )
        masses = np.concatenate(
            [np.array([1.0])] + [lv[2] for lv in levels]
        )
        reach = (ids, distances, masses)
        self._reach_cache[source] = reach
        return reach

    def paths_from(self, source: int) -> Dict[int, PathInfo]:
        """Shortest-path info from *source* to every reached node (cached)."""
        cached = self._cache.get(source)
        if cached is not None:
            return cached
        ids, distances, masses = self._reach(source)
        info = {
            int(node): PathInfo(int(dist), float(mass))
            for node, dist, mass in zip(ids, distances, masses)
        }
        self._cache[source] = info
        return info

    # ------------------------------------------------------------------ #
    # stage 2: closeness readout
    # ------------------------------------------------------------------ #

    def closeness(self, node_a: int, node_b: int) -> float:
        """clos(a, b) per Eq 3; 0 when unreachable within max_depth."""
        if node_a == node_b:
            return 0.0
        pinfo = self.paths_from(node_a).get(node_b)
        if pinfo is None:
            return 0.0
        return pinfo.closeness

    def distance(self, node_a: int, node_b: int) -> Optional[int]:
        """Shortest-path hop distance, or None when out of reach."""
        if node_a == node_b:
            return 0
        pinfo = self.paths_from(node_a).get(node_b)
        return None if pinfo is None else pinfo.distance

    def _terms_mask(self) -> np.ndarray:
        """Boolean per-node-id mask of term nodes, cached.

        Rebuilt automatically when the graph grew under us (delta ingest
        extends the adjacency in place).
        """
        n = self.graph.adjacency.matrix.shape[0]
        if self._term_mask is not None and self._term_mask.shape[0] != n:
            self._term_mask = None
        if self._term_mask is None:
            mask = np.zeros(self.graph.adjacency.matrix.shape[0], dtype=bool)
            for term_id in self.graph.registry.term_ids():
                mask[term_id] = True
            self._term_mask = mask
        return self._term_mask

    def close_terms(self, node_id: int, top_n: int = 10) -> List[Tuple[int, float]]:
        """Top close *term* nodes of one node — the Table I readout."""
        if top_n < 1:
            raise GraphError("top_n must be >= 1")
        ids, distances, masses = self._reach(node_id)
        keep = (distances > 0) & self._terms_mask()[ids] & (ids != node_id)
        ids = ids[keep]
        scores = masses[keep] / distances[keep]
        order = np.lexsort((ids, -scores))[:top_n]
        return [(int(ids[i]), float(scores[i])) for i in order]

    def close_terms_in_class(
        self, node_id: int, node_class, top_n: int = 10
    ) -> List[Tuple[int, float]]:
        """Top close terms restricted to one field (Table I's per-field view)."""
        reached = self.paths_from(node_id)
        scored = [
            (other, pinfo.closeness)
            for other, pinfo in reached.items()
            if other != node_id and self.graph.class_of(other) == node_class
            and self.graph.node(other).kind is NodeKind.TERM
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:top_n]

    def close_rows(
        self,
        node_ids: Sequence[int],
        top_n: int = 10,
        keep_cached: bool = True,
    ) -> Dict[int, List[Tuple[int, float]]]:
        """Close-term rows for many sources (the offline-stage bulk read).

        With ``keep_cached=False`` each source's reach arrays are evicted
        after the readout, so whole-vocabulary extraction runs in O(batch)
        memory instead of O(vocabulary × graph).
        """
        rows: Dict[int, List[Tuple[int, float]]] = {}
        for node_id in node_ids:
            rows[node_id] = self.close_terms(node_id, top_n)
            if not keep_cached:
                self.evict(node_id)
        return rows

    def precompute(self, node_ids: List[int]) -> None:
        """Offline stage: warm the cache for a term vocabulary."""
        for node_id in node_ids:
            self.paths_from(node_id)

    # ------------------------------------------------------------------ #
    # dirty-set refresh (delta ingest)
    # ------------------------------------------------------------------ #

    def _dirty_ball(self, dirty_ids: Sequence[int]) -> np.ndarray:
        """Boolean mask of nodes within ``max_depth`` hops of a dirty node.

        Computed on the *current* (already extended) adjacency, so new
        edges that shorten paths are honoured.
        """
        matrix = self.graph.adjacency.matrix
        n = matrix.shape[0]
        indptr, indices = matrix.indptr, matrix.indices
        seen = np.zeros(n, dtype=bool)
        frontier = np.unique(np.asarray(list(dirty_ids), dtype=np.int64))
        if frontier.size and (frontier[0] < 0 or frontier[-1] >= n):
            raise GraphError("dirty node id out of range")
        seen[frontier] = True
        for _ in range(self.max_depth):
            if not frontier.size:
                break
            counts = indptr[frontier + 1] - indptr[frontier]
            nnz = int(counts.sum())
            if not nnz:
                break
            starts = indptr[frontier]
            slot = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            ) + np.arange(nnz)
            neighbors = np.unique(indices[slot])
            neighbors = neighbors[~seen[neighbors]]
            seen[neighbors] = True
            frontier = neighbors
        return seen

    def affected_sources(self, dirty_ids: Sequence[int]) -> List[int]:
        """Term node ids whose closeness readout may have changed.

        Closeness is purely structural (path counts and structural
        degrees; edge *weights* never enter), so a source's rows can only
        change when its ``max_depth``-hop ball contains a structurally
        dirty node — exactly the ball membership computed here.  Terms
        outside the ball keep bit-identical rows, which is what lets a
        delta ingest re-BFS only this set.
        """
        ball = self._dirty_ball(dirty_ids)
        return [int(i) for i in np.flatnonzero(ball & self._terms_mask())]

    def invalidate(self, dirty_ids: Sequence[int]) -> List[int]:
        """Evict cached searches invalidated by a structural delta.

        Drops every cached source inside the dirty ball (term or tuple)
        and resets the term mask; returns the affected *term* sources so
        the caller can schedule their re-extraction.
        """
        ball = self._dirty_ball(dirty_ids)
        for source in [s for s in self._reach_cache if ball[s]]:
            self.evict(source)
        for source in [s for s in self._cache if ball[s]]:
            self.evict(source)
        return [int(i) for i in np.flatnonzero(ball & self._terms_mask())]

    def evict(self, node_id: int) -> None:
        """Drop one source's cached search (offline batch memory bound)."""
        self._cache.pop(node_id, None)
        self._reach_cache.pop(node_id, None)

    def cache_size(self) -> int:
        """Number of cached source nodes."""
        return len(self._reach_cache)

    def clear_cache(self) -> None:
        """Drop all cached path searches."""
        self._cache.clear()
        self._reach_cache.clear()
