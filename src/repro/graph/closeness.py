"""Term closeness extraction (Section IV-C, Eq 3).

``clos(vi, vj) = Σ_{shortest paths τ: vi→vj} 1/len(τ)`` — shortest paths
between the two nodes, each discounted by its length.  Short, plentiful
connections mean the two terms cover joint keyword-search results, which
is the cohesion signal the HMM transition matrix needs (Eq 8: closeness
expresses "how often the terms appear together").

The extraction mirrors the paper's two-stage method: a level-by-level BFS
from each source that counts shortest paths ("Distance i+1 nodes can be
easily derived from distance i ones"), with frequency pruning per level
("We maintain top ones and prune less frequent to guarantee the extraction
performance").

Two path weightings are provided:

* ``"degree"`` (default) — each path contributes the product of
  1/degree over its *intermediate* nodes, divided by its length.  Longer
  paths are geometrically discounted by the graph's branching, so direct
  co-occurrence (distance 2) dominates regardless of corpus density —
  matching the paper's Table I, where the closest terms are the
  frequently co-occurring ones.  Discounting intermediates but not the
  endpoints makes the measure symmetric (``clos(a,b) == clos(b,a)``) and
  keeps hub endpoints from hoarding closeness.
* ``"count"`` — the literal Eq 3: raw shortest-path count / length.  On
  dense graphs the sheer number of length-4 paths can outweigh direct
  co-occurrence; kept for faithfulness studies and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.nodes import NodeKind
from repro.graph.tat import TATGraph

PATH_WEIGHTINGS = ("degree", "count")


@dataclass(frozen=True)
class PathInfo:
    """Shortest-path summary from a source to one node."""

    distance: int
    path_mass: float  # path count ("count") or walk probability ("degree")

    @property
    def closeness(self) -> float:
        """Eq 3 contribution: accumulated path mass / path length."""
        if self.distance == 0:
            return 0.0
        return self.path_mass / self.distance


class ClosenessExtractor:
    """Pruned shortest-path-counting BFS over the TAT graph.

    Parameters
    ----------
    graph:
        The TAT graph.
    max_depth:
        Maximum path length explored.  Two terms sharing a tuple are at
        distance 2 (term—tuple—term), so 4 reaches "same author /
        conference" connections and is the practical default.
    beam_width:
        Per-level pruning: keep only the *beam_width* frontier nodes with
        the most path mass when expanding to the next level.  ``None``
        disables pruning (exact, used by correctness tests).
    path_weighting:
        ``"degree"`` or ``"count"`` — see the module docstring.
    """

    def __init__(
        self,
        graph: TATGraph,
        max_depth: int = 4,
        beam_width: Optional[int] = 2000,
        path_weighting: str = "degree",
    ) -> None:
        if max_depth < 1:
            raise GraphError("max_depth must be >= 1")
        if beam_width is not None and beam_width < 1:
            raise GraphError("beam_width must be >= 1 or None")
        if path_weighting not in PATH_WEIGHTINGS:
            raise GraphError(
                f"path_weighting must be one of {PATH_WEIGHTINGS}, "
                f"got {path_weighting!r}"
            )
        self.graph = graph
        self.max_depth = max_depth
        self.beam_width = beam_width
        self.path_weighting = path_weighting
        self._cache: Dict[int, Dict[int, PathInfo]] = {}

    # ------------------------------------------------------------------ #
    # stage 1: pruned shortest-path search
    # ------------------------------------------------------------------ #

    def paths_from(self, source: int) -> Dict[int, PathInfo]:
        """Shortest-path info from *source* to every reached node (cached)."""
        cached = self._cache.get(source)
        if cached is not None:
            return cached

        info: Dict[int, PathInfo] = {source: PathInfo(0, 1.0)}
        frontier: Dict[int, float] = {source: 1.0}  # node -> path mass
        for depth in range(1, self.max_depth + 1):
            expand = frontier
            if self.beam_width is not None and len(expand) > self.beam_width:
                top = sorted(
                    expand.items(), key=lambda item: (-item[1], item[0])
                )[: self.beam_width]
                expand = dict(top)
            next_frontier: Dict[int, float] = {}
            for node, mass in expand.items():
                step_mass = mass
                # Only intermediate nodes discount the path mass: the
                # source (depth-1 expansion) is an endpoint.
                if self.path_weighting == "degree" and depth > 1:
                    n_out = len(self.graph.adjacency.neighbor_ids(node))
                    if n_out == 0:
                        continue
                    step_mass = mass / n_out
                for nbr in self.graph.adjacency.neighbor_ids(node):
                    nbr = int(nbr)
                    if nbr in info and info[nbr].distance < depth:
                        continue  # already reached by a shorter path
                    next_frontier[nbr] = next_frontier.get(nbr, 0.0) + step_mass
            for node, mass in next_frontier.items():
                if node not in info:
                    info[node] = PathInfo(depth, mass)
            frontier = {
                node: mass
                for node, mass in next_frontier.items()
                if info[node].distance == depth
            }
            if not frontier:
                break
        self._cache[source] = info
        return info

    # ------------------------------------------------------------------ #
    # stage 2: closeness readout
    # ------------------------------------------------------------------ #

    def closeness(self, node_a: int, node_b: int) -> float:
        """clos(a, b) per Eq 3; 0 when unreachable within max_depth."""
        if node_a == node_b:
            return 0.0
        pinfo = self.paths_from(node_a).get(node_b)
        if pinfo is None:
            return 0.0
        return pinfo.closeness

    def distance(self, node_a: int, node_b: int) -> Optional[int]:
        """Shortest-path hop distance, or None when out of reach."""
        if node_a == node_b:
            return 0
        pinfo = self.paths_from(node_a).get(node_b)
        return None if pinfo is None else pinfo.distance

    def close_terms(self, node_id: int, top_n: int = 10) -> List[Tuple[int, float]]:
        """Top close *term* nodes of one node — the Table I readout."""
        if top_n < 1:
            raise GraphError("top_n must be >= 1")
        reached = self.paths_from(node_id)
        scored = [
            (other, pinfo.closeness)
            for other, pinfo in reached.items()
            if other != node_id
            and self.graph.node(other).kind is NodeKind.TERM
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:top_n]

    def close_terms_in_class(
        self, node_id: int, node_class, top_n: int = 10
    ) -> List[Tuple[int, float]]:
        """Top close terms restricted to one field (Table I's per-field view)."""
        reached = self.paths_from(node_id)
        scored = [
            (other, pinfo.closeness)
            for other, pinfo in reached.items()
            if other != node_id and self.graph.class_of(other) == node_class
            and self.graph.node(other).kind is NodeKind.TERM
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:top_n]

    def precompute(self, node_ids: List[int]) -> None:
        """Offline stage: warm the cache for a term vocabulary."""
        for node_id in node_ids:
            self.paths_from(node_id)

    def cache_size(self) -> int:
        """Number of cached source nodes."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all cached path searches."""
        self._cache.clear()
