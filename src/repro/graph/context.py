"""Contextual preference vector (Definition 6 + Section IV-B.2).

The paper's key enhancement over the individual random walk: instead of
restarting on the starting node itself, restart on its *context nodes* —
the surrounding tuples and terms.  For a term like "uncertain" that is the
papers containing it; for an author the paper's example is richer:
"Starting random walk process from this author's primary conference and
research areas, we may encounter other valuable findings."

To cover both cases with one mechanism, the context is the **decayed
multi-hop neighborhood** of the starting node: a hop-limited, degree-
normalized diffusion assigns each nearby node a mass, and the preference
weight of a context node combines that mass with the paper's two weight
ingredients,

    w(v_c) = 1/|F_i| · freq-mass(v_c, t0) · idf(v_c)

where ``|F_i|`` is the cardinality of the context node's field (so scarce
fields like conferences weigh heavily — the "primary conference" effect),
and ``idf`` is the inverse of the node's global prominence.  Only the top
related nodes of each field are kept ("we fetch some top related nodes
from each field").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.nodes import NodeClass, NodeKind
from repro.graph.tat import TATGraph


@dataclass(frozen=True)
class ContextEntry:
    """One context node with the breakdown of its weight."""

    node_id: int
    field: NodeClass
    field_weight: float
    node_weight: float

    @property
    def weight(self) -> float:
        """Combined field x node weight of this context node."""
        return self.field_weight * self.node_weight


class ContextualPreference:
    """Builds contextual preference vectors over a :class:`TATGraph`.

    Parameters
    ----------
    graph:
        The TAT graph.
    hops:
        Radius of the context neighborhood.  2 covers the Figure 4 case
        (term → papers → sibling terms/conferences); 4 (default) also
        reaches an author's conferences and research-area terms through
        the ``writes`` relay tuples.
    hop_decay:
        Mass multiplier per extra hop; nearer context dominates.
    top_per_field:
        How many top-weighted context nodes to keep per field.
    include_self:
        Weight share (0..1) reserved for the starting node itself.  The
        paper restarts purely on context; a small self weight keeps the
        walk anchored when the context is tiny.  Default 0 = pure context.
    frontier_cap:
        Per-hop expansion pruning: only the *frontier_cap* highest-mass
        frontier nodes are expanded into the next ring ("we fetch some
        top related nodes" — the low-mass tail cannot reach the
        per-field top lists anyway).  ``None`` disables pruning.
    """

    def __init__(
        self,
        graph: TATGraph,
        hops: int = 4,
        hop_decay: float = 0.5,
        top_per_field: int = 10,
        include_self: float = 0.0,
        frontier_cap: Optional[int] = 200,
    ) -> None:
        if hops < 1:
            raise GraphError("hops must be >= 1")
        if not 0.0 < hop_decay <= 1.0:
            raise GraphError("hop_decay must be in (0,1]")
        if top_per_field < 1:
            raise GraphError("top_per_field must be >= 1")
        if not 0.0 <= include_self < 1.0:
            raise GraphError("include_self must be in [0,1)")
        if frontier_cap is not None and frontier_cap < 1:
            raise GraphError("frontier_cap must be >= 1 or None")
        self.graph = graph
        self.hops = hops
        self.hop_decay = hop_decay
        self.top_per_field = top_per_field
        self.include_self = include_self
        self.frontier_cap = frontier_cap

    # ------------------------------------------------------------------ #
    # weight ingredients
    # ------------------------------------------------------------------ #

    def field_cardinality(self, field: NodeClass) -> int:
        """|F_i|: vocabulary size for term fields, row count for tables."""
        if isinstance(field, tuple):
            return max(1, self.graph.index.field_cardinality(field))
        table = self.graph.database.table(field)
        return max(1, len(table))

    def node_idf(self, node_id: int) -> float:
        """Inverse global-occurrence weight of one node.

        Term nodes use the index idf; tuple nodes use a degree-based
        analogue (a hub tuple connected to everything is as uninformative
        as a stopword).
        """
        node = self.graph.node(node_id)
        if node.kind is NodeKind.TERM:
            return self.graph.index.idf(node.payload)
        degree = self.graph.adjacency.degree(node_id)
        return math.log(1.0 + self.graph.n_nodes / (1.0 + degree))

    # ------------------------------------------------------------------ #
    # context extraction
    # ------------------------------------------------------------------ #

    def neighborhood_mass(self, node_id: int) -> Dict[int, float]:
        """Decayed degree-normalized diffusion mass around *node_id*.

        This is ``freq-mass(v_c, t0)``: hop-1 nodes receive the normalized
        TAT edge weight (the paper's co-occurrence frequency), farther
        nodes receive diffused, decayed mass.  The starting node itself is
        excluded.
        """
        mass: Dict[int, float] = {}
        frontier: Dict[int, float] = {node_id: 1.0}
        visited = {node_id}
        for _hop in range(self.hops):
            expand = frontier
            if (
                self.frontier_cap is not None
                and len(expand) > self.frontier_cap
            ):
                top = sorted(
                    expand.items(), key=lambda item: (-item[1], item[0])
                )[: self.frontier_cap]
                expand = dict(top)
            next_frontier: Dict[int, float] = {}
            for node, node_mass in expand.items():
                neighbors = list(self.graph.neighbors(node))
                total_weight = sum(w for _n, w in neighbors)
                if total_weight <= 0:
                    continue
                for nbr, weight in neighbors:
                    if nbr in visited:
                        continue
                    next_frontier[nbr] = next_frontier.get(nbr, 0.0) + (
                        node_mass * weight / total_weight
                    )
            if not next_frontier:
                break
            for node, node_mass in next_frontier.items():
                mass[node] = mass.get(node, 0.0) + node_mass
                visited.add(node)
            # decay before the next ring
            frontier = {
                node: node_mass * self.hop_decay
                for node, node_mass in next_frontier.items()
            }
        return mass

    def context_entries(self, node_id: int) -> List[ContextEntry]:
        """The weighted context of *node_id*, top-k per field."""
        by_field: Dict[NodeClass, List[ContextEntry]] = {}
        for ctx_id, ctx_mass in self.neighborhood_mass(node_id).items():
            field = self.graph.class_of(ctx_id)
            entry = ContextEntry(
                node_id=ctx_id,
                field=field,
                field_weight=1.0 / self.field_cardinality(field),
                node_weight=ctx_mass * self.node_idf(ctx_id),
            )
            by_field.setdefault(field, []).append(entry)
        kept: List[ContextEntry] = []
        for entries in by_field.values():
            entries.sort(key=lambda e: (-e.weight, e.node_id))
            kept.extend(entries[: self.top_per_field])
        return kept

    def preference_weights(self, node_id: int) -> Dict[int, float]:
        """Sparse preference vector {node_id: weight} for the walk restart.

        Falls back to the indicator vector when the node has no context
        (isolated node) so the walk stays well defined.
        """
        entries = self.context_entries(node_id)
        if not entries:
            return {node_id: 1.0}
        weights: Dict[int, float] = {}
        for entry in entries:
            weights[entry.node_id] = weights.get(entry.node_id, 0.0) + entry.weight
        total = sum(weights.values())
        if total <= 0:
            return {node_id: 1.0}
        if self.include_self > 0:
            scale = (1.0 - self.include_self) / total
            weights = {nid: w * scale for nid, w in weights.items()}
            weights[node_id] = weights.get(node_id, 0.0) + self.include_self
        return weights
