"""Contextual preference vector (Definition 6 + Section IV-B.2).

The paper's key enhancement over the individual random walk: instead of
restarting on the starting node itself, restart on its *context nodes* —
the surrounding tuples and terms.  For a term like "uncertain" that is the
papers containing it; for an author the paper's example is richer:
"Starting random walk process from this author's primary conference and
research areas, we may encounter other valuable findings."

To cover both cases with one mechanism, the context is the **decayed
multi-hop neighborhood** of the starting node: a hop-limited, degree-
normalized diffusion assigns each nearby node a mass, and the preference
weight of a context node combines that mass with the paper's two weight
ingredients,

    w(v_c) = 1/|F_i| · freq-mass(v_c, t0) · idf(v_c)

where ``|F_i|`` is the cardinality of the context node's field (so scarce
fields like conferences weigh heavily — the "primary conference" effect),
and ``idf`` is the inverse of the node's global prominence.  Only the top
related nodes of each field are kept ("we fetch some top related nodes
from each field").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.nodes import NodeClass
from repro.graph.tat import TATGraph


@dataclass(frozen=True)
class ContextEntry:
    """One context node with the breakdown of its weight."""

    node_id: int
    field: NodeClass
    field_weight: float
    node_weight: float

    @property
    def weight(self) -> float:
        """Combined field x node weight of this context node."""
        return self.field_weight * self.node_weight


class ContextualPreference:
    """Builds contextual preference vectors over a :class:`TATGraph`.

    Parameters
    ----------
    graph:
        The TAT graph.
    hops:
        Radius of the context neighborhood.  2 covers the Figure 4 case
        (term → papers → sibling terms/conferences); 4 (default) also
        reaches an author's conferences and research-area terms through
        the ``writes`` relay tuples.
    hop_decay:
        Mass multiplier per extra hop; nearer context dominates.
    top_per_field:
        How many top-weighted context nodes to keep per field.
    include_self:
        Weight share (0..1) reserved for the starting node itself.  The
        paper restarts purely on context; a small self weight keeps the
        walk anchored when the context is tiny.  Default 0 = pure context.
    frontier_cap:
        Per-hop expansion pruning: only the *frontier_cap* highest-mass
        frontier nodes are expanded into the next ring ("we fetch some
        top related nodes" — the low-mass tail cannot reach the
        per-field top lists anyway).  ``None`` disables pruning.
    """

    def __init__(
        self,
        graph: TATGraph,
        hops: int = 4,
        hop_decay: float = 0.5,
        top_per_field: int = 10,
        include_self: float = 0.0,
        frontier_cap: Optional[int] = 200,
    ) -> None:
        if hops < 1:
            raise GraphError("hops must be >= 1")
        if not 0.0 < hop_decay <= 1.0:
            raise GraphError("hop_decay must be in (0,1]")
        if top_per_field < 1:
            raise GraphError("top_per_field must be >= 1")
        if not 0.0 <= include_self < 1.0:
            raise GraphError("include_self must be in [0,1)")
        if frontier_cap is not None and frontier_cap < 1:
            raise GraphError("frontier_cap must be >= 1 or None")
        self.graph = graph
        self.hops = hops
        self.hop_decay = hop_decay
        self.top_per_field = top_per_field
        self.include_self = include_self
        self.frontier_cap = frontier_cap
        self._row_sums: Optional[np.ndarray] = None
        self._classes: Optional[List[NodeClass]] = None
        self._class_index: Optional[np.ndarray] = None
        self._class_weight: Optional[np.ndarray] = None
        self._idf_table: Optional[np.ndarray] = None

    def _weighted_degrees(self) -> np.ndarray:
        """Per-node total edge weight (the diffusion normalizer), cached."""
        if self._row_sums is None:
            matrix = self.graph.adjacency.matrix
            self._row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        return self._row_sums

    def _node_tables(self) -> Tuple[List[NodeClass], np.ndarray, np.ndarray, np.ndarray]:
        """Per-node lookup tables (class index, 1/|F_i|, idf), cached.

        These are the scalar :meth:`field_cardinality` / :meth:`node_idf`
        ingredients materialized once per graph so context weighting runs
        as array arithmetic instead of per-node python calls.
        """
        if self._class_index is None:
            registry = self.graph.registry
            n = self.graph.n_nodes
            classes = list(registry.classes())
            class_index = np.zeros(n, dtype=np.int64)
            for idx, node_class in enumerate(classes):
                for node_id in registry.ids_of_class(node_class):
                    class_index[node_id] = idx
            class_weight = np.array(
                [1.0 / self.field_cardinality(c) for c in classes]
            )
            idf = np.log(
                1.0 + self.graph.n_nodes / (1.0 + self._weighted_degrees())
            )
            for term_id in registry.term_ids():
                idf[term_id] = self.graph.index.idf(
                    registry.node_of(term_id).payload
                )
            self._classes = classes
            self._class_index = class_index
            self._class_weight = class_weight
            self._idf_table = idf
        return self._classes, self._class_index, self._class_weight, self._idf_table

    # ------------------------------------------------------------------ #
    # weight ingredients
    # ------------------------------------------------------------------ #

    def field_cardinality(self, field: NodeClass) -> int:
        """|F_i|: vocabulary size for term fields, row count for tables."""
        if isinstance(field, tuple):
            return max(1, self.graph.index.field_cardinality(field))
        table = self.graph.database.table(field)
        return max(1, len(table))

    def node_idf(self, node_id: int) -> float:
        """Inverse global-occurrence weight of one node.

        Term nodes use the index idf; tuple nodes use a degree-based
        analogue (a hub tuple connected to everything is as uninformative
        as a stopword).
        """
        _classes, _cidx, _cw, idf = self._node_tables()
        return float(idf[node_id])

    # ------------------------------------------------------------------ #
    # context extraction
    # ------------------------------------------------------------------ #

    def neighborhood_mass(self, node_id: int) -> Dict[int, float]:
        """Decayed degree-normalized diffusion mass around *node_id*.

        This is ``freq-mass(v_c, t0)``: hop-1 nodes receive the normalized
        TAT edge weight (the paper's co-occurrence frequency), farther
        nodes receive diffused, decayed mass.  The starting node itself is
        excluded.
        """
        ids, vals = self._diffuse(node_id)
        return {int(ctx_id): float(v) for ctx_id, v in zip(ids, vals)}

    def _diffuse(self, node_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized diffusion: (reached ids, accumulated mass) arrays."""
        matrix = self.graph.adjacency.matrix
        n = matrix.shape[0]
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        totals = self._weighted_degrees()

        visited = np.zeros(n, dtype=bool)
        visited[node_id] = True
        mass = np.zeros(n)
        reached: List[np.ndarray] = []
        frontier_ids = np.array([node_id], dtype=np.int64)
        frontier_mass = np.array([1.0])
        for _hop in range(self.hops):
            if (
                self.frontier_cap is not None
                and frontier_ids.size > self.frontier_cap
            ):
                # top frontier_cap by (-mass, node_id), as in the paper's
                # "fetch some top related nodes" pruning
                order = np.lexsort((frontier_ids, -frontier_mass))
                keep = order[: self.frontier_cap]
                frontier_ids = frontier_ids[keep]
                frontier_mass = frontier_mass[keep]
            expandable = totals[frontier_ids] > 0
            src_ids = frontier_ids[expandable]
            src_mass = frontier_mass[expandable]
            if not src_ids.size:
                break
            starts = indptr[src_ids]
            counts = indptr[src_ids + 1] - starts
            nnz = int(counts.sum())
            if not nnz:
                break
            # gather every (frontier node -> neighbor) CSR slot at once
            slot = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            ) + np.arange(nnz)
            neighbors = indices[slot]
            contrib = (
                np.repeat(src_mass / totals[src_ids], counts) * data[slot]
            )
            fresh = ~visited[neighbors]
            neighbors = neighbors[fresh]
            contrib = contrib[fresh]
            if not neighbors.size:
                break
            hop_mass = np.bincount(neighbors, weights=contrib, minlength=n)
            new_ids = np.unique(neighbors)
            mass[new_ids] += hop_mass[new_ids]
            visited[new_ids] = True
            reached.append(new_ids)
            # decay before the next ring
            frontier_ids = new_ids
            frontier_mass = hop_mass[new_ids] * self.hop_decay
        if not reached:
            return np.empty(0, dtype=np.int64), np.empty(0)
        all_ids = np.concatenate(reached)
        return all_ids, mass[all_ids]

    def context_entries(self, node_id: int) -> List[ContextEntry]:
        """The weighted context of *node_id*, top-k per field."""
        ids, mass = self._diffuse(node_id)
        if not ids.size:
            return []
        classes, class_index, class_weight, idf = self._node_tables()
        fields = class_index[ids]
        node_weight = mass * idf[ids]
        weight = class_weight[fields] * node_weight
        # group by field, rank by (-weight, node_id) inside each group,
        # keep the top_per_field head of every group
        order = np.lexsort((ids, -weight, fields))
        sorted_fields = fields[order]
        group_starts = np.flatnonzero(
            np.concatenate(([True], sorted_fields[1:] != sorted_fields[:-1]))
        )
        group_sizes = np.diff(np.concatenate((group_starts, [order.size])))
        rank = np.arange(order.size) - np.repeat(group_starts, group_sizes)
        kept = order[rank < self.top_per_field]
        return [
            ContextEntry(
                node_id=int(ids[i]),
                field=classes[fields[i]],
                field_weight=float(class_weight[fields[i]]),
                node_weight=float(node_weight[i]),
            )
            for i in kept
        ]

    def preference_weights(self, node_id: int) -> Dict[int, float]:
        """Sparse preference vector {node_id: weight} for the walk restart.

        Falls back to the indicator vector when the node has no context
        (isolated node) so the walk stays well defined.
        """
        entries = self.context_entries(node_id)
        if not entries:
            return {node_id: 1.0}
        weights: Dict[int, float] = {}
        for entry in entries:
            weights[entry.node_id] = weights.get(entry.node_id, 0.0) + entry.weight
        total = sum(weights.values())
        if total <= 0:
            return {node_id: 1.0}
        if self.include_self > 0:
            scale = (1.0 - self.include_self) / total
            weights = {nid: w * scale for nid, w in weights.items()}
            weights[node_id] = weights.get(node_id, 0.0) + self.include_self
        return weights

    def preference_matrix(self, node_ids: Sequence[int]) -> np.ndarray:
        """Normalized preference vectors for many nodes, one per column.

        This is the batch input of
        :meth:`~repro.graph.randomwalk.RandomWalkEngine.walk_many`: the
        offline stage builds one matrix per vocabulary batch and solves
        all the contextual walks in it at once.
        """
        n = self.graph.adjacency.matrix.shape[0]
        out = np.zeros((n, len(node_ids)))
        for col, node_id in enumerate(node_ids):
            weights = self.preference_weights(node_id)
            ids = np.fromiter(weights.keys(), dtype=np.int64, count=len(weights))
            vals = np.fromiter(weights.values(), dtype=np.float64, count=len(weights))
            total = vals.sum()
            if total <= 0:
                raise GraphError(f"node {node_id} has an empty context")
            out[ids, col] = vals / total
        return out
