"""Random walk with restart over the TAT graph (Eq 1 of the paper).

Solves ``p = λ·T·p + (1−λ)·r`` by power iteration on the column-stochastic
transition matrix ``T``.  With ``λ < 1`` the iteration is a contraction, so
convergence to the unique fixed point is guaranteed; the engine still
enforces an iteration budget and raises :class:`ConvergenceError` when the
budget is exhausted without reaching the tolerance, matching the
"converges or reaches predefined iteration times" stop rule of
Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy import sparse

from repro.errors import ConvergenceError, GraphError
from repro.graph.adjacency import Adjacency

#: Batch solver strategies accepted by :meth:`RandomWalkEngine.walk_many`.
WALK_METHODS = ("iterative", "direct")


@dataclass(frozen=True)
class WalkResult:
    """Converged score vector plus iteration diagnostics."""

    scores: np.ndarray
    iterations: int
    residual: float
    converged: bool


@dataclass(frozen=True)
class BatchWalkResult:
    """Converged score columns plus batch diagnostics.

    ``residual`` is the max per-column L1 residual of one application of
    Eq 1 at the returned scores — for the direct solver this is a
    *verified* a-posteriori bound, not an iteration byproduct.
    """

    scores: np.ndarray
    iterations: int
    residual: float
    converged: bool
    method: str


class RandomWalkEngine:
    """Power-iteration solver for personalized random walks.

    Parameters
    ----------
    adjacency:
        The frozen TAT adjacency.
    damping:
        λ in Eq 1 — the probability of following an edge rather than
        restarting.  The paper's standard choice is 0.85.
    tol:
        L1 convergence tolerance between successive iterates.
    max_iterations:
        Iteration budget ("predefined iteration times" in Algorithm 1).
    strict:
        When True, failing to converge raises :class:`ConvergenceError`;
        when False the best-effort vector is returned with
        ``converged=False``.
    """

    def __init__(
        self,
        adjacency: Adjacency,
        damping: float = 0.85,
        tol: float = 1e-10,
        max_iterations: int = 200,
        strict: bool = False,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise GraphError(f"damping must be in (0,1), got {damping}")
        if tol <= 0:
            raise GraphError("tol must be positive")
        if max_iterations < 1:
            raise GraphError("max_iterations must be >= 1")
        self.adjacency = adjacency
        self.damping = damping
        self.tol = tol
        self.max_iterations = max_iterations
        self.strict = strict
        self._transition = adjacency.transition_matrix()
        self._lu = None  # lazily factorized (I - λT), shared by all solves
        # Adjacency.version at capture time: the transition matrix and the
        # LU factorization stay valid exactly as long as the adjacency is
        # untouched; Adjacency.extend bumps the version and _sync refreshes.
        self._adjacency_version = adjacency.version

    def _sync(self) -> None:
        """Refresh derived artifacts if the adjacency mutated in place.

        The cached LU factorization is kept when the adjacency version is
        unchanged (edges did not move); a bumped version means the
        transition matrix moved, so both are refreshed/refactorized.
        """
        if self.adjacency.version != self._adjacency_version:
            self._transition = self.adjacency.transition_matrix()
            self._lu = None
            self._adjacency_version = self.adjacency.version

    # ------------------------------------------------------------------ #
    # preference vectors
    # ------------------------------------------------------------------ #

    def uniform_preference(self) -> np.ndarray:
        """Global walk: uniform restart distribution (PageRank)."""
        n = self.adjacency.n_nodes
        if n == 0:
            raise GraphError("empty graph")
        return np.full(n, 1.0 / n)

    def indicator_preference(self, node_id: int) -> np.ndarray:
        """Individual walk: restart mass concentrated on one node."""
        n = self.adjacency.n_nodes
        if not 0 <= node_id < n:
            raise GraphError(f"node id {node_id} out of range")
        r = np.zeros(n)
        r[node_id] = 1.0
        return r

    def weighted_preference(self, weights: Dict[int, float]) -> np.ndarray:
        """Restart distribution from a sparse {node_id: weight} dict."""
        n = self.adjacency.n_nodes
        r = np.zeros(n)
        for node_id, w in weights.items():
            if not 0 <= node_id < n:
                raise GraphError(f"node id {node_id} out of range")
            if w < 0:
                raise GraphError(f"negative preference weight on {node_id}")
            r[node_id] = w
        total = r.sum()
        if total <= 0:
            raise GraphError("preference vector has no mass")
        return r / total

    # ------------------------------------------------------------------ #
    # solver
    # ------------------------------------------------------------------ #

    def walk(self, preference: np.ndarray) -> WalkResult:
        """Run the walk to the fixed point of Eq 1.

        The preference vector is normalized internally; the returned score
        vector sums to 1.
        """
        n = self.adjacency.n_nodes
        if preference.shape != (n,):
            raise GraphError(
                f"preference has shape {preference.shape}, expected ({n},)"
            )
        total = preference.sum()
        if total <= 0:
            raise GraphError("preference vector has no mass")
        r = preference / total

        self._sync()
        p = r.copy()
        residual = np.inf
        for iteration in range(1, self.max_iterations + 1):
            p_next = self.damping * (self._transition @ p) + (1 - self.damping) * r
            # Mass lost through zero-degree columns is redirected to the
            # restart distribution (dangling-node fix).
            leaked = 1.0 - p_next.sum()
            if leaked > 1e-15:
                p_next += leaked * r
            residual = float(np.abs(p_next - p).sum())
            p = p_next
            if residual < self.tol:
                return WalkResult(p, iteration, residual, True)
        if self.strict:
            raise ConvergenceError(
                f"random walk did not converge in {self.max_iterations} "
                f"iterations (residual {residual:.3e})"
            )
        return WalkResult(p, self.max_iterations, residual, False)

    def global_walk(self) -> WalkResult:
        """Convenience: PageRank-style global walk."""
        return self.walk(self.uniform_preference())

    def individual_walk(self, node_id: int) -> WalkResult:
        """Convenience: individual walk biased to one node (basic model)."""
        return self.walk(self.indicator_preference(node_id))

    def walk_many(
        self,
        preferences: "np.ndarray",
        method: str = "iterative",
        seeds: Optional["np.ndarray"] = None,
    ) -> "np.ndarray":
        """Solve Eq 1 for many preference vectors simultaneously.

        *preferences* has one preference vector per **column**; the
        returned array holds the converged score vectors in the same
        columns.  See :meth:`walk_many_result` for the choice of solver
        and the diagnostics; this wrapper keeps the array-in/array-out
        surface the callers and benchmarks use.
        """
        return self.walk_many_result(
            preferences, method=method, seeds=seeds
        ).scores

    def walk_many_result(
        self,
        preferences: "np.ndarray",
        method: str = "iterative",
        seeds: Optional["np.ndarray"] = None,
    ) -> BatchWalkResult:
        """Batched Eq-1 solve with diagnostics.

        ``method="iterative"`` runs the power iteration with one sparse
        matmul per step for the whole batch; columns are *frozen* the
        iteration they individually converge, so each column's result is
        identical to what :meth:`walk` returns for it and converged
        columns stop costing flops.

        ``method="direct"`` exploits that the fixed point of Eq 1 (with
        the dangling-mass fix) is the normalized solution of the linear
        system ``(I − λT)q = r``: one sparse LU factorization — cached on
        the engine and amortized over the whole vocabulary — turns every
        batch into per-column triangular solves.  Columns are solved one
        at a time on purpose: SuperLU's blocked multi-RHS path produces
        bitwise-different low-order bits depending on how columns are
        batched together, and solving per column makes every result
        independent of batch composition — a full-vocabulary build and a
        delta recompute of a handful of terms produce identical bits.
        The reported residual is verified a posteriori with one Eq-1
        application.

        ``seeds`` (iterative only) warm-starts the power iteration from
        the given columns — e.g. the previous epoch's converged vectors
        after a small corpus delta — instead of from the restart
        distribution.  Iteration counts drop with seed quality, but the
        iterate *path* differs from a cold start, so warm-started results
        match cold-started ones only up to the convergence tolerance; the
        exactness-critical offline path uses ``direct`` instead.  The
        direct solver ignores seeds (it is already exact).
        """
        if method not in WALK_METHODS:
            raise GraphError(
                f"walk method must be one of {WALK_METHODS}, got {method!r}"
            )
        n = self.adjacency.n_nodes
        if preferences.ndim != 2 or preferences.shape[0] != n:
            raise GraphError(
                f"preferences must be ({n}, batch), got {preferences.shape}"
            )
        sums = preferences.sum(axis=0)
        if np.any(sums <= 0):
            raise GraphError("every preference column needs positive mass")
        r = preferences / sums
        if seeds is not None:
            if seeds.shape != r.shape:
                raise GraphError(
                    f"seeds must match preferences shape {r.shape}, "
                    f"got {seeds.shape}"
                )
            seed_sums = seeds.sum(axis=0)
            if np.any(seed_sums <= 0):
                raise GraphError("every seed column needs positive mass")
            seeds = seeds / seed_sums
        self._sync()
        if method == "direct":
            return self._solve_direct(r)
        return self._iterate_batch(r, seeds=seeds)

    def _iterate_batch(
        self, r: "np.ndarray", seeds: Optional["np.ndarray"] = None
    ) -> BatchWalkResult:
        """Power iteration with per-column convergence freezing."""
        p = r.copy() if seeds is None else seeds.copy()
        n_cols = r.shape[1]
        residuals = np.full(n_cols, np.inf)
        active = np.arange(n_cols)
        iterations = 0
        while active.size and iterations < self.max_iterations:
            iterations += 1
            pa = p[:, active]
            ra = r[:, active]
            p_next = self.damping * (self._transition @ pa) + (1 - self.damping) * ra
            # Mass lost through zero-degree columns is redirected to the
            # restart distribution (dangling-node fix).
            leaked = 1.0 - p_next.sum(axis=0)
            mask = leaked > 1e-15
            if mask.any():
                p_next[:, mask] += ra[:, mask] * leaked[mask]
            res = np.abs(p_next - pa).sum(axis=0)
            p[:, active] = p_next
            residuals[active] = res
            active = active[res >= self.tol]
        converged = not active.size
        if not converged and self.strict:
            raise ConvergenceError(
                f"batched walk did not converge in {self.max_iterations} "
                "iterations"
            )
        return BatchWalkResult(
            scores=p,
            iterations=iterations,
            residual=float(residuals.max()) if n_cols else 0.0,
            converged=converged,
            method="iterative",
        )

    def _factorization(self):
        """Cached sparse LU of ``I − λT`` (one factorization per engine)."""
        if self._lu is None:
            from scipy.sparse.linalg import splu

            n = self.adjacency.n_nodes
            system = (
                sparse.identity(n, format="csc")
                - self.damping * self._transition.tocsc()
            ).tocsc()
            self._lu = splu(system)
        return self._lu

    def _solve_direct(self, r: "np.ndarray") -> BatchWalkResult:
        """Exact fixed point via the cached LU factorization.

        With the dangling fix the fixed point satisfies
        ``p = λTp + (λ·leak + 1 − λ)r`` and has unit mass, i.e. it is the
        L1-normalized solution of ``(I − λT)q = r``.

        Each column is solved (and normalized) individually: SuperLU's
        multi-RHS solve is bitwise sensitive to batch composition, and the
        per-column form guarantees reproducible bits regardless of how
        callers group their preference vectors — the property the delta
        ingest path relies on for base/delta bit-identity.
        """
        lu = self._factorization()
        columns = []
        for j in range(r.shape[1]):
            q = lu.solve(np.ascontiguousarray(r[:, j]))
            total = q.sum()
            if total <= 0:  # pragma: no cover - M-matrix inverse >= 0
                raise ConvergenceError("direct walk solve produced no mass")
            columns.append(q / total)
        p = (
            np.column_stack(columns)
            if columns
            else np.empty_like(r)
        )
        # verify: one Eq-1 application must leave p (numerically) fixed
        step = self.damping * (self._transition @ p) + (1 - self.damping) * r
        leaked = 1.0 - step.sum(axis=0)
        mask = leaked > 1e-15
        if mask.any():
            step[:, mask] += r[:, mask] * leaked[mask]
        residual = float(np.abs(step - p).sum(axis=0).max()) if p.size else 0.0
        converged = residual < self.tol
        if not converged and self.strict:
            raise ConvergenceError(
                f"direct walk solve residual {residual:.3e} above tol"
            )
        return BatchWalkResult(
            scores=p,
            iterations=0,
            residual=residual,
            converged=converged,
            method="direct",
        )
