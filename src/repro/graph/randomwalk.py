"""Random walk with restart over the TAT graph (Eq 1 of the paper).

Solves ``p = λ·T·p + (1−λ)·r`` by power iteration on the column-stochastic
transition matrix ``T``.  With ``λ < 1`` the iteration is a contraction, so
convergence to the unique fixed point is guaranteed; the engine still
enforces an iteration budget and raises :class:`ConvergenceError` when the
budget is exhausted without reaching the tolerance, matching the
"converges or reaches predefined iteration times" stop rule of
Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConvergenceError, GraphError
from repro.graph.adjacency import Adjacency


@dataclass(frozen=True)
class WalkResult:
    """Converged score vector plus iteration diagnostics."""

    scores: np.ndarray
    iterations: int
    residual: float
    converged: bool


class RandomWalkEngine:
    """Power-iteration solver for personalized random walks.

    Parameters
    ----------
    adjacency:
        The frozen TAT adjacency.
    damping:
        λ in Eq 1 — the probability of following an edge rather than
        restarting.  The paper's standard choice is 0.85.
    tol:
        L1 convergence tolerance between successive iterates.
    max_iterations:
        Iteration budget ("predefined iteration times" in Algorithm 1).
    strict:
        When True, failing to converge raises :class:`ConvergenceError`;
        when False the best-effort vector is returned with
        ``converged=False``.
    """

    def __init__(
        self,
        adjacency: Adjacency,
        damping: float = 0.85,
        tol: float = 1e-10,
        max_iterations: int = 200,
        strict: bool = False,
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise GraphError(f"damping must be in (0,1), got {damping}")
        if tol <= 0:
            raise GraphError("tol must be positive")
        if max_iterations < 1:
            raise GraphError("max_iterations must be >= 1")
        self.adjacency = adjacency
        self.damping = damping
        self.tol = tol
        self.max_iterations = max_iterations
        self.strict = strict
        self._transition = adjacency.transition_matrix()

    # ------------------------------------------------------------------ #
    # preference vectors
    # ------------------------------------------------------------------ #

    def uniform_preference(self) -> np.ndarray:
        """Global walk: uniform restart distribution (PageRank)."""
        n = self.adjacency.n_nodes
        if n == 0:
            raise GraphError("empty graph")
        return np.full(n, 1.0 / n)

    def indicator_preference(self, node_id: int) -> np.ndarray:
        """Individual walk: restart mass concentrated on one node."""
        n = self.adjacency.n_nodes
        if not 0 <= node_id < n:
            raise GraphError(f"node id {node_id} out of range")
        r = np.zeros(n)
        r[node_id] = 1.0
        return r

    def weighted_preference(self, weights: Dict[int, float]) -> np.ndarray:
        """Restart distribution from a sparse {node_id: weight} dict."""
        n = self.adjacency.n_nodes
        r = np.zeros(n)
        for node_id, w in weights.items():
            if not 0 <= node_id < n:
                raise GraphError(f"node id {node_id} out of range")
            if w < 0:
                raise GraphError(f"negative preference weight on {node_id}")
            r[node_id] = w
        total = r.sum()
        if total <= 0:
            raise GraphError("preference vector has no mass")
        return r / total

    # ------------------------------------------------------------------ #
    # solver
    # ------------------------------------------------------------------ #

    def walk(self, preference: np.ndarray) -> WalkResult:
        """Run the walk to the fixed point of Eq 1.

        The preference vector is normalized internally; the returned score
        vector sums to 1.
        """
        n = self.adjacency.n_nodes
        if preference.shape != (n,):
            raise GraphError(
                f"preference has shape {preference.shape}, expected ({n},)"
            )
        total = preference.sum()
        if total <= 0:
            raise GraphError("preference vector has no mass")
        r = preference / total

        p = r.copy()
        residual = np.inf
        for iteration in range(1, self.max_iterations + 1):
            p_next = self.damping * (self._transition @ p) + (1 - self.damping) * r
            # Mass lost through zero-degree columns is redirected to the
            # restart distribution (dangling-node fix).
            leaked = 1.0 - p_next.sum()
            if leaked > 1e-15:
                p_next += leaked * r
            residual = float(np.abs(p_next - p).sum())
            p = p_next
            if residual < self.tol:
                return WalkResult(p, iteration, residual, True)
        if self.strict:
            raise ConvergenceError(
                f"random walk did not converge in {self.max_iterations} "
                f"iterations (residual {residual:.3e})"
            )
        return WalkResult(p, self.max_iterations, residual, False)

    def global_walk(self) -> WalkResult:
        """Convenience: PageRank-style global walk."""
        return self.walk(self.uniform_preference())

    def individual_walk(self, node_id: int) -> WalkResult:
        """Convenience: individual walk biased to one node (basic model)."""
        return self.walk(self.indicator_preference(node_id))

    def walk_many(self, preferences: "np.ndarray") -> "np.ndarray":
        """Solve Eq 1 for many preference vectors simultaneously.

        *preferences* has one preference vector per **column**; the
        returned array holds the converged score vectors in the same
        columns.  One sparse matmul advances every walk at once, which is
        how the offline stage amortizes the whole-vocabulary extraction.

        Convergence is checked per column (max column L1 residual).
        """
        n = self.adjacency.n_nodes
        if preferences.ndim != 2 or preferences.shape[0] != n:
            raise GraphError(
                f"preferences must be ({n}, batch), got {preferences.shape}"
            )
        sums = preferences.sum(axis=0)
        if np.any(sums <= 0):
            raise GraphError("every preference column needs positive mass")
        r = preferences / sums

        p = r.copy()
        for _iteration in range(self.max_iterations):
            p_next = self.damping * (self._transition @ p) + (1 - self.damping) * r
            leaked = 1.0 - p_next.sum(axis=0)
            mask = leaked > 1e-15
            if mask.any():
                p_next[:, mask] += r[:, mask] * leaked[mask]
            residual = float(np.abs(p_next - p).sum(axis=0).max())
            p = p_next
            if residual < self.tol:
                return p
        if self.strict:
            raise ConvergenceError(
                f"batched walk did not converge in {self.max_iterations} "
                "iterations"
            )
        return p
