"""Weighted sparse adjacency for the TAT graph.

Edges are accumulated in COO form during construction and frozen into a
``scipy.sparse`` CSR matrix plus its column-stochastic transition matrix,
which is what the random-walk engine iterates (Eq 1 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np
from scipy import sparse

from repro.errors import GraphError


class AdjacencyBuilder:
    """Accumulates undirected weighted edges, then freezes to CSR."""

    def __init__(self) -> None:
        self._weights: Dict[Tuple[int, int], float] = {}

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the undirected edge u—v."""
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        if u == v:
            raise GraphError(f"self loop on node {u} not allowed")
        key = (u, v) if u < v else (v, u)
        self._weights[key] = self._weights.get(key, 0.0) + weight

    def __len__(self) -> int:
        return len(self._weights)

    def freeze(self, n_nodes: int) -> "Adjacency":
        """Build the symmetric CSR adjacency over *n_nodes* nodes."""
        if not self._weights:
            matrix = sparse.csr_matrix((n_nodes, n_nodes), dtype=np.float64)
            return Adjacency(matrix)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for (u, v), w in self._weights.items():
            if u >= n_nodes or v >= n_nodes:
                raise GraphError(
                    f"edge ({u},{v}) out of range for {n_nodes} nodes"
                )
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((w, w))
        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(n_nodes, n_nodes), dtype=np.float64
        )
        return Adjacency(matrix)


class Adjacency:
    """Frozen symmetric weighted adjacency with cached transition matrix."""

    def __init__(self, matrix: sparse.csr_matrix) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise GraphError(f"adjacency must be square, got {matrix.shape}")
        self.matrix = matrix
        self._transition: sparse.csr_matrix = None

    @property
    def n_nodes(self) -> int:
        """Number of nodes (matrix dimension)."""
        return self.matrix.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.matrix.nnz) // 2

    def degree(self, node_id: int) -> float:
        """Weighted degree of one node."""
        start, end = self.matrix.indptr[node_id], self.matrix.indptr[node_id + 1]
        return float(self.matrix.data[start:end].sum())

    def neighbors(self, node_id: int) -> Iterator[Tuple[int, float]]:
        """(neighbor_id, weight) pairs of one node."""
        start, end = self.matrix.indptr[node_id], self.matrix.indptr[node_id + 1]
        for idx in range(start, end):
            yield int(self.matrix.indices[idx]), float(self.matrix.data[idx])

    def neighbor_ids(self, node_id: int) -> np.ndarray:
        """Neighbor ids of one node as an array."""
        start, end = self.matrix.indptr[node_id], self.matrix.indptr[node_id + 1]
        return self.matrix.indices[start:end]

    def transition_matrix(self) -> sparse.csr_matrix:
        """Column-stochastic transition matrix ``T`` with ``T[i,j] =
        w(j,i)/deg(j)``: a walker at node j moves to neighbor i with
        probability proportional to the edge weight.

        Columns of isolated nodes are all-zero; the walk engine handles the
        leaked mass by renormalizing against the preference vector (the
        standard dangling-node treatment).
        """
        if self._transition is None:
            degrees = np.asarray(self.matrix.sum(axis=0)).ravel()
            inv = np.divide(
                1.0,
                degrees,
                out=np.zeros_like(degrees),
                where=degrees > 0,
            )
            # Column-normalize: scale column j by 1/deg(j).
            self._transition = (self.matrix @ sparse.diags(inv)).tocsr()
        return self._transition
