"""Weighted sparse adjacency for the TAT graph.

Edges are accumulated in COO form during construction and frozen into a
``scipy.sparse`` CSR matrix plus its column-stochastic transition matrix,
which is what the random-walk engine iterates (Eq 1 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.errors import GraphError


class AdjacencyBuilder:
    """Accumulates undirected weighted edges, then freezes to CSR."""

    def __init__(self) -> None:
        self._weights: Dict[Tuple[int, int], float] = {}

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or accumulate onto) the undirected edge u—v."""
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        if u == v:
            raise GraphError(f"self loop on node {u} not allowed")
        key = (u, v) if u < v else (v, u)
        self._weights[key] = self._weights.get(key, 0.0) + weight

    def __len__(self) -> int:
        return len(self._weights)

    def freeze(self, n_nodes: int) -> "Adjacency":
        """Build the symmetric CSR adjacency over *n_nodes* nodes."""
        if not self._weights:
            matrix = sparse.csr_matrix((n_nodes, n_nodes), dtype=np.float64)
            return Adjacency(matrix)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for (u, v), w in self._weights.items():
            if u >= n_nodes or v >= n_nodes:
                raise GraphError(
                    f"edge ({u},{v}) out of range for {n_nodes} nodes"
                )
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((w, w))
        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(n_nodes, n_nodes), dtype=np.float64
        )
        return Adjacency(matrix)


class Adjacency:
    """Symmetric weighted adjacency with cached transition matrix.

    Normally frozen after construction, but :meth:`extend` supports the
    incremental-ingest path: the matrix can grow in place (new nodes, new
    edges, rescaled existing edges).  Every in-place mutation bumps
    :attr:`version` so holders of derived artifacts (the transition
    matrix, an LU factorization) can detect staleness and refresh.
    """

    def __init__(self, matrix: sparse.csr_matrix) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise GraphError(f"adjacency must be square, got {matrix.shape}")
        self.matrix = matrix
        #: Monotonic mutation counter; bumped by :meth:`extend`.
        self.version = 0
        self._transition: sparse.csr_matrix = None

    @property
    def n_nodes(self) -> int:
        """Number of nodes (matrix dimension)."""
        return self.matrix.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.matrix.nnz) // 2

    def degree(self, node_id: int) -> float:
        """Weighted degree of one node."""
        start, end = self.matrix.indptr[node_id], self.matrix.indptr[node_id + 1]
        return float(self.matrix.data[start:end].sum())

    def neighbors(self, node_id: int) -> Iterator[Tuple[int, float]]:
        """(neighbor_id, weight) pairs of one node."""
        start, end = self.matrix.indptr[node_id], self.matrix.indptr[node_id + 1]
        for idx in range(start, end):
            yield int(self.matrix.indices[idx]), float(self.matrix.data[idx])

    def neighbor_ids(self, node_id: int) -> np.ndarray:
        """Neighbor ids of one node as an array."""
        start, end = self.matrix.indptr[node_id], self.matrix.indptr[node_id + 1]
        return self.matrix.indices[start:end]

    def transition_matrix(self) -> sparse.csr_matrix:
        """Column-stochastic transition matrix ``T`` with ``T[i,j] =
        w(j,i)/deg(j)``: a walker at node j moves to neighbor i with
        probability proportional to the edge weight.

        Columns of isolated nodes are all-zero; the walk engine handles the
        leaked mass by renormalizing against the preference vector (the
        standard dangling-node treatment).
        """
        if self._transition is None:
            degrees = np.asarray(self.matrix.sum(axis=0)).ravel()
            inv = np.divide(
                1.0,
                degrees,
                out=np.zeros_like(degrees),
                where=degrees > 0,
            )
            # Column-normalize: scale column j by 1/deg(j).
            self._transition = (self.matrix @ sparse.diags(inv)).tocsr()
        return self._transition

    def extend(
        self,
        n_nodes: int,
        new_edges: Iterable[Tuple[int, int, float]],
        scale: Optional[np.ndarray] = None,
    ) -> None:
        """Grow the adjacency in place (the incremental-ingest primitive).

        Parameters
        ----------
        n_nodes:
            The new matrix dimension; must be >= the current one.  Ids in
            ``[old_n, n_nodes)`` are the appended nodes.
        new_edges:
            Undirected ``(u, v, weight)`` edges to add.  Duplicates (among
            themselves or with existing edges) accumulate, matching
            :meth:`AdjacencyBuilder.add_edge` semantics.
        scale:
            Optional per-node positive factor array of length ``old_n``.
            Every *existing* entry ``(u, v)`` is multiplied by
            ``scale[u] * scale[v]`` before the new edges land — this is how
            the TAT graph applies a global idf reweight (term nodes carry
            the idf ratio, tuple nodes carry 1.0) without a rebuild.

        Bumps :attr:`version` and invalidates the cached transition matrix.
        """
        old_n = self.matrix.shape[0]
        if n_nodes < old_n:
            raise GraphError(
                f"cannot shrink adjacency from {old_n} to {n_nodes} nodes"
            )
        if scale is not None:
            scale = np.asarray(scale, dtype=np.float64)
            if scale.shape != (old_n,):
                raise GraphError(
                    f"scale must have shape ({old_n},), got {scale.shape}"
                )
            if np.any(scale <= 0):
                raise GraphError("scale factors must be positive")
        coo = self.matrix.tocoo()
        data = coo.data
        if scale is not None:
            data = data * scale[coo.row] * scale[coo.col]
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for u, v, w in new_edges:
            if w <= 0:
                raise GraphError(f"edge weight must be positive, got {w}")
            if u == v:
                raise GraphError(f"self loop on node {u} not allowed")
            if not (0 <= u < n_nodes and 0 <= v < n_nodes):
                raise GraphError(
                    f"edge ({u},{v}) out of range for {n_nodes} nodes"
                )
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((w, w))
        all_rows = np.concatenate([coo.row, np.array(rows, dtype=np.int64)])
        all_cols = np.concatenate([coo.col, np.array(cols, dtype=np.int64)])
        all_vals = np.concatenate([data, np.array(vals, dtype=np.float64)])
        # csr_matrix sums duplicate (row, col) entries, which is exactly
        # the accumulate-on-add semantics of AdjacencyBuilder.
        self.matrix = sparse.csr_matrix(
            (all_vals, (all_rows, all_cols)),
            shape=(n_nodes, n_nodes),
            dtype=np.float64,
        )
        self.version += 1
        self._transition = None
