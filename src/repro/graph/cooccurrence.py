"""Frequent co-occurrence similarity — the paper's baseline [15].

Two terms are similar in proportion to how often they appear together in
the same tuple.  The paper uses this as the comparison point for both the
similar-term case study (Table II) and the "Co-occurrence reformulation"
baseline of Figure 5: the reformulation pipeline is identical, only this
similarity replaces the contextual random walk.

Scores are normalized per source term so they can be plugged into the HMM
emission matrix exactly like walk scores.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.similarity import SimilarNode
from repro.graph.tat import TATGraph
from repro.index.stats import CorpusStats


class CooccurrenceSimilarity:
    """Tuple-level co-occurrence counts as a similarity measure.

    Implements the same interface as
    :class:`~repro.graph.similarity.SimilarityExtractor` (``similar_nodes``,
    ``similarity``, ``similar_terms``) so the two are interchangeable in
    the reformulation pipeline.
    """

    def __init__(self, graph: TATGraph) -> None:
        self.graph = graph
        self.stats = CorpusStats(graph.index)
        self._cache: Dict[int, Dict[int, float]] = {}

    # ------------------------------------------------------------------ #
    # core
    # ------------------------------------------------------------------ #

    def _scores_from(self, node_id: int) -> Dict[int, float]:
        """Normalized same-class co-occurrence scores from one term node."""
        cached = self._cache.get(node_id)
        if cached is not None:
            return cached
        node = self.graph.node(node_id)
        if node.text is None:
            raise GraphError(
                "co-occurrence similarity is defined on term nodes only"
            )
        counts = self.stats.cooccurrence_counts(node.payload)
        node_class = self.graph.class_of(node_id)
        raw: Dict[int, float] = {}
        for other_term, count in counts.items():
            if other_term.field != node_class:
                continue
            other_id = self.graph.term_node_id(other_term)
            raw[other_id] = float(count)
        total = sum(raw.values())
        scores = (
            {nid: c / total for nid, c in raw.items()} if total > 0 else {}
        )
        self._cache[node_id] = scores
        return scores

    def similar_nodes(self, node_id: int, top_n: int = 10) -> List[SimilarNode]:
        """Top-*top_n* co-occurring same-class term nodes."""
        if top_n < 1:
            raise GraphError("top_n must be >= 1")
        scores = self._scores_from(node_id)
        candidates = [
            SimilarNode(other, score) for other, score in scores.items()
        ]
        candidates.sort(key=lambda s: (-s.score, s.node_id))
        return candidates[:top_n]

    def similarity(self, node_a: int, node_b: int) -> float:
        """Normalized co-occurrence of b in a's list (0 if absent)."""
        return self._scores_from(node_a).get(node_b, 0.0)

    def similar_terms(self, text: str, top_n: int = 10) -> List[Tuple[str, float]]:
        """Similar terms for a raw keyword, as (text, score)."""
        node_id = self.graph.resolve_text_one(text)
        result = []
        for sim in self.similar_nodes(node_id, top_n):
            node = self.graph.node(sim.node_id)
            result.append((node.text or str(node), sim.score))
        return result

    def precompute(self, node_ids: List[int]) -> None:
        """Warm the per-node score cache."""
        for node_id in node_ids:
            self._scores_from(node_id)

    def cache_size(self) -> int:
        """Number of cached source nodes."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all cached scores."""
        self._cache.clear()
