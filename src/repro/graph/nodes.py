"""Node identity for the term-augmented tuple graph.

The TAT graph mixes two node kinds (Definition 5):

* **tuple nodes**, one per database tuple, identified by ``(table, pk)``;
* **term nodes**, one per field term, identified by ``(table, field, text)``.

Random walks and sparse matrices want dense integer ids, so the
:class:`NodeRegistry` assigns a stable integer to every node and remembers
each node's *class* — the table for tuples, the field for terms.  Similar-
node extraction is restricted to the starting node's class (Section IV-B:
"we only extract similar nodes belonging to same classes of the initial
node").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import UnknownNodeError
from repro.index.inverted import FieldTerm
from repro.storage.database import TupleRef


class NodeKind(enum.Enum):
    """The two node families of the TAT graph."""

    TUPLE = "tuple"
    TERM = "term"


#: Class label of a node: the table name for tuples, the ``(table, field)``
#: pair for terms.  Nodes are "similar" only within one class.
NodeClass = Union[str, Tuple[str, str]]

#: Payload carried by a node.
NodePayload = Union[TupleRef, FieldTerm]


@dataclass(frozen=True)
class Node:
    """A TAT-graph node: kind plus payload."""

    kind: NodeKind
    payload: NodePayload

    @staticmethod
    def for_tuple(ref: TupleRef) -> "Node":
        """Wrap a tuple ref as a TAT node."""
        return Node(NodeKind.TUPLE, ref)

    @staticmethod
    def for_term(term: FieldTerm) -> "Node":
        """Wrap a field term as a TAT node."""
        return Node(NodeKind.TERM, term)

    @property
    def node_class(self) -> NodeClass:
        """Table name for tuples, (table, field) for terms."""
        if self.kind is NodeKind.TUPLE:
            table, _pk = self.payload  # type: ignore[misc]
            return table
        return self.payload.field  # type: ignore[union-attr]

    @property
    def text(self) -> Optional[str]:
        """The term text for term nodes, None for tuple nodes."""
        if self.kind is NodeKind.TERM:
            return self.payload.text  # type: ignore[union-attr]
        return None

    def __str__(self) -> str:
        if self.kind is NodeKind.TUPLE:
            table, pk = self.payload  # type: ignore[misc]
            return f"{table}#{pk}"
        return str(self.payload)


class NodeRegistry:
    """Bidirectional mapping between :class:`Node` objects and dense ids."""

    def __init__(self) -> None:
        self._nodes: List[Node] = []
        self._ids: Dict[Node, int] = {}
        self._by_class: Dict[NodeClass, List[int]] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._ids

    def add(self, node: Node) -> int:
        """Register *node* (idempotent); returns its integer id."""
        existing = self._ids.get(node)
        if existing is not None:
            return existing
        node_id = len(self._nodes)
        self._nodes.append(node)
        self._ids[node] = node_id
        self._by_class.setdefault(node.node_class, []).append(node_id)
        return node_id

    def id_of(self, node: Node) -> int:
        """Integer id of a registered node (raises if absent)."""
        try:
            return self._ids[node]
        except KeyError:
            raise UnknownNodeError(f"node not in graph: {node}") from None

    def get_id(self, node: Node) -> Optional[int]:
        """Integer id of a node, or None if unregistered."""
        return self._ids.get(node)

    def node_of(self, node_id: int) -> Node:
        """Node behind an integer id (raises if out of range)."""
        try:
            return self._nodes[node_id]
        except IndexError:
            raise UnknownNodeError(f"no node with id {node_id}") from None

    def ids_of_class(self, node_class: NodeClass) -> List[int]:
        """All node ids sharing one class label."""
        return self._by_class.get(node_class, [])

    def classes(self) -> Iterator[NodeClass]:
        """Iterate all distinct node classes."""
        yield from self._by_class

    def nodes(self) -> Iterator[Node]:
        """Iterate nodes in insertion (id) order."""
        yield from self._nodes

    def term_ids(self) -> Iterator[int]:
        """Iterate ids of term nodes."""
        for node_id, node in enumerate(self._nodes):
            if node.kind is NodeKind.TERM:
                yield node_id

    def tuple_ids(self) -> Iterator[int]:
        """Iterate ids of tuple nodes."""
        for node_id, node in enumerate(self._nodes):
            if node.kind is NodeKind.TUPLE:
                yield node_id
