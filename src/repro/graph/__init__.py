"""TAT graph, random walks, similarity and closeness extraction."""

from repro.graph.adjacency import Adjacency, AdjacencyBuilder
from repro.graph.closeness import ClosenessExtractor, PathInfo
from repro.graph.context import ContextEntry, ContextualPreference
from repro.graph.cooccurrence import CooccurrenceSimilarity
from repro.graph.nodes import Node, NodeClass, NodeKind, NodeRegistry
from repro.graph.randomwalk import RandomWalkEngine, WalkResult
from repro.graph.similarity import SimilarityExtractor, SimilarNode
from repro.graph.tat import TATGraph
from repro.graph.viz import EgoNetwork, ego_network, render_text, to_dot

__all__ = [
    "Adjacency",
    "AdjacencyBuilder",
    "ClosenessExtractor",
    "PathInfo",
    "ContextEntry",
    "ContextualPreference",
    "CooccurrenceSimilarity",
    "Node",
    "NodeClass",
    "NodeKind",
    "NodeRegistry",
    "RandomWalkEngine",
    "WalkResult",
    "SimilarityExtractor",
    "SimilarNode",
    "TATGraph",
    "EgoNetwork",
    "ego_network",
    "render_text",
    "to_dot",
]
