"""TAT-graph visualization helpers (DOT export and text ego-networks).

The paper explains its method with ego-network pictures (Figures 3-4:
a term, its tuples, their venues/authors, and the similar term found
across them).  These helpers regenerate such pictures from any corpus:

* :func:`ego_network` — the radius-limited neighborhood of a node;
* :func:`to_dot` — Graphviz DOT text (no graphviz dependency; paste into
  any renderer);
* :func:`render_text` — indented text tree for terminals/tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graph.nodes import NodeKind
from repro.graph.tat import TATGraph


@dataclass(frozen=True)
class EgoNetwork:
    """A radius-limited neighborhood: nodes with hop distance + edges."""

    center: int
    distances: Dict[int, int]
    edges: Tuple[Tuple[int, int], ...]

    def __len__(self) -> int:
        return len(self.distances)


def ego_network(
    graph: TATGraph,
    node_id: int,
    radius: int = 2,
    max_nodes: int = 40,
) -> EgoNetwork:
    """BFS neighborhood of *node_id*, keeping the strongest-edge nodes.

    When a ring would exceed *max_nodes*, the highest-weight edges win —
    the picture stays readable on hub-heavy graphs.
    """
    if radius < 1:
        raise GraphError("radius must be >= 1")
    if max_nodes < 2:
        raise GraphError("max_nodes must be >= 2")
    distances: Dict[int, int] = {node_id: 0}
    frontier = [node_id]
    for depth in range(1, radius + 1):
        candidates: Dict[int, float] = {}
        for node in frontier:
            for nbr, weight in graph.neighbors(node):
                if nbr not in distances:
                    candidates[nbr] = max(candidates.get(nbr, 0.0), weight)
        room = max_nodes - len(distances)
        if room <= 0:
            break
        ranked = sorted(
            candidates.items(), key=lambda item: (-item[1], item[0])
        )[:room]
        frontier = []
        for nbr, _weight in ranked:
            distances[nbr] = depth
            frontier.append(nbr)
        if not frontier:
            break

    kept: Set[int] = set(distances)
    edges: List[Tuple[int, int]] = []
    for node in sorted(kept):
        for nbr, _weight in graph.neighbors(node):
            if nbr in kept and node < nbr:
                edges.append((node, nbr))
    return EgoNetwork(
        center=node_id, distances=distances, edges=tuple(edges)
    )


def _label(graph: TATGraph, node_id: int) -> str:
    node = graph.node(node_id)
    if node.kind is NodeKind.TERM:
        return node.text or str(node)
    table, pk = node.payload
    return f"{table}#{pk}"


def to_dot(graph: TATGraph, ego: EgoNetwork) -> str:
    """Render an ego network as Graphviz DOT text.

    Term nodes are boxes, tuple nodes ellipses (the paper's Figure 3
    convention); the center node is doubled.
    """
    lines = ["graph tat {", "  layout=neato;", "  overlap=false;"]
    for node_id in sorted(ego.distances):
        node = graph.node(node_id)
        shape = "box" if node.kind is NodeKind.TERM else "ellipse"
        peripheries = 2 if node_id == ego.center else 1
        label = _label(graph, node_id).replace('"', r"\"")
        lines.append(
            f'  n{node_id} [label="{label}", shape={shape}, '
            f"peripheries={peripheries}];"
        )
    for a, b in ego.edges:
        lines.append(f"  n{a} -- n{b};")
    lines.append("}")
    return "\n".join(lines)


def render_text(graph: TATGraph, ego: EgoNetwork) -> str:
    """Indented text rendering of an ego network, ring by ring."""
    by_ring: Dict[int, List[int]] = {}
    for node_id, distance in ego.distances.items():
        by_ring.setdefault(distance, []).append(node_id)
    lines = []
    for distance in sorted(by_ring):
        for node_id in sorted(by_ring[distance]):
            marker = "*" if node_id == ego.center else " "
            lines.append(
                f"{'  ' * distance}{marker}{_label(graph, node_id)}"
            )
    return "\n".join(lines)
