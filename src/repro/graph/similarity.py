"""Term similarity extraction (Algorithm 1 of the paper).

Runs the contextual-preference random walk from a starting node and reads
off the converged scores of *same-class* nodes as similarity values
(Eq 2).  Also provides the basic individual-walk variant as the ablation
baseline discussed around Figure 4.

Results are cached per starting node: the offline stage of the paper
precomputes the similar-term lists for the whole vocabulary, and the online
stage only reads them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.context import ContextualPreference
from repro.graph.randomwalk import BatchWalkResult, RandomWalkEngine
from repro.graph.tat import TATGraph


@dataclass(frozen=True)
class SimilarNode:
    """One extracted similar node with its walk score."""

    node_id: int
    score: float

    def labelled(self, graph: TATGraph) -> Tuple[str, float]:
        """(human-readable label, score) pair for display."""
        return (str(graph.node(self.node_id)), self.score)


class SimilarityExtractor:
    """Contextual random-walk similarity over a TAT graph.

    Parameters
    ----------
    graph:
        The TAT graph.
    engine:
        A configured :class:`RandomWalkEngine`; defaults to λ=0.85.
    preference:
        The contextual preference builder; defaults to top-10 per field.
    contextual:
        When False, falls back to the basic individual random walk
        (the paper's Figure 4 "basic model" — used by the ablation bench).
    idf_readout:
        When True (default), a term node's walk score is multiplied by its
        idf before ranking.  Part of the TAT graph's "novel weight method":
        ubiquitous filler words accumulate walk mass through sheer degree,
        and the idf factor cancels that advantage so topical terms rank
        first.  Tuple nodes are unaffected.
    """

    def __init__(
        self,
        graph: TATGraph,
        engine: Optional[RandomWalkEngine] = None,
        preference: Optional[ContextualPreference] = None,
        contextual: bool = True,
        idf_readout: bool = True,
    ) -> None:
        self.graph = graph
        self.engine = engine or RandomWalkEngine(graph.adjacency)
        self.preference = preference or ContextualPreference(graph)
        self.contextual = contextual
        self.idf_readout = idf_readout
        self._cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # core
    # ------------------------------------------------------------------ #

    def walk_scores(self, node_id: int) -> np.ndarray:
        """Converged walk vector for *node_id* (cached)."""
        cached = self._cache.get(node_id)
        if cached is not None:
            return cached
        if self.contextual:
            weights = self.preference.preference_weights(node_id)
            r = self.engine.weighted_preference(weights)
        else:
            r = self.engine.indicator_preference(node_id)
        scores = self.engine.walk(r).scores
        self._cache[node_id] = scores
        return scores

    def similar_nodes(self, node_id: int, top_n: int = 10) -> List[SimilarNode]:
        """Top-*top_n* same-class nodes by walk score, excluding the start.

        This is exactly Algorithm 1 followed by the same-class filter of
        Section IV-B.1.
        """
        if top_n < 1:
            raise GraphError("top_n must be >= 1")
        scores = self.walk_scores(node_id)
        candidates = [
            SimilarNode(other, self._readout(other, float(scores[other])))
            for other in self.graph.same_class_ids(node_id)
            if other != node_id and scores[other] > 0.0
        ]
        candidates.sort(key=lambda s: (-s.score, s.node_id))
        return candidates[:top_n]

    def similarity(self, node_a: int, node_b: int) -> float:
        """sim(a, b) per Eq 2: b's converged score in a's biased walk."""
        scores = self.walk_scores(node_a)
        return self._readout(node_b, float(scores[node_b]))

    def _readout(self, node_id: int, score: float) -> float:
        """Apply the idf readout weight to one walk score."""
        if not self.idf_readout or score <= 0.0:
            return score
        node = self.graph.node(node_id)
        if node.text is None:
            return score
        return score * self.graph.index.idf(node.payload)

    # ------------------------------------------------------------------ #
    # text-level convenience
    # ------------------------------------------------------------------ #

    def similar_terms(self, text: str, top_n: int = 10) -> List[Tuple[str, float]]:
        """Similar terms for a raw keyword, as (text, score) pairs."""
        node_id = self.graph.resolve_text_one(text)
        result = []
        for sim in self.similar_nodes(node_id, top_n):
            node = self.graph.node(sim.node_id)
            result.append((node.text or str(node), sim.score))
        return result

    def batch_walk(
        self, node_ids: List[int], method: str = "iterative"
    ) -> Optional[BatchWalkResult]:
        """Solve one batch of walks, fill the cache, return diagnostics.

        Preference vectors are built as columns (contextual or indicator)
        and solved together — one
        :meth:`~repro.graph.randomwalk.RandomWalkEngine.walk_many_result`
        call per batch.  ``method="direct"`` reuses the engine's cached
        sparse LU factorization, which is how whole-vocabulary offline
        extraction amortizes the solve.  Returns ``None`` when every
        requested node is already cached.
        """
        pending = [nid for nid in node_ids if nid not in self._cache]
        if not pending:
            return None
        if self.contextual:
            preferences = self.preference.preference_matrix(pending)
        else:
            n = self.graph.adjacency.n_nodes
            preferences = np.zeros((n, len(pending)))
            for col, node_id in enumerate(pending):
                preferences[:, col] = self.engine.indicator_preference(node_id)
        result = self.engine.walk_many_result(preferences, method=method)
        for col, node_id in enumerate(pending):
            self._cache[node_id] = result.scores[:, col].copy()
        return result

    def precompute(
        self,
        node_ids: List[int],
        batch_size: int = 64,
        method: str = "iterative",
    ) -> None:
        """Offline stage: warm the cache for a vocabulary of nodes.

        Walks are solved in batches — one batched solve per *batch_size*
        nodes (see :meth:`batch_walk`) — which is substantially faster
        than node-by-node extraction.
        """
        pending = [nid for nid in node_ids if nid not in self._cache]
        for start in range(0, len(pending), batch_size):
            self.batch_walk(pending[start:start + batch_size], method=method)

    def cache_size(self) -> int:
        """Number of cached walk vectors."""
        return len(self._cache)

    def evict(self, node_id: int) -> None:
        """Drop one cached walk (offline batch memory bound)."""
        self._cache.pop(node_id, None)

    def clear_cache(self) -> None:
        """Drop all cached walks."""
        self._cache.clear()
