"""Figure 5 — Precision@N of the three reformulation methods.

Ten mixed-format queries; each method returns its top-10 reformulations;
the judge panel (simulated evaluators backed by the latent topic ground
truth) marks each as relevant or not; we report average Precision@{1,3,5,
7,10}.

The shape to reproduce: TAT-based > Rank-based > Co-occurrence-based at
every rank position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.metrics import precision_curve
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    format_table,
)

METHOD_LABELS = {
    "tat": "TAT-based",
    "rank": "Rank-based",
    "cooccurrence": "Co-occurrence",
}

RANK_POSITIONS = (1, 3, 5, 7, 10)


@dataclass(frozen=True)
class PrecisionReport:
    """Figure 5 data: method -> {rank position -> mean precision}.

    ``judge_kappa`` reports the simulated panel's Fleiss' kappa over
    every judged suggestion — the agreement figure a human-evaluator
    study would disclose.
    """

    curves: Dict[str, Dict[int, float]]
    n_queries: int
    judge_kappa: float = 1.0
    judge_raw_agreement: float = 1.0
    #: per-method per-query Precision@10 vectors (bootstrap sample units)
    per_query_p10: Optional[Dict[str, List[float]]] = None

    def winner_at(self, n: int) -> str:
        """Method with the highest precision at rank n."""
        return max(self.curves, key=lambda m: self.curves[m][n])

    def significance_vs(self, treatment: str, baseline: str, seed: int = 0):
        """Paired bootstrap of P@10: treatment vs baseline."""
        from repro.eval.significance import paired_bootstrap

        if not self.per_query_p10:
            raise ValueError("per-query precision vectors were not kept")
        return paired_bootstrap(
            self.per_query_p10[treatment],
            self.per_query_p10[baseline],
            seed=seed,
        )


def run(
    context: Optional[ExperimentContext] = None,
    n_queries: int = 10,
    k: int = 10,
    methods: Sequence[str] = ("tat", "rank", "cooccurrence"),
) -> PrecisionReport:
    """Precision@N of the three methods (Figure 5)."""
    context = context or build_context()
    queries = context.workloads.mixed_queries(n_queries)
    curves: Dict[str, Dict[int, float]] = {}
    per_query_p10: Dict[str, List[float]] = {}
    judged_pairs = []
    for method in methods:
        reformulator = context.reformulator(method)
        verdict_lists: List[List[bool]] = []
        for wq in queries:
            keywords = list(wq.keywords)
            ranked = reformulator.reformulate(keywords, k=k)
            verdict_lists.append(
                context.judges.judge_ranking(keywords, ranked)
            )
            judged_pairs.extend(
                (tuple(keywords), suggestion) for suggestion in ranked
            )
        curves[method] = precision_curve(verdict_lists, RANK_POSITIONS)

        from repro.eval.significance import per_query_precision

        per_query_p10[method] = per_query_precision(verdict_lists, 10)

    from repro.eval.agreement import panel_agreement

    agreement = panel_agreement(context.judges, judged_pairs)
    return PrecisionReport(
        curves=curves,
        n_queries=len(queries),
        judge_kappa=agreement.fleiss_kappa,
        judge_raw_agreement=agreement.raw_agreement,
        per_query_p10=per_query_p10,
    )


def main() -> None:
    """Print the Figure 5 table."""
    report = run()
    print(
        f"Figure 5 reproduction — Precision@N over {report.n_queries} "
        "mixed queries\n"
    )
    headers = ["method"] + [f"P@{n}" for n in RANK_POSITIONS]
    rows = [
        [METHOD_LABELS[m]] + [report.curves[m][n] for n in RANK_POSITIONS]
        for m in report.curves
    ]
    print(format_table(headers, rows))
    print(f"\nwinner at P@10: {METHOD_LABELS[report.winner_at(10)]}")
    print(
        f"judge panel agreement: raw {report.judge_raw_agreement:.3f}, "
        f"Fleiss' kappa {report.judge_kappa:.3f}"
    )


if __name__ == "__main__":
    main()
