"""Feedback-loop experiment (future-work extension, quantitative).

Trains the :class:`~repro.extensions.feedback.FeedbackAdaptor` on a
simulated interaction log and measures what the paper's future work asks
about: does interaction data improve the suggestions?

Protocol:

1. a baseline pipeline answers a training workload; a simulated searcher
   accepts/rejects suggestions conditioned on ground-truth relevance;
2. the adaptor ingests the log;
3. a held-out evaluation workload is answered by the adapted pipeline and
   the baseline; both are scored with Precision@k by the judge panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.data.sessions import SessionSimulator
from repro.eval.metrics import precision_curve
from repro.extensions.feedback import FeedbackAdaptor
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    format_table,
)


@dataclass(frozen=True)
class FeedbackLoopReport:
    """Precision with/without feedback, on recurring and held-out queries.

    Feedback helps where query logs help in practice: on *recurring*
    queries (the ones the log was collected from).  Held-out queries are
    reported as the generalization check — at our corpus scale the
    held-out delta hovers around zero.
    """

    recurring_baseline: float
    recurring_adapted: float
    heldout_baseline: float
    heldout_adapted: float
    training_interactions: int
    training_accepts: int
    boost_count: int
    k: int


def run(
    context: Optional[ExperimentContext] = None,
    n_train_queries: int = 20,
    n_eval_queries: int = 10,
    k: int = 10,
    learning_rate: float = 1.0,
    seed: int = 99,
) -> FeedbackLoopReport:
    """Train on a simulated log; measure precision with/without it."""
    context = context or build_context()
    baseline = context.reformulator("tat")

    adaptor = FeedbackAdaptor(
        context.graph,
        similarity=baseline.similarity,
        closeness=baseline.closeness,
        learning_rate=learning_rate,
    )
    adapted = Reformulator(
        context.graph,
        ReformulatorConfig(
            method="tat", n_candidates=baseline.config.n_candidates
        ),
        similarity=adaptor,
        closeness=adaptor,
    )

    # 1-2. simulate a training log over the *adapted* pipeline and learn.
    train_queries = context.workloads.mixed_queries(n_train_queries)
    simulator = SessionSimulator(
        baseline, context.judges, inspect_top=5, seed=seed
    )
    log = simulator.run(train_queries)
    # Train on explicit signals only: an accept is a positive; a skip is
    # NOT a rejection (the user may simply have clicked something else).
    # Explicit negatives come from irrelevant suggestions the user
    # inspected and passed over.
    for interaction in log.interactions:
        if interaction.accepted:
            adaptor.record(
                list(interaction.original),
                interaction.suggestion,
                accepted=True,
            )
        elif not interaction.relevant:
            adaptor.record(
                list(interaction.original),
                interaction.suggestion,
                accepted=False,
            )

    # 3. evaluate on the recurring (training) workload and on held-out
    # queries drawn beyond it.
    heldout_queries = context.workloads.mixed_queries(
        n_train_queries + n_eval_queries
    )[n_train_queries:]

    def precision_of(reformulator, queries) -> float:
        verdicts = []
        for wq in queries:
            keywords = list(wq.keywords)
            ranked = reformulator.reformulate(keywords, k=k)
            verdicts.append(context.judges.judge_ranking(keywords, ranked))
        return precision_curve(verdicts, (k,))[k]

    return FeedbackLoopReport(
        recurring_baseline=precision_of(baseline, train_queries),
        recurring_adapted=precision_of(adapted, train_queries),
        heldout_baseline=precision_of(baseline, heldout_queries),
        heldout_adapted=precision_of(adapted, heldout_queries),
        training_interactions=len(log),
        training_accepts=len(log.accepted),
        boost_count=adaptor.boost_count,
        k=k,
    )


def main() -> None:
    """Print the feedback-loop report."""
    report = run()
    print("Feedback-loop experiment\n")
    print(format_table(
        ["measure", "value"],
        [
            [f"recurring baseline P@{report.k}", report.recurring_baseline],
            [f"recurring adapted P@{report.k}", report.recurring_adapted],
            [f"held-out baseline P@{report.k}", report.heldout_baseline],
            [f"held-out adapted P@{report.k}", report.heldout_adapted],
            ["training interactions", report.training_interactions],
            ["accepted", report.training_accepts],
            ["learned boosts", report.boost_count],
        ],
    ))


if __name__ == "__main__":
    main()
