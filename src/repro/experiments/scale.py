"""Offline-stage scalability: cost vs corpus size.

The paper reports offline extraction over 1.3M papers without detailing
its cost; any adopter needs the growth curves.  This experiment sweeps
corpus sizes and measures, per size:

* inverted-index build time;
* TAT-graph build time;
* mean per-term contextual-walk similarity extraction time;
* mean per-term closeness extraction time;
* mean per-term batched store-build time (the production offline path:
  batched walks through the cached direct solver + bulk closeness rows);
* graph size (nodes/edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.dblp_synth import SynthConfig, synthesize_dblp
from repro.eval.timing import measure
from repro.graph.closeness import ClosenessExtractor
from repro.graph.similarity import SimilarityExtractor
from repro.graph.tat import TATGraph
from repro.index.inverted import InvertedIndex
from repro.offline import OfflinePrecomputer
from repro.experiments.common import format_table


@dataclass(frozen=True)
class ScalePoint:
    """Measurements at one corpus size."""

    n_papers: int
    nodes: int
    edges: int
    index_seconds: float
    graph_seconds: float
    similarity_per_term: float
    closeness_per_term: float
    store_per_term: float
    store_terms: int


@dataclass(frozen=True)
class ScaleReport:
    points: Tuple[ScalePoint, ...]

    def by_papers(self) -> Dict[int, ScalePoint]:
        """Scale points keyed by corpus paper count."""
        return {p.n_papers: p for p in self.points}


def run(
    paper_counts: Sequence[int] = (300, 600, 1200, 2400),
    seed: int = 7,
    terms_sampled: int = 20,
) -> ScaleReport:
    """Offline-stage cost across corpus sizes."""
    points: List[ScalePoint] = []
    for n_papers in paper_counts:
        config = SynthConfig(
            n_authors=max(20, n_papers // 4),
            n_papers=n_papers,
            n_conferences=max(4, n_papers // 50),
            seed=seed,
        )
        corpus = synthesize_dblp(config)
        database = corpus.database

        index_seconds, index = measure(
            lambda db=database: InvertedIndex(db).build()
        )
        graph_seconds, graph = measure(
            lambda db=database, ix=index: TATGraph(db, ix)
        )

        title = ("papers", "title")
        term_ids = [
            graph.term_node_id(t)
            for t in sorted(graph.index.terms(), key=str)
            if t.field == title
        ][:terms_sampled]

        similarity = SimilarityExtractor(graph)
        sim_seconds, _ = measure(
            lambda: [similarity.similar_nodes(t, 15) for t in term_ids]
        )
        closeness = ClosenessExtractor(graph)
        clos_seconds, _ = measure(
            lambda: [closeness.close_terms(t, 15) for t in term_ids]
        )

        precomputer = OfflinePrecomputer(graph, n_similar=15)
        store_seconds, store = measure(
            lambda: precomputer.build_store(
                fields=[title], batch_size=128, walk_method="direct"
            )
        )

        stats = graph.stats()
        points.append(ScalePoint(
            n_papers=n_papers,
            nodes=stats["nodes"],
            edges=stats["edges"],
            index_seconds=index_seconds,
            graph_seconds=graph_seconds,
            similarity_per_term=sim_seconds / max(1, len(term_ids)),
            closeness_per_term=clos_seconds / max(1, len(term_ids)),
            store_per_term=store_seconds / max(1, len(store)),
            store_terms=len(store),
        ))
    return ScaleReport(points=tuple(points))


def main() -> None:
    """Print the scalability table."""
    report = run()
    print("Offline-stage scalability\n")
    rows = [
        [
            p.n_papers,
            p.nodes,
            p.edges,
            p.index_seconds * 1000,
            p.graph_seconds * 1000,
            p.similarity_per_term * 1000,
            p.closeness_per_term * 1000,
            p.store_per_term * 1000,
        ]
        for p in report.points
    ]
    print(format_table(
        [
            "papers", "nodes", "edges", "index ms", "graph ms",
            "sim/term ms", "clos/term ms", "store/term ms",
        ],
        rows,
    ))


if __name__ == "__main__":
    main()
