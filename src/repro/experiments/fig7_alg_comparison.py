"""Figure 7 — run time of Algorithm 2 vs Algorithm 3 by query length.

400 sampled queries with lengths 1..8 (author names, title words,
conference names).  Both algorithms decode the same HMMs; we report the
average per-length wall time of each.

The shape to reproduce: Algorithm 3 (Viterbi + A*) beats the extended
top-k Viterbi (Algorithm 2) across lengths, with a growing gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.astar import astar_topk
from repro.core.viterbi import viterbi_topk
from repro.eval.timing import TimingStats, grouped_timings
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    format_table,
)


@dataclass(frozen=True)
class AlgComparisonReport:
    """Figure 7 data: per query length, mean seconds of each algorithm."""

    alg2_by_length: Dict[int, TimingStats]
    alg3_by_length: Dict[int, TimingStats]
    k: int
    n_queries: int

    def speedup_at(self, length: int) -> float:
        """Alg2/Alg3 mean-time ratio at one query length."""
        return (
            self.alg2_by_length[length].mean
            / max(1e-12, self.alg3_by_length[length].mean)
        )


def run(
    context: Optional[ExperimentContext] = None,
    n_queries: int = 80,
    max_len: int = 8,
    k: int = 10,
) -> AlgComparisonReport:
    """Alg 2 vs Alg 3 decode times by query length (Figure 7)."""
    context = context or build_context()
    workload = context.workloads.length_varied_queries(
        count=n_queries, min_len=1, max_len=max_len
    )
    reformulator = context.reformulator("tat")
    # Build every HMM up front: Figure 7 times the decoding algorithms,
    # not candidate extraction (which is shared by both).
    hmms = [
        (len(wq.keywords), reformulator.build_hmm(list(wq.keywords)))
        for wq in workload
    ]
    alg2 = grouped_timings(
        hmms, key=lambda lh: lh[0], run=lambda lh: viterbi_topk(lh[1], k)
    )
    alg3 = grouped_timings(
        hmms, key=lambda lh: lh[0], run=lambda lh: astar_topk(lh[1], k)
    )
    return AlgComparisonReport(
        alg2_by_length=alg2,
        alg3_by_length=alg3,
        k=k,
        n_queries=len(workload),
    )


def main() -> None:
    """Print the Figure 7 table."""
    report = run()
    print(
        f"Figure 7 reproduction — Alg 2 vs Alg 3 run time "
        f"(k={report.k}, {report.n_queries} queries)\n"
    )
    rows = []
    for length in sorted(report.alg2_by_length):
        rows.append([
            length,
            report.alg2_by_length[length].mean * 1000,
            report.alg3_by_length[length].mean * 1000,
            report.speedup_at(length),
        ])
    print(format_table(
        ["query length", "Alg2 ms", "Alg3 ms", "speedup"], rows
    ))


if __name__ == "__main__":
    main()
