"""Shared experiment context: one corpus, all pipelines, built once.

Every table/figure driver and benchmark needs the same heavyweight
objects — the synthetic corpus, the TAT graph, the three reformulation
methods, the keyword search engine and the judge panel.  This module
builds them once per (scale, seed) and caches the result for the process
lifetime, so a full benchmark session pays the offline stage once, exactly
like the paper's offline/online split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.data.dblp_synth import SynthConfig, SynthesizedCorpus, synthesize_dblp
from repro.data.workloads import WorkloadGenerator
from repro.errors import ReproError
from repro.eval.judge import JudgePanel
from repro.eval.metrics import ResultQualityEvaluator
from repro.graph.tat import TATGraph
from repro.index.inverted import InvertedIndex
from repro.search.keyword import KeywordSearchEngine
from repro.storage.tuplegraph import TupleGraph

#: Named corpus scales.  "small" keeps unit-test latency low; "medium" is
#: the default experiment scale; "large" stresses the offline stage.
SCALES: Dict[str, SynthConfig] = {
    "small": SynthConfig(n_authors=100, n_papers=400, n_conferences=12, seed=7),
    "medium": SynthConfig(n_authors=300, n_papers=1200, n_conferences=24, seed=7),
    "large": SynthConfig(n_authors=800, n_papers=4000, n_conferences=40, seed=7),
}


@dataclass
class ExperimentContext:
    """Everything a table/figure driver needs, fully built."""

    corpus: SynthesizedCorpus
    index: InvertedIndex
    graph: TATGraph
    tuple_graph: TupleGraph
    search: KeywordSearchEngine
    workloads: WorkloadGenerator
    judges: JudgePanel
    quality: ResultQualityEvaluator
    reformulators: Dict[str, Reformulator]

    @property
    def database(self):
        """The corpus database."""
        return self.corpus.database

    def reformulator(self, method: str) -> Reformulator:
        """The pipeline for one method name."""
        try:
            return self.reformulators[method]
        except KeyError:
            raise ReproError(
                f"unknown method {method!r}; have {sorted(self.reformulators)}"
            ) from None


_CACHE: Dict[Tuple[str, int, int], ExperimentContext] = {}


def build_context(
    scale: str = "medium",
    seed: int = 7,
    n_candidates: int = 15,
    use_cache: bool = True,
) -> ExperimentContext:
    """Build (or fetch the cached) experiment context."""
    key = (scale, seed, n_candidates)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    if scale not in SCALES:
        raise ReproError(f"unknown scale {scale!r}; have {sorted(SCALES)}")
    base = SCALES[scale]
    config = SynthConfig(
        n_authors=base.n_authors,
        n_papers=base.n_papers,
        n_conferences=base.n_conferences,
        seed=seed,
    )
    corpus = synthesize_dblp(config)
    database = corpus.database
    index = InvertedIndex(database).build()
    graph = TATGraph(database, index)
    tuple_graph = TupleGraph(database)
    search = KeywordSearchEngine(tuple_graph, index)

    reformulators = {
        method: Reformulator(
            graph,
            ReformulatorConfig(method=method, n_candidates=n_candidates),
        )
        for method in ("tat", "cooccurrence", "rank")
    }
    context = ExperimentContext(
        corpus=corpus,
        index=index,
        graph=graph,
        tuple_graph=tuple_graph,
        search=search,
        workloads=WorkloadGenerator(corpus, seed=seed),
        judges=JudgePanel(corpus.ground_truth, search),
        # Table III counts results with a tighter, uncapped engine so the
        # metric differentiates methods instead of saturating at the
        # interactive engine's max_results.
        quality=ResultQualityEvaluator(
            graph,
            KeywordSearchEngine(
                tuple_graph, index, max_depth=2, max_results=2000
            ),
        ),
        reformulators=reformulators,
    )
    if use_cache:
        _CACHE[key] = context
    return context


def clear_cache() -> None:
    """Drop all cached contexts (used by tests)."""
    _CACHE.clear()


def format_table(headers, rows) -> str:
    """Minimal fixed-width table renderer for experiment stdout reports."""
    cols = [len(str(h)) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [
            f"{cell:.4g}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        rendered_rows.append(rendered)
        cols = [max(c, len(cell)) for c, cell in zip(cols, rendered)]
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, cols))
    lines = [fmt(headers), fmt(["-" * w for w in cols])]
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)
