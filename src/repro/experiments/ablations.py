"""Ablation studies on the design choices DESIGN.md calls out.

Beyond the paper's own tables/figures, these quantify:

* **preference ablation** — contextual preference vector vs the basic
  individual indicator (the Figure 4 narrative, made quantitative):
  how many ground-truth synonyms/cluster-mates does each walk variant
  recover into the top-n similar list?
* **smoothing sweep** — reformulation precision as the Eq 5-6 λ varies;
* **pruning sweep** — closeness beam width vs agreement with the exact
  (unpruned) extractor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.eval.metrics import precision_curve
from repro.graph.closeness import ClosenessExtractor
from repro.graph.similarity import SimilarityExtractor
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    format_table,
)


# --------------------------------------------------------------------- #
# preference ablation
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class PreferenceAblationReport:
    """Contextual vs individual walk, and walk vs co-occurrence.

    Two readouts:

    * ``variant_overlap`` — mean top-n overlap between the contextual and
      the individual (indicator-restart) walk.  At laptop corpus scale
      the two stationary distributions nearly coincide (the contextual
      restart is one diffusion step ahead of the indicator restart), so
      overlap close to 1 is the expected, honest result; the contextual
      bias matters on large sparse graphs.
    * ``walk_synonym_recall`` vs ``cooccurrence_synonym_recall`` — the
      differentiation the paper's Table II rests on: the fraction of
      targets whose ground-truth synonym cluster-mates appear in the
      top-n list.  Cluster-mates never share a title, so co-occurrence
      recall is structurally ~0.
    """

    variant_overlap: float
    walk_synonym_recall: float
    cooccurrence_synonym_recall: float
    n_targets: int
    top_n: int


def run_preference_ablation(
    context: Optional[ExperimentContext] = None,
    top_n: int = 20,
    max_targets: int = 40,
) -> PreferenceAblationReport:
    """Measure walk-variant overlap and synonym recall."""
    context = context or build_context()
    graph = context.graph
    model = context.corpus.topic_model

    contextual = context.reformulator("tat").similarity
    individual = SimilarityExtractor(graph, contextual=False)
    cooccurrence = context.reformulator("cooccurrence").similarity

    title_field = ("papers", "title")
    present = {
        term.text
        for term in graph.index.terms()
        if term.field == title_field
    }
    targets: List[Tuple[str, List[str]]] = []
    for word in sorted(present):
        mates = [
            other
            for other in present
            if other != word and model.are_synonyms(word, other)
        ]
        if mates:
            targets.append((word, mates))
        if len(targets) >= max_targets:
            break

    def synonym_recall(extractor) -> float:
        hits = 0
        for word, mates in targets:
            found = {t for t, _ in extractor.similar_terms(word, top_n)}
            if found & set(mates):
                hits += 1
        return hits / max(1, len(targets))

    overlaps = []
    for word, _mates in targets:
        a = {t for t, _ in contextual.similar_terms(word, top_n)}
        b = {t for t, _ in individual.similar_terms(word, top_n)}
        if a or b:
            overlaps.append(len(a & b) / max(len(a), len(b)))
    return PreferenceAblationReport(
        variant_overlap=sum(overlaps) / max(1, len(overlaps)),
        walk_synonym_recall=synonym_recall(contextual),
        cooccurrence_synonym_recall=synonym_recall(cooccurrence),
        n_targets=len(targets),
        top_n=top_n,
    )


# --------------------------------------------------------------------- #
# smoothing sweep
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class SmoothingSweepReport:
    """λ -> Precision@10 of the TAT pipeline."""

    precision_by_lambda: Dict[float, float]


def run_smoothing_sweep(
    context: Optional[ExperimentContext] = None,
    lambdas: Sequence[float] = (0.5, 0.7, 0.8, 0.9, 1.0),
    n_queries: int = 10,
    k: int = 10,
) -> SmoothingSweepReport:
    """Precision@k of the TAT pipeline across Eq 5-6 lambdas."""
    context = context or build_context()
    queries = context.workloads.mixed_queries(n_queries)
    out: Dict[float, float] = {}
    for lam in lambdas:
        reformulator = Reformulator(
            context.graph,
            ReformulatorConfig(method="tat", smoothing_lambda=lam),
        )
        verdicts = []
        for wq in queries:
            keywords = list(wq.keywords)
            ranked = reformulator.reformulate(keywords, k=k)
            verdicts.append(context.judges.judge_ranking(keywords, ranked))
        out[lam] = precision_curve(verdicts, (k,))[k]
    return SmoothingSweepReport(precision_by_lambda=out)


# --------------------------------------------------------------------- #
# pruning sweep
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class PruningSweepReport:
    """beam width -> top-10 close-term overlap with the exact extractor."""

    overlap_by_beam: Dict[int, float]
    n_targets: int


def run_pruning_sweep(
    context: Optional[ExperimentContext] = None,
    beams: Sequence[int] = (50, 200, 1000, 4000),
    n_targets: int = 15,
    top_n: int = 10,
) -> PruningSweepReport:
    """Close-term fidelity of pruned vs exact closeness."""
    context = context or build_context()
    graph = context.graph
    exact = ClosenessExtractor(graph, max_depth=4, beam_width=None)

    title_field = ("papers", "title")
    target_ids = [
        graph.term_node_id(term)
        for term in sorted(graph.index.terms(), key=str)
        if term.field == title_field
    ][:n_targets]

    exact_tops = {
        nid: {t for t, _ in exact.close_terms(nid, top_n)}
        for nid in target_ids
    }
    overlap_by_beam: Dict[int, float] = {}
    for beam in beams:
        pruned = ClosenessExtractor(graph, max_depth=4, beam_width=beam)
        overlaps = []
        for nid in target_ids:
            approx = {t for t, _ in pruned.close_terms(nid, top_n)}
            reference = exact_tops[nid]
            if not reference:
                continue
            overlaps.append(len(approx & reference) / len(reference))
        overlap_by_beam[beam] = (
            sum(overlaps) / len(overlaps) if overlaps else 1.0
        )
    return PruningSweepReport(
        overlap_by_beam=overlap_by_beam, n_targets=len(target_ids)
    )


def main() -> None:
    """Print all three ablation tables."""
    pref = run_preference_ablation()
    print("Preference ablation (top-"
          f"{pref.top_n}, {pref.n_targets} targets)")
    print(format_table(
        ["measure", "value"],
        [["contextual/individual overlap", pref.variant_overlap],
         ["walk synonym recall", pref.walk_synonym_recall],
         ["co-occurrence synonym recall", pref.cooccurrence_synonym_recall]],
    ))
    smooth = run_smoothing_sweep()
    print("\nSmoothing sweep (Precision@10 by λ)")
    print(format_table(
        ["lambda", "P@10"],
        [[lam, p] for lam, p in sorted(smooth.precision_by_lambda.items())],
    ))
    prune = run_pruning_sweep()
    print("\nPruning sweep (close-term overlap with exact extractor)")
    print(format_table(
        ["beam width", "overlap"],
        [[b, o] for b, o in sorted(prune.overlap_by_beam.items())],
    ))


if __name__ == "__main__":
    main()
