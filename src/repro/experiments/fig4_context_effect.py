"""Figure 4 — the contextual preference's effect, quantified.

The paper's Figure 4 is a picture: the basic random walk from "uncertain"
only reaches its direct co-occurrers, while the contextual walk, restarted
on the surrounding tuples, also reaches "probabilistic".  This experiment
turns the picture into numbers over the whole vocabulary:

* for every term with a ground-truth synonym cluster-mate in the corpus,
  measure ``sim(term, mate)`` under the basic and the contextual walk and
  under co-occurrence;
* report the mean contextual/basic ratio (how much the context amplifies
  the synonym signal) and each method's synonym *reachability* (fraction
  of pairs with non-zero similarity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.graph.similarity import SimilarityExtractor
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    format_table,
)


@dataclass(frozen=True)
class ContextEffectReport:
    """Synonym-signal statistics of the three similarity variants."""

    n_pairs: int
    contextual_reachability: float
    basic_reachability: float
    cooccurrence_reachability: float
    mean_contextual_over_basic: float

    def rows(self) -> List[Tuple[str, float]]:
        """Table rows for rendering."""
        return [
            ("synonym pairs measured", float(self.n_pairs)),
            ("contextual walk reachability", self.contextual_reachability),
            ("basic walk reachability", self.basic_reachability),
            ("co-occurrence reachability", self.cooccurrence_reachability),
            ("mean contextual/basic sim ratio",
             self.mean_contextual_over_basic),
        ]


def run(
    context: Optional[ExperimentContext] = None,
    max_pairs: int = 40,
) -> ContextEffectReport:
    """Measure synonym-pair similarity under all three variants."""
    context = context or build_context()
    graph = context.graph
    model = context.corpus.topic_model

    contextual = context.reformulator("tat").similarity
    basic = SimilarityExtractor(graph, contextual=False)
    cooccurrence = context.reformulator("cooccurrence").similarity

    title = ("papers", "title")
    present = sorted(
        t.text for t in graph.index.terms() if t.field == title
    )
    pairs: List[Tuple[int, int]] = []
    seen = set()
    for word in present:
        for mate in present:
            if word >= mate or not model.are_synonyms(word, mate):
                continue
            key = (word, mate)
            if key in seen:
                continue
            seen.add(key)
            pairs.append((
                graph.resolve_text_one(word),
                graph.resolve_text_one(mate),
            ))
            if len(pairs) >= max_pairs:
                break
        if len(pairs) >= max_pairs:
            break

    ctx_sims = [contextual.similarity(a, b) for a, b in pairs]
    basic_sims = [basic.similarity(a, b) for a, b in pairs]
    coo_sims = [cooccurrence.similarity(a, b) for a, b in pairs]

    ratios = [
        c / b for c, b in zip(ctx_sims, basic_sims) if b > 0
    ]
    n = max(1, len(pairs))
    return ContextEffectReport(
        n_pairs=len(pairs),
        contextual_reachability=sum(s > 0 for s in ctx_sims) / n,
        basic_reachability=sum(s > 0 for s in basic_sims) / n,
        cooccurrence_reachability=sum(s > 0 for s in coo_sims) / n,
        mean_contextual_over_basic=(
            sum(ratios) / len(ratios) if ratios else 0.0
        ),
    )


def main() -> None:
    """Print the Figure 4 quantification table."""
    report = run()
    print("Figure 4 quantified — synonym signal by similarity variant\n")
    print(format_table(["measure", "value"], report.rows()))


if __name__ == "__main__":
    main()
