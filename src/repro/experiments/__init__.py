"""Experiment drivers: one module per paper table/figure, plus ablations.

Each module exposes ``run(context=None, **params)`` returning a typed
report and ``main()`` printing a formatted table; the ``benchmarks/``
directory wraps the same ``run`` functions in pytest-benchmark fixtures.
"""

from repro.experiments.common import (
    ExperimentContext,
    SCALES,
    build_context,
    clear_cache,
    format_table,
)

__all__ = [
    "ExperimentContext",
    "SCALES",
    "build_context",
    "clear_cache",
    "format_table",
]
