"""Table III — result size and query distance of reformulated queries.

19 queries built from sampled paper titles (the paper used 19 SIGMOD Best
Paper titles); each method produces its top-10 reformulations; we measure

* **result size** — average keyword-search result count of the
  reformulations (bigger = more valid/cohesive queries), and
* **query distance** — average TAT shortest-path distance between
  corresponding term pairs (bigger = more diverse suggestions).

The shape to reproduce (paper: 20.89/9.21/14.16 and 1.11/0.67/0.82):
TAT-based wins both metrics, Rank-based is the weakest on both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.eval.metrics import QualityReport, merge_reports
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    format_table,
)
from repro.experiments.fig5_precision import METHOD_LABELS


@dataclass(frozen=True)
class ResultQualityTable:
    """Table III: one QualityReport per method."""

    reports: Dict[str, QualityReport]
    n_queries: int
    k: int

    def metric(self, method: str, name: str) -> float:
        """One metric value for one method."""
        report = self.reports[method]
        return getattr(report, name)


def run(
    context: Optional[ExperimentContext] = None,
    n_queries: int = 19,
    k: int = 10,
    methods: Sequence[str] = ("tat", "rank", "cooccurrence"),
) -> ResultQualityTable:
    """Result size and query distance per method (Table III)."""
    context = context or build_context()
    queries = context.workloads.best_paper_queries(count=n_queries)
    reports: Dict[str, QualityReport] = {}
    for method in methods:
        reformulator = context.reformulator(method)
        per_query: List[QualityReport] = []
        for wq in queries:
            keywords = list(wq.keywords)
            ranked = reformulator.reformulate(keywords, k=k)
            per_query.append(
                context.quality.report(method, keywords, ranked)
            )
        reports[method] = merge_reports(per_query)
    return ResultQualityTable(reports=reports, n_queries=len(queries), k=k)


def main() -> None:
    """Print the Table III report."""
    table = run()
    print(
        f"Table III reproduction — top-{table.k} reformulations of "
        f"{table.n_queries} title queries\n"
    )
    rows = [
        [
            METHOD_LABELS[m],
            table.reports[m].result_size,
            table.reports[m].query_distance,
        ]
        for m in table.reports
    ]
    print(format_table(["method", "result size", "query distance"], rows))


if __name__ == "__main__":
    main()
