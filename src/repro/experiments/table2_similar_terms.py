"""Table II — similar-term extraction: co-occurrence vs contextual walk.

The paper compares, for the target "xml", the terms found by frequent
co-occurrence ("document", "integrated", "structure", "index" — local
subareas) with those found by the contextual random walk ("twig",
"native", "keyword", "html" — alternative/counterpart topics).

The quantitative signature we verify here: the contextual walk surfaces
**quasi-synonyms and cluster-mates that never co-occur in a title** (the
generator guarantees synonym cluster-mates cannot share a title), while
the co-occurrence list cannot contain them by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.common import (
    ExperimentContext,
    build_context,
    format_table,
)


@dataclass(frozen=True)
class SimilarTermsReport:
    """Table II for one target term."""

    target: str
    cooccurrence_terms: List[Tuple[str, float]]
    contextual_terms: List[Tuple[str, float]]
    #: cluster-mates of the target that the walk found but co-occurrence
    #: cannot (they never share a title with the target)
    recovered_synonyms: List[str]


def run(
    context: Optional[ExperimentContext] = None,
    target: str = "xml",
    top_n: int = 10,
) -> SimilarTermsReport:
    """Similar terms, walk vs co-occurrence (Table II)."""
    context = context or build_context()
    tat = context.reformulator("tat")
    coo = context.reformulator("cooccurrence")

    contextual = tat.similarity.similar_terms(target, top_n)
    cooccur = coo.similarity.similar_terms(target, top_n)

    model = context.corpus.topic_model
    coo_texts = {t for t, _ in cooccur}
    recovered = [
        text
        for text, _score in contextual
        if model.are_synonyms(target, text) and text not in coo_texts
    ]
    return SimilarTermsReport(
        target=target,
        cooccurrence_terms=cooccur,
        contextual_terms=contextual,
        recovered_synonyms=recovered,
    )


def run_author_case(
    context: Optional[ExperimentContext] = None,
    top_n: int = 5,
) -> SimilarTermsReport:
    """The paper's second case: similar *authors* instead of title words.

    Co-occurrence on the atomic author-name field finds nothing (an author
    name never co-occurs with another name inside one ``authors`` tuple),
    while the contextual walk finds same-community researchers — the
    "Jiawei Han → Christos Faloutsos" effect.
    """
    context = context or build_context()
    # Pick the most prolific author as the target.
    writes = context.database.table("writes")
    counts = {}
    for row in writes.scan():
        counts[row["aid"]] = counts.get(row["aid"], 0) + 1
    target_aid = max(counts, key=lambda a: (counts[a], -a))
    target = str(context.database.table("authors").get(target_aid)["name"])

    tat = context.reformulator("tat")
    coo = context.reformulator("cooccurrence")
    contextual = tat.similarity.similar_terms(target, top_n)
    cooccur = coo.similarity.similar_terms(target, top_n)

    truth = context.corpus.ground_truth
    recovered = [
        text
        for text, _ in contextual
        if truth.terms_relevant(target, text)
    ]
    return SimilarTermsReport(
        target=target,
        cooccurrence_terms=cooccur,
        contextual_terms=contextual,
        recovered_synonyms=recovered,
    )


def main() -> None:
    """Print the Table II report."""
    report = run()
    print(f"Table II reproduction — similar terms of {report.target!r}\n")
    print("frequent co-occurrence method:")
    print(format_table(["term", "score"], report.cooccurrence_terms))
    print("\ncontextual random walk (ours):")
    print(format_table(["term", "score"], report.contextual_terms))
    print(
        f"\nsynonyms recovered only by the walk: {report.recovered_synonyms}"
    )
    author_report = run_author_case()
    print(
        f"\nauthor case — similar authors of {author_report.target!r}:"
    )
    print(format_table(["author", "score"], author_report.contextual_terms))


if __name__ == "__main__":
    main()
