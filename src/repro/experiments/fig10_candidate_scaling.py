"""Figure 10 — time cost with the size of the candidate state lists (n).

How many similar terms per input keyword can the online stage afford?
The paper varies the hidden-state list size and finds response stays
interactive, "especially when the size of similar term list is less
than 20".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.astar import astar_topk
from repro.core.candidates import CandidateListBuilder
from repro.core.hmm import IndexFrequency, ReformulationHMM
from repro.eval.timing import TimingStats
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    format_table,
)

DEFAULT_SIZES = (5, 10, 15, 20, 30, 40)


@dataclass(frozen=True)
class CandidateScalingReport:
    """Per candidate-list size: mean decode time."""

    total_by_size: Dict[int, TimingStats]
    query_length: int
    k: int


def run(
    context: Optional[ExperimentContext] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    query_length: int = 4,
    n_queries: int = 10,
    k: int = 10,
) -> CandidateScalingReport:
    """Decode time across candidate-list sizes (Figure 10)."""
    context = context or build_context()
    workload = context.workloads.queries_of_length(query_length, n_queries)
    reformulator = context.reformulator("tat")

    total_by_size: Dict[int, TimingStats] = {}
    for size in sizes:
        builder = CandidateListBuilder(
            context.graph,
            reformulator.similarity,
            n_candidates=size,
        )
        samples: List[float] = []
        for wq in workload:
            states = builder.build(list(wq.keywords))
            hmm = ReformulationHMM.build(
                query=list(wq.keywords),
                states=states,
                closeness=reformulator.closeness,
                frequency=IndexFrequency(context.graph),
            )
            outcome = astar_topk(hmm, k)
            samples.append(outcome.total_seconds)
        total_by_size[size] = TimingStats.from_samples(samples)
    return CandidateScalingReport(
        total_by_size=total_by_size,
        query_length=query_length,
        k=k,
    )


def main() -> None:
    """Print the Figure 10 table."""
    report = run()
    print(
        "Figure 10 reproduction — time vs candidate-list size "
        f"(length {report.query_length}, k={report.k})\n"
    )
    rows = [
        [size, report.total_by_size[size].mean * 1000]
        for size in sorted(report.total_by_size)
    ]
    print(format_table(["candidates per term", "mean ms"], rows))


if __name__ == "__main__":
    main()
