"""Figure 9 — time cost with the number of returned queries (k).

Query length fixed at 6 (a "relative long query").  The Viterbi stage is
independent of k (it always computes the full table); the A* stage grows
linearly with k.  Both claims are checked by the bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.astar import astar_topk
from repro.eval.timing import TimingStats
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    format_table,
)

DEFAULT_KS = (1, 5, 10, 20, 30, 40, 50)


@dataclass(frozen=True)
class TopkScalingReport:
    """Per k: mean stage timings over the query sample."""

    viterbi_by_k: Dict[int, TimingStats]
    astar_by_k: Dict[int, TimingStats]
    query_length: int


def run(
    context: Optional[ExperimentContext] = None,
    ks: Sequence[int] = DEFAULT_KS,
    query_length: int = 6,
    n_queries: int = 10,
) -> TopkScalingReport:
    """Stage timings across k at fixed query length (Figure 9)."""
    context = context or build_context()
    workload = context.workloads.queries_of_length(query_length, n_queries)
    reformulator = context.reformulator("tat")
    hmms = [reformulator.build_hmm(list(wq.keywords)) for wq in workload]

    viterbi_by_k: Dict[int, TimingStats] = {}
    astar_by_k: Dict[int, TimingStats] = {}
    for k in ks:
        v_samples: List[float] = []
        a_samples: List[float] = []
        for hmm in hmms:
            outcome = astar_topk(hmm, k)
            v_samples.append(outcome.viterbi_seconds)
            a_samples.append(outcome.astar_seconds)
        viterbi_by_k[k] = TimingStats.from_samples(v_samples)
        astar_by_k[k] = TimingStats.from_samples(a_samples)
    return TopkScalingReport(
        viterbi_by_k=viterbi_by_k,
        astar_by_k=astar_by_k,
        query_length=query_length,
    )


def main() -> None:
    """Print the Figure 9 table."""
    report = run()
    print(
        "Figure 9 reproduction — time vs k "
        f"(query length {report.query_length})\n"
    )
    rows = [
        [
            k,
            report.viterbi_by_k[k].mean * 1000,
            report.astar_by_k[k].mean * 1000,
        ]
        for k in sorted(report.viterbi_by_k)
    ]
    print(format_table(["k", "viterbi ms", "a* ms"], rows))


if __name__ == "__main__":
    main()
