"""Figure 8 — Algorithm 3 stage breakdown by query length.

The improved algorithm has two stages: the Viterbi initialization (which
computes the admissible completion scores) and the A* best-first search.
The paper reports both stage times per query length and observes the
Viterbi stage dominates, with total time under interactive thresholds even
at length 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.astar import astar_topk
from repro.eval.timing import TimingStats
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    format_table,
)


@dataclass(frozen=True)
class StageBreakdownReport:
    """Per query length: mean seconds of each Algorithm 3 stage."""

    viterbi_by_length: Dict[int, TimingStats]
    astar_by_length: Dict[int, TimingStats]
    k: int

    def total_mean(self, length: int) -> float:
        """Mean total (viterbi + A*) seconds at one length."""
        return (
            self.viterbi_by_length[length].mean
            + self.astar_by_length[length].mean
        )


def run(
    context: Optional[ExperimentContext] = None,
    n_queries: int = 80,
    max_len: int = 8,
    k: int = 10,
) -> StageBreakdownReport:
    """Per-stage Alg 3 timings by query length (Figure 8)."""
    context = context or build_context()
    workload = context.workloads.length_varied_queries(
        count=n_queries, min_len=1, max_len=max_len
    )
    reformulator = context.reformulator("tat")
    viterbi_samples: Dict[int, List[float]] = {}
    astar_samples: Dict[int, List[float]] = {}
    for wq in workload:
        hmm = reformulator.build_hmm(list(wq.keywords))
        outcome = astar_topk(hmm, k)
        length = len(wq.keywords)
        viterbi_samples.setdefault(length, []).append(outcome.viterbi_seconds)
        astar_samples.setdefault(length, []).append(outcome.astar_seconds)
    return StageBreakdownReport(
        viterbi_by_length={
            length: TimingStats.from_samples(vals)
            for length, vals in sorted(viterbi_samples.items())
        },
        astar_by_length={
            length: TimingStats.from_samples(vals)
            for length, vals in sorted(astar_samples.items())
        },
        k=k,
    )


def main() -> None:
    """Print the Figure 8 table."""
    report = run()
    print(f"Figure 8 reproduction — Alg 3 stage times (k={report.k})\n")
    rows = []
    for length in sorted(report.viterbi_by_length):
        rows.append([
            length,
            report.viterbi_by_length[length].mean * 1000,
            report.astar_by_length[length].mean * 1000,
            report.total_mean(length) * 1000,
        ])
    print(format_table(
        ["query length", "viterbi ms", "a* ms", "total ms"], rows
    ))


if __name__ == "__main__":
    main()
