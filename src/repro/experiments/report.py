"""One-shot reproduction report: every experiment into one markdown file.

``python -m repro.experiments.report --out report.md`` regenerates all
tables and figures on a fresh corpus and writes a self-contained markdown
report — the artifact a reproduction reviewer asks for.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments import (
    ablations,
    fig5_precision,
    fig7_alg_comparison,
    fig8_stage_breakdown,
    fig9_topk_scaling,
    fig10_candidate_scaling,
    table1_close_terms,
    table2_similar_terms,
    table3_result_quality,
)
from repro.experiments.common import ExperimentContext, build_context
from repro.experiments.fig5_precision import METHOD_LABELS, RANK_POSITIONS


def _md_table(headers: Sequence[str], rows: Sequence[Sequence]) -> List[str]:
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend(
        "| " + " | ".join(fmt(c) for c in row) + " |" for row in rows
    )
    lines.append("")
    return lines


def generate_report(
    context: Optional[ExperimentContext] = None,
    scale: str = "medium",
    seed: int = 7,
    quick: bool = False,
) -> str:
    """Run every experiment and render the consolidated markdown report.

    ``quick=True`` shrinks the workloads (used by tests); the full run
    matches the benchmark suite's parameters.
    """
    context = context or build_context(scale=scale, seed=seed)
    n_queries = 6 if quick else 30
    n_timing = 24 if quick else 120
    lines: List[str] = [
        "# Reproduction report — Keyword Query Reformulation on "
        "Structured Data (ICDE 2012)",
        "",
        f"Corpus: scale `{scale}`, seed {seed}; "
        f"{context.graph.stats()['nodes']} TAT nodes, "
        f"{context.graph.stats()['edges']} edges.",
        "",
    ]

    # Table I
    t1 = table1_close_terms.run(context, top_n=8)
    lines += [f"## Table I — close terms of `{t1.target}`", ""]
    lines += _md_table(["close term", "closeness"], t1.close_terms)
    lines += _md_table(
        ["close conference", "closeness"], t1.close_conferences
    )

    # Table II
    t2 = table2_similar_terms.run(context, target="xml", top_n=20)
    lines += ["## Table II — similar terms of `xml`", ""]
    lines += _md_table(
        ["co-occurrence", "score"], t2.cooccurrence_terms[:10]
    )
    lines += _md_table(["contextual walk", "score"], t2.contextual_terms[:10])
    lines += [
        f"Synonyms recovered only by the walk: "
        f"{', '.join(t2.recovered_synonyms) or '(none)'}",
        "",
    ]

    # Figure 5
    f5 = fig5_precision.run(context, n_queries=n_queries)
    lines += [f"## Figure 5 — Precision@N ({f5.n_queries} queries)", ""]
    lines += _md_table(
        ["method"] + [f"P@{n}" for n in RANK_POSITIONS],
        [
            [METHOD_LABELS[m]] + [f5.curves[m][n] for n in RANK_POSITIONS]
            for m in f5.curves
        ],
    )

    # Figure 7
    f7 = fig7_alg_comparison.run(context, n_queries=n_timing, max_len=8)
    lines += ["## Figure 7 — Alg 2 vs Alg 3 decode time", ""]
    lines += _md_table(
        ["length", "Alg2 ms", "Alg3 ms", "speedup"],
        [
            [
                length,
                f7.alg2_by_length[length].mean * 1000,
                f7.alg3_by_length[length].mean * 1000,
                f7.speedup_at(length),
            ]
            for length in sorted(f7.alg2_by_length)
        ],
    )

    # Figure 8
    f8 = fig8_stage_breakdown.run(context, n_queries=n_timing, max_len=8)
    lines += ["## Figure 8 — Alg 3 stage breakdown", ""]
    lines += _md_table(
        ["length", "viterbi ms", "a* ms", "total ms"],
        [
            [
                length,
                f8.viterbi_by_length[length].mean * 1000,
                f8.astar_by_length[length].mean * 1000,
                f8.total_mean(length) * 1000,
            ]
            for length in sorted(f8.viterbi_by_length)
        ],
    )

    # Figure 9
    f9 = fig9_topk_scaling.run(
        context, ks=(1, 10, 30, 50), n_queries=4 if quick else 20
    )
    lines += ["## Figure 9 — time vs k (length 6)", ""]
    lines += _md_table(
        ["k", "viterbi ms", "a* ms"],
        [
            [
                k,
                f9.viterbi_by_k[k].mean * 1000,
                f9.astar_by_k[k].mean * 1000,
            ]
            for k in sorted(f9.viterbi_by_k)
        ],
    )

    # Figure 10
    f10 = fig10_candidate_scaling.run(
        context, sizes=(5, 10, 20, 40), n_queries=4 if quick else 20
    )
    lines += ["## Figure 10 — time vs candidate-list size", ""]
    lines += _md_table(
        ["candidates/term", "mean ms"],
        [
            [size, f10.total_by_size[size].mean * 1000]
            for size in sorted(f10.total_by_size)
        ],
    )

    # Table III
    t3 = table3_result_quality.run(
        context, n_queries=6 if quick else 19
    )
    lines += [f"## Table III — result quality ({t3.n_queries} queries)", ""]
    lines += _md_table(
        ["method", "result size", "query distance"],
        [
            [
                METHOD_LABELS[m],
                t3.reports[m].result_size,
                t3.reports[m].query_distance,
            ]
            for m in t3.reports
        ],
    )

    # Ablations
    pref = ablations.run_preference_ablation(
        context, max_targets=10 if quick else 40
    )
    lines += ["## Ablations", ""]
    lines += _md_table(
        ["measure", "value"],
        [
            ["contextual/individual overlap", pref.variant_overlap],
            ["walk synonym recall", pref.walk_synonym_recall],
            ["co-occurrence synonym recall",
             pref.cooccurrence_synonym_recall],
        ],
    )

    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry: write the consolidated markdown report."""
    parser = argparse.ArgumentParser(
        description="Regenerate every table/figure into a markdown report"
    )
    parser.add_argument("--out", default="reproduction_report.md")
    parser.add_argument("--scale", default="medium")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    report = generate_report(
        scale=args.scale, seed=args.seed, quick=args.quick
    )
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(report)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
