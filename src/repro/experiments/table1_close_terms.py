"""Table I — close terms and close conferences for a target term.

The paper shows, for the term "probabilistic", the closest title terms
("generation", "document", "distribution", ...) and the closest
conferences (VLDB, SIGMOD, AAAI ahead of ICDM).  It then validates the
conference ordering against Google result counts.

We regenerate both columns from the closeness extractor and validate the
ordering the same way the paper does — by counting actual keyword-search
results of (term + close conference) vs (term + distant conference) in our
own search engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.common import (
    ExperimentContext,
    build_context,
    format_table,
)


@dataclass(frozen=True)
class CloseTermsReport:
    """Table I for one target term."""

    target: str
    close_terms: List[Tuple[str, float]]
    close_conferences: List[Tuple[str, float]]
    #: (conference, joint search-result count) — the "Google test"
    joint_result_counts: List[Tuple[str, int]]


def run(
    context: Optional[ExperimentContext] = None,
    target: str = "probabilistic",
    top_n: int = 8,
) -> CloseTermsReport:
    """Close terms/conferences of a target term (Table I)."""
    context = context or build_context()
    graph = context.graph
    closeness = context.reformulator("tat").closeness

    node_id = graph.resolve_text_one(target)
    title_field = ("papers", "title")
    conf_field = ("conferences", "name")

    close_terms = [
        (graph.node(nid).text or "", score)
        for nid, score in closeness.close_terms_in_class(
            node_id, title_field, top_n
        )
    ]
    close_confs = [
        (graph.node(nid).text or "", score)
        for nid, score in closeness.close_terms_in_class(
            node_id, conf_field, top_n
        )
    ]
    joint_counts = [
        (conf, context.search.result_size([target, conf]))
        for conf, _score in close_confs
    ]
    return CloseTermsReport(
        target=target,
        close_terms=close_terms,
        close_conferences=close_confs,
        joint_result_counts=joint_counts,
    )


def main() -> None:
    """Print the Table I report."""
    report = run()
    print(f"Table I reproduction — close terms of {report.target!r}\n")
    print(format_table(
        ["close term", "closeness"], report.close_terms
    ))
    print()
    print(format_table(
        ["close conference", "closeness"], report.close_conferences
    ))
    print("\nvalidation (paper's Google test, on our search engine):")
    print(format_table(
        ["conference", "joint results"], report.joint_result_counts
    ))


if __name__ == "__main__":
    main()
