"""User-feedback adaptation (the paper's future-work direction).

"With the collection of considerable query logs, the user interaction and
feedback analysis on this new kind of query reformulation is another
interesting extension."  (Section VII)

The :class:`FeedbackAdaptor` wraps the offline similarity and closeness
backends with multiplicative boosts learned from accept/reject events:

* accepting a suggestion boosts the (query term → substituted term)
  similarity and the closeness of every adjacent substituted pair;
* rejecting applies the inverse penalty;
* boosts are capped and decay toward 1.0, so a burst of old clicks cannot
  permanently dominate the structural signal.

The adaptor exposes the same ``similar_nodes``/``similarity``/
``closeness`` surface as the live extractors, so a
:class:`~repro.core.reformulator.Reformulator` built on top of it adapts
transparently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.scoring import ScoredQuery
from repro.errors import ReproError
from repro.graph.similarity import SimilarNode
from repro.graph.tat import TATGraph


@dataclass(frozen=True)
class FeedbackEvent:
    """One logged interaction."""

    original: Tuple[str, ...]
    suggestion: Tuple[str, ...]
    accepted: bool


class FeedbackAdaptor:
    """Boost-learning wrapper around similarity + closeness backends.

    Parameters
    ----------
    graph:
        The TAT graph (resolves texts to node ids).
    similarity, closeness:
        The structural backends being wrapped.
    learning_rate:
        Multiplicative step per event (accept → ×(1+rate),
        reject → ÷(1+rate)).
    max_boost:
        Boosts are clamped to [1/max_boost, max_boost].
    decay:
        Per-:meth:`decay_boosts` call multiplier pulling boosts toward 1.
    """

    def __init__(
        self,
        graph: TATGraph,
        similarity,
        closeness,
        learning_rate: float = 0.5,
        max_boost: float = 8.0,
        decay: float = 0.9,
    ) -> None:
        if learning_rate <= 0:
            raise ReproError("learning_rate must be positive")
        if max_boost <= 1:
            raise ReproError("max_boost must exceed 1")
        if not 0 < decay <= 1:
            raise ReproError("decay must be in (0,1]")
        self.graph = graph
        self.base_similarity = similarity
        self.base_closeness = closeness
        self.learning_rate = learning_rate
        self.max_boost = max_boost
        self.decay = decay
        self._sim_boost: Dict[Tuple[int, int], float] = {}
        self._clos_boost: Dict[Tuple[int, int], float] = {}
        self.events: List[FeedbackEvent] = []

    # ------------------------------------------------------------------ #
    # learning
    # ------------------------------------------------------------------ #

    def record(
        self,
        original: Sequence[str],
        suggestion: ScoredQuery,
        accepted: bool,
    ) -> FeedbackEvent:
        """Log one accept/reject event and update the boosts."""
        new_terms = suggestion.keywords
        event = FeedbackEvent(tuple(original), tuple(new_terms), accepted)
        self.events.append(event)

        factor = 1.0 + self.learning_rate
        if not accepted:
            factor = 1.0 / factor

        # similarity boosts: original position term -> substituted term
        for old, new in zip(original, suggestion.terms):
            if new is None or old == new:
                continue
            pair = self._resolve_pair(old, new)
            if pair is not None:
                self._bump(self._sim_boost, pair, factor)
        # closeness boosts: adjacent pairs of the suggested query
        for a, b in zip(new_terms, new_terms[1:]):
            pair = self._resolve_pair(a, b)
            if pair is not None:
                self._bump(self._clos_boost, pair, factor)
                self._bump(self._clos_boost, (pair[1], pair[0]), factor)
        return event

    def decay_boosts(self) -> None:
        """Pull every boost toward 1.0 (call periodically, e.g. daily)."""
        for boosts in (self._sim_boost, self._clos_boost):
            for pair in list(boosts):
                boosted = 1.0 + (boosts[pair] - 1.0) * self.decay
                if abs(boosted - 1.0) < 1e-6:
                    del boosts[pair]
                else:
                    boosts[pair] = boosted

    def _bump(self, boosts, pair: Tuple[int, int], factor: float) -> None:
        value = boosts.get(pair, 1.0) * factor
        value = min(self.max_boost, max(1.0 / self.max_boost, value))
        boosts[pair] = value

    def _resolve_pair(self, a: str, b: str) -> Optional[Tuple[int, int]]:
        from repro.errors import UnknownNodeError

        try:
            return (
                self.graph.resolve_text_one(a),
                self.graph.resolve_text_one(b),
            )
        except UnknownNodeError:
            return None

    # ------------------------------------------------------------------ #
    # backend surface (what the Reformulator consumes)
    # ------------------------------------------------------------------ #

    def similar_nodes(self, node_id: int, top_n: int) -> List[SimilarNode]:
        """Base similar list, re-ranked by the learned boosts.

        Fetches a wider base list so a strongly boosted candidate can
        climb into the top-n even from below the base cut.
        """
        base = self.base_similarity.similar_nodes(node_id, top_n * 2)
        boosted = [
            SimilarNode(
                s.node_id,
                s.score * self._sim_boost.get((node_id, s.node_id), 1.0),
            )
            for s in base
        ]
        boosted.sort(key=lambda s: (-s.score, s.node_id))
        return boosted[:top_n]

    def similarity(self, node_a: int, node_b: int) -> float:
        """Base similarity times the learned pair boost."""
        return self.base_similarity.similarity(node_a, node_b) * (
            self._sim_boost.get((node_a, node_b), 1.0)
        )

    def similar_terms(self, text: str, top_n: int = 10):
        """Boost-re-ranked similar terms for a raw keyword."""
        node_id = self.graph.resolve_text_one(text)
        out = []
        for sim in self.similar_nodes(node_id, top_n):
            node = self.graph.node(sim.node_id)
            out.append((node.text or str(node), sim.score))
        return out

    def closeness(self, node_a: int, node_b: int) -> float:
        """Base closeness times the learned pair boost."""
        return self.base_closeness.closeness(node_a, node_b) * (
            self._clos_boost.get((node_a, node_b), 1.0)
        )

    def precompute(self, node_ids) -> None:
        """Delegate cache warming to the wrapped backend."""
        if hasattr(self.base_similarity, "precompute"):
            self.base_similarity.precompute(node_ids)

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    @property
    def boost_count(self) -> int:
        """Number of learned (pair, boost) entries."""
        return len(self._sim_boost) + len(self._clos_boost)
