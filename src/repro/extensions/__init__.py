"""Extensions implementing the paper's future-work directions.

* :mod:`repro.extensions.faceted` — "exploit the reformulated queries to
  support ad hoc faceted retrieval over structured data";
* :mod:`repro.extensions.feedback` — "the user interaction and feedback
  analysis on this new kind of query reformulation".
"""

from repro.extensions.faceted import Facet, FacetedSuggester, FacetEntry
from repro.extensions.feedback import FeedbackAdaptor, FeedbackEvent

__all__ = [
    "Facet",
    "FacetEntry",
    "FacetedSuggester",
    "FeedbackAdaptor",
    "FeedbackEvent",
]
