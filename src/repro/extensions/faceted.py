"""Faceted query exploration (the paper's future-work direction).

"We could also exploit the reformulated queries to support ad hoc faceted
retrieval over structured data, which is more intuitive and user
friendly."  (Section VII)

A facet here is one *axis of substitution*: fixing all but one query
position to the original terms and reformulating the free position yields
a ranked list of drill-sideways alternatives for exactly that keyword,
each annotated with its result coverage.  A per-field facet additionally
groups alternatives by the database field they come from (title word vs
author vs venue), which is the "ad hoc facet" a UI would render as
selectable filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.candidates import CandidateState, StateKind
from repro.core.hmm import ReformulationHMM
from repro.core.reformulator import Reformulator
from repro.core.viterbi import viterbi_topk
from repro.errors import ReformulationError
from repro.search.keyword import KeywordSearchEngine


@dataclass(frozen=True)
class FacetEntry:
    """One alternative inside a facet."""

    query_text: str
    substituted: str           # the new term at the facet's position
    score: float
    result_count: Optional[int]  # None when no search engine was supplied


@dataclass(frozen=True)
class Facet:
    """A ranked substitution axis for one query position."""

    position: int
    original: str
    field_label: str           # e.g. "papers.title", "authors.name"
    entries: Tuple[FacetEntry, ...]

    def __len__(self) -> int:
        return len(self.entries)


class FacetedSuggester:
    """Derives per-position facets from a configured reformulator.

    Parameters
    ----------
    reformulator:
        The online pipeline (any method).
    search:
        Optional keyword search engine; when given, every facet entry is
        annotated with its result count (and zero-coverage entries are
        dropped — a facet option that matches nothing is a dead end).
    """

    def __init__(
        self,
        reformulator: Reformulator,
        search: Optional[KeywordSearchEngine] = None,
    ) -> None:
        self.reformulator = reformulator
        self.search = search

    # ------------------------------------------------------------------ #
    # facet construction
    # ------------------------------------------------------------------ #

    def facet_for_position(
        self,
        keywords: Sequence[str],
        position: int,
        k: int = 5,
    ) -> Facet:
        """The substitution facet for one query position.

        All other positions are pinned to their original terms, so the
        HMM's closeness factor ranks the alternatives by how well they
        cohere with the *rest of the query as given*.
        """
        keywords = list(keywords)
        if not 0 <= position < len(keywords):
            raise ReformulationError(
                f"position {position} out of range for {len(keywords)} terms"
            )
        states = self.reformulator.candidates.build(keywords)
        pinned: List[List[CandidateState]] = []
        for i, state_list in enumerate(states):
            if i == position:
                pinned.append(state_list)
            else:
                pinned.append([_pin_original(state_list, keywords[i])])
        hmm = ReformulationHMM.build(
            query=keywords,
            states=pinned,
            closeness=self.reformulator.closeness,
            frequency=self.reformulator.frequency,
            smoothing_lambda=self.reformulator.config.smoothing_lambda,
        )
        # ask for extra paths: the identity path and dead entries drop out
        raw = viterbi_topk(hmm, k + 2)
        entries: List[FacetEntry] = []
        for query in raw:
            substituted = query.terms[position]
            if substituted is None or substituted == keywords[position]:
                continue
            count: Optional[int] = None
            if self.search is not None:
                count = self.search.result_size(list(query.keywords))
                if count == 0:
                    continue
            entries.append(FacetEntry(
                query_text=query.text,
                substituted=substituted,
                score=query.score,
                result_count=count,
            ))
            if len(entries) >= k:
                break
        return Facet(
            position=position,
            original=keywords[position],
            field_label=self._field_label(keywords[position]),
            entries=tuple(entries),
        )

    def facets(self, keywords: Sequence[str], k: int = 5) -> List[Facet]:
        """One facet per query position, in position order."""
        return [
            self.facet_for_position(keywords, position, k)
            for position in range(len(keywords))
        ]

    def field_facets(
        self, keywords: Sequence[str], k: int = 5
    ) -> Dict[str, List[FacetEntry]]:
        """Facet entries regrouped by the substituting term's field."""
        grouped: Dict[str, List[FacetEntry]] = {}
        for facet in self.facets(keywords, k):
            for entry in facet.entries:
                label = self._field_label(entry.substituted)
                grouped.setdefault(label, []).append(entry)
        for entries in grouped.values():
            entries.sort(key=lambda e: -e.score)
        return grouped

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _field_label(self, text: str) -> str:
        from repro.errors import UnknownNodeError

        graph = self.reformulator.graph
        try:
            node = graph.node(graph.resolve_text_one(text))
        except UnknownNodeError:
            return "unknown"
        table, column = node.payload.field
        return f"{table}.{column}"


def _pin_original(
    state_list: List[CandidateState], keyword: str
) -> CandidateState:
    """The original-term state of a candidate list (synthesized if the
    list was built without originals)."""
    for state in state_list:
        if state.kind is StateKind.ORIGINAL:
            return state
    for state in state_list:
        if state.text == keyword:
            return state
    return CandidateState(StateKind.ORIGINAL, None, keyword, 1.0)
