"""Pipeline-wide observability: metrics, spans, exporters, one switch.

The subsystem has three parts:

* :mod:`repro.obs.metrics` — counters, gauges, exponential-bucket
  histograms, and the :class:`MetricsRegistry` that owns them;
* :mod:`repro.obs.trace` — nestable context-manager :class:`Span`\\ s
  with attributes and ``perf_counter`` timing, handed out by a
  context-local :class:`Tracer`, plus the request-scoped
  :class:`TraceContext` (trace id + sampling decision) carried in a
  ``contextvars.ContextVar`` across thread pools and ``os.fork``;
* :mod:`repro.obs.flight` — the per-process :class:`FlightRecorder`
  ring of recent request trace records (sampled + always-kept notable);
* :mod:`repro.obs.export` — JSON, Prometheus text format, and
  human-readable span-tree renderings.

Everything hangs off one **module-level switch**.  Instrumented hot
paths call the gated accessors below (:func:`span`, :func:`counter`,
:func:`gauge`, :func:`histogram`); while the switch is off those return
shared no-op objects, so a disabled pipeline pays a single boolean check
per instrumentation point::

    from repro import obs

    obs.enable()
    with obs.span("reformulate", k=5) as sp:
        sp.set_attribute("n_suggestions", 5)
    print(obs.export.registry_to_prometheus(obs.registry()))

The *offline* stage records through :func:`registry` unconditionally —
a whole-vocabulary precompute runs for seconds, so its per-batch counter
updates are free, and keeping them always-on is what lets
:class:`~repro.offline.PrecomputeStats` stay a plain snapshot of the
same numbers the registry exports.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs import export
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_METRIC,
    NoopMetric,
    exponential_buckets,
)
from repro.obs.flight import FlightRecorder, merge_trace_snapshots
from repro.obs.trace import (
    MAX_TRACE_ID_LEN,
    NOOP_SPAN,
    NoopSpan,
    Span,
    TraceContext,
    Tracer,
    annotate_trace,
    current_trace,
    new_trace_id,
    reset_current_trace,
    sanitize_trace_id,
    set_current_trace,
    trace_scope,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopMetric",
    "NOOP_METRIC",
    "NoopSpan",
    "NOOP_SPAN",
    "Span",
    "TraceContext",
    "Tracer",
    "MAX_TRACE_ID_LEN",
    "annotate_trace",
    "current_trace",
    "new_trace_id",
    "reset_current_trace",
    "sanitize_trace_id",
    "set_current_trace",
    "trace_scope",
    "merge_trace_snapshots",
    "DEFAULT_SECONDS_BUCKETS",
    "exponential_buckets",
    "export",
    "is_enabled",
    "set_enabled",
    "enable",
    "disable",
    "enabled",
    "registry",
    "tracer",
    "span",
    "counter",
    "gauge",
    "histogram",
    "reset",
]

_ENABLED: bool = False
_REGISTRY = MetricsRegistry()
_TRACER = Tracer()


def is_enabled() -> bool:
    """True when instrumentation is recording."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Flip the global switch on or off."""
    global _ENABLED
    _ENABLED = bool(flag)


def enable() -> None:
    """Turn instrumentation on."""
    set_enabled(True)


def disable() -> None:
    """Turn instrumentation off (the default)."""
    set_enabled(False)


@contextmanager
def enabled(flag: bool = True) -> Iterator[None]:
    """Temporarily set the switch; restores the previous state."""
    previous = _ENABLED
    set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)


def registry() -> MetricsRegistry:
    """The process-wide metrics registry (always live, never gated)."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process-wide tracer behind :func:`span`."""
    return _TRACER


def span(name: str, **attributes):
    """A recording span when enabled, the shared no-op span otherwise."""
    if not _ENABLED:
        return NOOP_SPAN
    return _TRACER.span(name, **attributes)


def counter(name: str, help: str = "", **labels):
    """Registry counter when enabled, the shared no-op metric otherwise."""
    if not _ENABLED:
        return NOOP_METRIC
    return _REGISTRY.counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels):
    """Registry gauge when enabled, the shared no-op metric otherwise."""
    if not _ENABLED:
        return NOOP_METRIC
    return _REGISTRY.gauge(name, help, **labels)


def histogram(name: str, help: str = "", buckets=None, **labels):
    """Registry histogram when enabled, the no-op metric otherwise."""
    if not _ENABLED:
        return NOOP_METRIC
    return _REGISTRY.histogram(name, help, buckets=buckets, **labels)


def reset() -> None:
    """Clear the registry and retained spans (the switch is untouched)."""
    _REGISTRY.reset()
    _TRACER.reset()
