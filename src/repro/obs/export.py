"""Exporters: registry → JSON / Prometheus text, span → tree / dict.

Three consumers, three formats:

* **JSON** (:func:`registry_to_dict` / :func:`registry_to_json`) — the
  machine-readable dump written by ``repro stats``, the CLI's
  ``--metrics-out``, and the CI benchmark artifact;
* **Prometheus text format** (:func:`registry_to_prometheus`) — the
  scrape endpoint payload, with ``# HELP`` / ``# TYPE`` headers,
  escaped help text and label values, and cumulative ``_bucket``
  series ending in ``le="+Inf"``;
* **human-readable span trees** (:func:`render_span_tree`) — the
  ``--trace`` / ``repro explain`` view of one request.

``prometheus_from_dict`` re-serializes a previously dumped JSON export,
so metrics captured in one process (a benchmark run, a cron job) can be
re-emitted for scraping by another.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span

# --------------------------------------------------------------------- #
# registry → dict / JSON
# --------------------------------------------------------------------- #


def registry_to_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """JSON-able snapshot of every metric in *registry*.

    Histogram bucket bounds are ``(le, cumulative_count)`` pairs with
    the final ``+Inf`` bound spelled ``"+Inf"`` (JSON has no infinity).
    """
    metrics: List[Dict[str, Any]] = []
    for metric in registry.collect():
        entry: Dict[str, Any] = {
            "name": metric.name,
            "type": metric.kind,
            "help": metric.help,
            "labels": dict(metric.labels),
        }
        if isinstance(metric, Histogram):
            entry["sum"] = metric.sum
            entry["count"] = metric.count
            entry["buckets"] = [
                ["+Inf" if math.isinf(le) else le, count]
                for le, count in metric.cumulative_buckets()
            ]
            exemplars = metric.exemplars()
            if exemplars:
                # (le, value, trace_id) per bucket holding one: the JSON
                # export keeps them (classic Prometheus text cannot).
                entry["exemplars"] = [
                    ["+Inf" if math.isinf(le) else le, value, trace_id]
                    for le, value, trace_id in exemplars
                ]
        elif isinstance(metric, (Counter, Gauge)):
            entry["value"] = metric.value
        metrics.append(entry)
    return {"metrics": metrics}


def registry_to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The :func:`registry_to_dict` snapshot as a JSON document."""
    return json.dumps(registry_to_dict(registry), indent=indent)


# --------------------------------------------------------------------- #
# registry / dict → Prometheus text format
# --------------------------------------------------------------------- #


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line: backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(text: str) -> str:
    """Escape a label value: backslash, double quote, newline."""
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """Render one sample value (``+Inf`` aware, integers unpadded)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def _label_block(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def prometheus_from_dict(snapshot: Dict[str, Any]) -> str:
    """Prometheus text format from a :func:`registry_to_dict` snapshot."""
    lines: List[str] = []
    seen_headers = set()
    for entry in snapshot.get("metrics", []):
        name = entry["name"]
        kind = entry["type"]
        labels = {str(k): str(v) for k, v in entry.get("labels", {}).items()}
        if name not in seen_headers:
            help_text = entry.get("help") or ""
            if help_text:
                lines.append(f"# HELP {name} {escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            seen_headers.add(name)
        if kind == "histogram":
            for le, count in entry.get("buckets", []):
                bound = "+Inf" if le == "+Inf" else format_value(float(le))
                lines.append(
                    f"{name}_bucket{_label_block(labels, {'le': bound})} "
                    f"{format_value(float(count))}"
                )
            lines.append(
                f"{name}_sum{_label_block(labels)} "
                f"{format_value(float(entry.get('sum', 0.0)))}"
            )
            lines.append(
                f"{name}_count{_label_block(labels)} "
                f"{format_value(float(entry.get('count', 0)))}"
            )
        else:
            lines.append(
                f"{name}{_label_block(labels)} "
                f"{format_value(float(entry.get('value', 0.0)))}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def registry_to_prometheus(registry: MetricsRegistry) -> str:
    """Serialize *registry* in the Prometheus text exposition format."""
    return prometheus_from_dict(registry_to_dict(registry))


def merge_snapshots(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-process :func:`registry_to_dict` snapshots into one.

    Series are matched on ``(name, type, labels)``.  Counters and gauges
    sum their values (gauges in this codebase are occupancy/size numbers
    — in-flight requests, queue depth, mapped bytes — where the pool
    total is the meaningful fleet view); histograms sum ``sum``,
    ``count`` and per-bound bucket counts.  Help text comes from the
    first snapshot that mentions the series.

    This powers the pre-fork pool's ``GET /metrics/aggregate``: each
    worker spools its own snapshot, any worker merges them all.
    """
    merged: Dict[Any, Dict[str, Any]] = {}
    for snapshot in snapshots:
        for entry in snapshot.get("metrics", []):
            labels = {
                str(k): str(v) for k, v in entry.get("labels", {}).items()
            }
            key = (
                entry["name"],
                entry["type"],
                tuple(sorted(labels.items())),
            )
            slot = merged.get(key)
            if slot is None:
                slot = merged[key] = {
                    "name": entry["name"],
                    "type": entry["type"],
                    "help": entry.get("help", ""),
                    "labels": labels,
                }
                if entry["type"] == "histogram":
                    slot["sum"] = 0.0
                    slot["count"] = 0
                    slot["_buckets"] = {}
                    slot["_exemplars"] = {}
                else:
                    slot["value"] = 0.0
            if entry["type"] == "histogram":
                slot["sum"] += float(entry.get("sum", 0.0))
                slot["count"] += int(entry.get("count", 0))
                for le, count in entry.get("buckets", []):
                    bound = "+Inf" if le == "+Inf" else float(le)
                    slot["_buckets"][bound] = (
                        slot["_buckets"].get(bound, 0) + int(count)
                    )
                for le, value, trace_id in entry.get("exemplars", []):
                    # one exemplar per bound; later snapshots win, which
                    # is as good a tiebreak as any — each is a valid
                    # representative of the bucket.
                    bound = "+Inf" if le == "+Inf" else float(le)
                    slot["_exemplars"][bound] = [le, value, trace_id]
            else:
                slot["value"] += float(entry.get("value", 0.0))
    metrics: List[Dict[str, Any]] = []
    for slot in merged.values():
        buckets = slot.pop("_buckets", None)
        exemplars = slot.pop("_exemplars", None)
        if buckets is not None:
            slot["buckets"] = [
                ["+Inf" if bound == "+Inf" else bound, count]
                for bound, count in sorted(
                    buckets.items(),
                    key=lambda item: (
                        math.inf if item[0] == "+Inf" else item[0]
                    ),
                )
            ]
        if exemplars:
            slot["exemplars"] = [
                exemplars[bound]
                for bound in sorted(
                    exemplars,
                    key=lambda b: math.inf if b == "+Inf" else b,
                )
            ]
        metrics.append(slot)
    return {"metrics": metrics}


# --------------------------------------------------------------------- #
# span → tree / dict
# --------------------------------------------------------------------- #


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}µs"


def _format_attributes(attributes: Dict[str, Any]) -> str:
    if not attributes:
        return ""
    inner = ", ".join(
        f"{key}={value!r}" for key, value in attributes.items()
    )
    return f"  [{inner}]"


def render_span_tree(span: Span, indent: int = 0) -> str:
    """Indented human-readable rendering of one span tree."""
    pad = "  " * indent
    lines = [
        f"{pad}{span.name}  {_format_duration(span.duration)}"
        f"{_format_attributes(span.attributes)}"
    ]
    for child in span.children:
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)


def span_to_dict(span: Span) -> Dict[str, Any]:
    """JSON-able snapshot of one span tree."""
    return {
        "name": span.name,
        "duration_seconds": span.duration,
        "attributes": dict(span.attributes),
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(payload: Dict[str, Any]) -> Span:
    """Rebuild a renderable :class:`Span` tree from :func:`span_to_dict`
    output (durations are restored; absolute stamps are not kept)."""
    span = Span(str(payload.get("name", "?")), payload.get("attributes"))
    span.start_time = 0.0
    span.end_time = float(payload.get("duration_seconds", 0.0))
    span.children = [
        span_from_dict(child) for child in payload.get("children", [])
    ]
    return span


def render_trace_record(record: Dict[str, Any]) -> str:
    """Human-readable rendering of one flight-recorder request record.

    A header line (trace id, route, status, total latency, flags), the
    flat per-stage latencies, and — when the request was sampled into a
    span tree — the full tree via :func:`render_span_tree`.
    """
    flags = [
        flag
        for flag, on in (
            ("slow", record.get("slow")),
            ("degraded", record.get("degraded")),
            ("shed", record.get("shed")),
            ("error", record.get("error")),
        )
        if on
    ]
    duration = float(record.get("duration_s", 0.0))
    header = (
        f"trace {record.get('trace_id', '?')}  "
        f"{record.get('verb', '?')} {record.get('route', '?')}  "
        f"status={record.get('status', '?')}  "
        f"{_format_duration(duration)}"
    )
    if record.get("worker") is not None:
        header += f"  worker={record['worker']}"
    if flags:
        header += f"  [{','.join(flags)}]"
    lines = [header]
    stages = record.get("stages") or {}
    if stages:
        rendered = "  ".join(
            f"{stage}={_format_duration(float(seconds))}"
            for stage, seconds in stages.items()
        )
        lines.append(f"  stages: {rendered}")
    for key in ("degraded_mode", "shed_reason", "cache", "algorithm"):
        value = record.get(key)
        if value:
            lines.append(f"  {key}: {value}")
    tree = record.get("span_tree")
    if tree:
        lines.append(render_span_tree(span_from_dict(tree), indent=1))
    return "\n".join(lines)
