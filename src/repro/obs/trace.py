"""Nestable wall-clock spans and the thread-local tracer.

A :class:`Span` records a name, free-form attributes, and
``time.perf_counter`` start/end stamps.  :class:`Tracer` hands them out
as context managers and maintains a *per-thread* stack so nesting falls
out of lexical structure::

    tracer = Tracer()
    with tracer.span("reformulate", k=5) as root:
        with tracer.span("candidates") as sp:
            sp.set_attribute("sizes", [7, 7])

Completed **root** spans are retained on a bounded ring
(:attr:`Tracer.keep_roots`) so the CLI's ``--trace`` flag can render the
last request after the fact.  When the global switch in
:mod:`repro.obs` is off, instrumented code receives :data:`NOOP_SPAN`
instead and pays only the dispatch check.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional


class Span:
    """One timed operation: name, attributes, children, timing."""

    __slots__ = ("name", "attributes", "children", "start_time", "end_time")

    def __init__(
        self, name: str, attributes: Optional[Dict[str, Any]] = None
    ) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        self.start_time = time.perf_counter()
        self.end_time: Optional[float] = None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def finish(self) -> None:
        """Stamp the end time (idempotent)."""
        if self.end_time is None:
            self.end_time = time.perf_counter()

    @property
    def is_finished(self) -> bool:
        """True once :meth:`finish` ran."""
        return self.end_time is not None

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now while the span is still open)."""
        end = self.end_time if self.end_time is not None else time.perf_counter()
        return end - self.start_time

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
            f"{len(self.children)} children)"
        )


class NoopSpan:
    """Do-nothing span: the disabled-instrumentation fast path."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        """Discard the attribute."""

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


#: Shared no-op span; ``with NOOP_SPAN:`` costs two trivial calls.
NOOP_SPAN = NoopSpan()


class Tracer:
    """Hands out nested spans; keeps the last *keep_roots* root spans.

    The span stack is thread-local, so concurrent requests on different
    threads build independent trees; the finished-roots ring is shared
    (and lock-protected).
    """

    def __init__(self, keep_roots: int = 64) -> None:
        self.keep_roots = keep_roots
        self._local = threading.local()
        self._roots: Deque[Span] = deque(maxlen=keep_roots)
        self._roots_lock = threading.Lock()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child of the current span (or a new root) as a CM."""
        span = Span(name, attributes)
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.finish()
            stack.pop()
            if not stack:
                with self._roots_lock:
                    self._roots.append(span)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    def roots(self) -> List[Span]:
        """Completed root spans, oldest first."""
        with self._roots_lock:
            return list(self._roots)

    def last_root(self) -> Optional[Span]:
        """The most recently completed root span, or None."""
        with self._roots_lock:
            return self._roots[-1] if self._roots else None

    def reset(self) -> None:
        """Drop retained root spans (open spans are unaffected)."""
        with self._roots_lock:
            self._roots.clear()
