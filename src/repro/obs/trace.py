"""Nestable wall-clock spans, the context-local tracer, and the
request-scoped :class:`TraceContext`.

A :class:`Span` records a name, free-form attributes, and
``time.perf_counter`` start/end stamps.  :class:`Tracer` hands them out
as context managers and maintains a *context-local* stack (a
:class:`contextvars.ContextVar` holding an immutable tuple) so nesting
falls out of lexical structure::

    tracer = Tracer()
    with tracer.span("reformulate", k=5) as root:
        with tracer.span("candidates") as sp:
            sp.set_attribute("sizes", [7, 7])

Why contextvars instead of ``threading.local``:

* a fresh thread still starts with an empty stack (thread independence
  is preserved — each ``Thread`` begins in a copy of the *spawning*
  context, and the stack var is reset per-span by token);
* ``contextvars.copy_context()`` lets a thread-pool task *inherit* the
  submitting request's open spans (``Reformulator.reformulate_many``
  runs each task under a copied context, so per-query decode spans
  attach to the shared batch root instead of becoming orphan roots);
* ``os.fork`` copies the whole interpreter state, so a pre-fork worker
  inherits the master's trace context for free.

The stack is an **immutable tuple**: pushing stores a new tuple via
``ContextVar.set`` and popping restores the previous one with the set's
token.  Token-based restore is what makes span exit leak-proof — even
if a span's body raised, or left dangling children behind, closing the
span restores the exact stack that was in place when it opened, so the
next request on this thread/context starts clean.  A span whose body
raises is additionally marked errored (``error=True`` plus the
exception type) before it is finished.

Completed **root** spans are retained on a bounded ring
(:attr:`Tracer.keep_roots`) so the CLI's ``--trace`` flag can render the
last request after the fact.  When the global switch in
:mod:`repro.obs` is off, instrumented code receives :data:`NOOP_SPAN`
instead and pays only the dispatch check.

:class:`TraceContext` is the request-scoped identity carried alongside
the span stack: a trace id (generated, or echoed from a client's
``X-Request-Id``), the head-sampling decision, and a free-form
annotations dict that layers crossing the request (result cache,
degradation) write into.  Root spans opened while a trace context is
current are stamped with its ``trace_id``.
"""

from __future__ import annotations

import binascii
import os
import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar, Token
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple


class Span:
    """One timed operation: name, attributes, children, timing."""

    __slots__ = ("name", "attributes", "children", "start_time", "end_time")

    def __init__(
        self, name: str, attributes: Optional[Dict[str, Any]] = None
    ) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        self.start_time = time.perf_counter()
        self.end_time: Optional[float] = None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def mark_error(self, kind: str, message: Optional[str] = None) -> None:
        """Flag this span as errored (exception escaped its body)."""
        self.attributes["error"] = True
        self.attributes["error_type"] = kind
        if message:
            self.attributes["error_message"] = message

    def finish(self) -> None:
        """Stamp the end time (idempotent)."""
        if self.end_time is None:
            self.end_time = time.perf_counter()

    @property
    def is_finished(self) -> bool:
        """True once :meth:`finish` ran."""
        return self.end_time is not None

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now while the span is still open)."""
        end = self.end_time if self.end_time is not None else time.perf_counter()
        return end - self.start_time

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
            f"{len(self.children)} children)"
        )


class NoopSpan:
    """Do-nothing span: the disabled-instrumentation fast path."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        """Discard the attribute."""

    def mark_error(self, kind: str, message: Optional[str] = None) -> None:
        """Discard the error flag."""

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


#: Shared no-op span; ``with NOOP_SPAN:`` costs two trivial calls.
NOOP_SPAN = NoopSpan()


# --------------------------------------------------------------------- #
# request-scoped trace context
# --------------------------------------------------------------------- #

#: Accepted characters of a client-supplied request id; anything else is
#: stripped before the id is echoed back into a response header.
_REQUEST_ID_UNSAFE = re.compile(r"[^A-Za-z0-9._\-]")

#: Longest request id the server echoes (longer ids are truncated).
MAX_TRACE_ID_LEN = 64


def new_trace_id() -> str:
    """A fresh 16-hex-char request id (64 random bits)."""
    return binascii.hexlify(os.urandom(8)).decode("ascii")


def sanitize_trace_id(raw: Any) -> Optional[str]:
    """Validate/truncate a client-supplied ``X-Request-Id``.

    Keeps ``[A-Za-z0-9._-]`` only (header-safe, log-safe), truncates to
    :data:`MAX_TRACE_ID_LEN`; returns ``None`` when nothing usable
    survives, so the caller falls back to :func:`new_trace_id`.
    """
    if not isinstance(raw, str) or not raw:
        return None
    cleaned = _REQUEST_ID_UNSAFE.sub("", raw)[:MAX_TRACE_ID_LEN]
    return cleaned or None


class TraceContext:
    """Identity and sampling decision of one request.

    Carried in a :class:`contextvars.ContextVar` so it follows the
    request across thread-pool hops (via ``copy_context``) and into
    forked workers.  ``annotations`` is a free-form dict any layer under
    the request may write into (cache hit/miss, degraded mode, chosen
    algorithm); the access log and the flight recorder read it back at
    the end of the request.
    """

    __slots__ = ("trace_id", "sampled", "annotations")

    def __init__(
        self, trace_id: Optional[str] = None, sampled: bool = True
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.sampled = bool(sampled)
        self.annotations: Dict[str, Any] = {}

    def annotate(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one request-scoped annotation."""
        self.annotations[key] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext({self.trace_id!r}, sampled={self.sampled}, "
            f"{len(self.annotations)} annotations)"
        )


_TRACE_CONTEXT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current_trace() -> Optional[TraceContext]:
    """The request's :class:`TraceContext`, or ``None`` outside one."""
    return _TRACE_CONTEXT.get()


def set_current_trace(ctx: Optional[TraceContext]) -> Token:
    """Install *ctx* as the current trace; returns the reset token."""
    return _TRACE_CONTEXT.set(ctx)


def reset_current_trace(token: Token) -> None:
    """Restore the trace context that was current before ``set``."""
    _TRACE_CONTEXT.reset(token)


@contextmanager
def trace_scope(ctx: TraceContext) -> Iterator[TraceContext]:
    """``with trace_scope(TraceContext()) as ctx: ...`` — scoped install."""
    token = _TRACE_CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _TRACE_CONTEXT.reset(token)


def annotate_trace(key: str, value: Any) -> None:
    """Annotate the current trace context; no-op outside a request."""
    ctx = _TRACE_CONTEXT.get()
    if ctx is not None:
        ctx.annotations[key] = value


# --------------------------------------------------------------------- #
# tracer
# --------------------------------------------------------------------- #


class _SpanScope:
    """Context manager pushing/popping one span on a tracer's stack.

    A dedicated class (not ``@contextmanager``) keeps the per-span cost
    to two method calls and avoids a generator frame on the hot path.
    Exit restores the stack via the set-token, which is what guarantees
    no leak: whatever happened inside the body — exceptions, dangling
    children — the outer stack is reinstated exactly.
    """

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token: Optional[Token] = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        stack: Tuple[Span, ...] = tracer._stack_var.get()
        if stack:
            # list.append is atomic under the GIL, so a pool thread
            # attaching a child to the submitting request's open span
            # is safe without a lock.
            stack[-1].children.append(span)
        else:
            ctx = _TRACE_CONTEXT.get()
            if ctx is not None:
                span.attributes.setdefault("trace_id", ctx.trace_id)
        # Re-stamp: exclude any delay between Span construction and the
        # span actually opening.
        span.start_time = time.perf_counter()
        self._token = tracer._stack_var.set(stack + (span,))
        return span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        span = self._span
        if exc_type is not None:
            span.mark_error(exc_type.__name__, str(exc) if exc else None)
        span.finish()
        tracer = self._tracer
        token = self._token
        was_root = False
        try:
            if token is not None:
                was_root = token.old_value in ((), Token.MISSING)
                tracer._stack_var.reset(token)
        except ValueError:
            # Token from a different context (a span object smuggled
            # across threads) — fall back to truncating below the span.
            stack = tracer._stack_var.get()
            if span in stack:
                index = stack.index(span)
                was_root = index == 0
                tracer._stack_var.set(stack[:index])
        if was_root:
            with tracer._roots_lock:
                tracer._roots.append(span)
        return False


class Tracer:
    """Hands out nested spans; keeps the last *keep_roots* root spans.

    The span stack lives in a per-tracer :class:`ContextVar` of
    immutable tuples: concurrent requests on different threads (or
    contexts) build independent trees, while thread-pool tasks running
    under a *copied* context extend the submitting request's tree.  The
    finished-roots ring is shared (and lock-protected).
    """

    def __init__(self, keep_roots: int = 64) -> None:
        self.keep_roots = keep_roots
        self._stack_var: ContextVar[Tuple[Span, ...]] = ContextVar(
            f"repro_span_stack_{id(self)}", default=()
        )
        self._roots: Deque[Span] = deque(maxlen=keep_roots)
        self._roots_lock = threading.Lock()

    def span(self, name: str, **attributes: Any) -> _SpanScope:
        """Open a child of the current span (or a new root) as a CM."""
        return _SpanScope(self, Span(name, attributes))

    def current(self) -> Optional[Span]:
        """The innermost open span in this context, or None."""
        stack = self._stack_var.get()
        return stack[-1] if stack else None

    def roots(self) -> List[Span]:
        """Completed root spans, oldest first."""
        with self._roots_lock:
            return list(self._roots)

    def last_root(self) -> Optional[Span]:
        """The most recently completed root span, or None."""
        with self._roots_lock:
            return self._roots[-1] if self._roots else None

    def reset(self) -> None:
        """Drop retained root spans (open spans are unaffected)."""
        with self._roots_lock:
            self._roots.clear()
