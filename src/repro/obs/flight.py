"""Per-process flight recorder: a bounded ring of recent request traces.

The serving daemon cannot afford to keep every span tree, but the whole
point of request tracing is explaining the *interesting* requests after
the fact.  The recorder therefore keeps two rings:

* **sampled** — head-sampled requests (the ``TraceContext.sampled``
  decision, made at ingress from ``trace_sample_rate``): a rolling,
  statistically honest picture of normal traffic;
* **notable** — requests that were slow (``duration_s`` at or above the
  threshold), degraded, shed, or errored are *always* kept, regardless
  of the sampling decision, in their own ring so a burst of normal
  traffic can never evict the one trace worth reading.

Records are plain JSON-able dicts (trace id, route, status, stage
latencies, annotations, and — when spans were recorded — the full span
tree as ``span_to_dict`` output), so a snapshot can be spooled to disk
next to the metrics snapshots and merged across pre-fork workers by
whichever worker answers ``GET /debug/traces``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional


class FlightRecorder:
    """Bounded in-memory retention of recent request trace records.

    Thread-safe: the serving daemon's handler threads call
    :meth:`observe` concurrently while the metrics flusher snapshots.
    """

    def __init__(
        self, capacity: int = 64, slow_threshold_s: float = 0.5
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if slow_threshold_s < 0:
            raise ValueError("slow_threshold_s must be >= 0")
        self.capacity = capacity
        self.slow_threshold_s = slow_threshold_s
        self._sampled: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._notable: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seen = 0
        self._kept_sampled = 0
        self._kept_notable = 0

    def observe(self, record: Dict[str, Any]) -> bool:
        """Classify and maybe retain one finished-request record.

        Stamps ``slow`` and ``notable`` onto the record; returns True
        when the record was retained in either ring.
        """
        slow = (
            float(record.get("duration_s", 0.0)) >= self.slow_threshold_s
        )
        notable = bool(
            slow
            or record.get("degraded")
            or record.get("shed")
            or record.get("error")
        )
        record["slow"] = slow
        record["notable"] = notable
        with self._lock:
            self._seen += 1
            if notable:
                self._notable.append(record)
                self._kept_notable += 1
                return True
            if record.get("sampled"):
                self._sampled.append(record)
                self._kept_sampled += 1
                return True
        return False

    def snapshot(self) -> List[Dict[str, Any]]:
        """Retained records from both rings, oldest first by ``ts``."""
        with self._lock:
            records = list(self._sampled) + list(self._notable)
        return sorted(records, key=lambda r: r.get("ts", 0.0))

    def stats(self) -> Dict[str, int]:
        """Retention counters (requests seen / kept per ring)."""
        with self._lock:
            return {
                "seen": self._seen,
                "kept_sampled": self._kept_sampled,
                "kept_notable": self._kept_notable,
                "resident": len(self._sampled) + len(self._notable),
            }

    def clear(self) -> None:
        """Drop every retained record (counters are kept)."""
        with self._lock:
            self._sampled.clear()
            self._notable.clear()


def merge_trace_snapshots(
    snapshots: List[Dict[str, Any]], limit: int = 0
) -> Dict[str, Any]:
    """Merge per-worker flight-recorder spools into one ``/debug/traces``
    payload.

    Each *snapshot* is ``{"worker": i, "traces": [record, ...]}`` as
    written by the serving daemon's spool flusher.  Records are merged
    across workers and sorted by timestamp; a positive *limit* keeps
    only the newest *limit* records.
    """
    records: List[Dict[str, Any]] = []
    workers: List[int] = []
    for snapshot in snapshots:
        worker: Optional[int] = snapshot.get("worker")
        if worker is not None and worker not in workers:
            workers.append(worker)
        records.extend(snapshot.get("traces", []))
    records.sort(key=lambda r: r.get("ts", 0.0))
    if limit > 0:
        records = records[-limit:]
    return {
        "count": len(records),
        "workers": sorted(workers),
        "traces": records,
    }
