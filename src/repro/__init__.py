"""repro — reproduction of *Keyword Query Reformulation on Structured Data*
(Yao, Cui, Hua, Huang; ICDE 2012).

The package implements the paper's full pipeline plus every substrate it
depends on:

* :mod:`repro.storage` — in-memory relational engine (MySQL substitute);
* :mod:`repro.index` — field-aware inverted index (Lucene substitute);
* :mod:`repro.search` — keyword search over the tuple graph;
* :mod:`repro.graph` — TAT graph, contextual random walk, closeness;
* :mod:`repro.core` — HMM query generation, top-k Viterbi, A*;
* :mod:`repro.data` — deterministic synthetic DBLP corpus + workloads;
* :mod:`repro.server` — HTTP serving daemon with admission control,
  per-request deadlines and graceful degradation;
* :mod:`repro.eval` — metrics and simulated relevance judges;
* :mod:`repro.experiments` — drivers regenerating every table/figure.

Quickstart::

    from repro import Reformulator, synthesize_dblp

    corpus = synthesize_dblp()
    reformulator = Reformulator.from_database(corpus.database)
    for query in reformulator.reformulate(["probabilistic", "query"], k=5):
        print(f"{query.score:.2e}  {query.text}")
"""

from repro import obs
from repro.core import (
    ExplainResult,
    PositionBreakdown,
    Reformulator,
    ReformulatorConfig,
    ReformulationHMM,
    ScoredQuery,
    SuggestionExplanation,
    astar_topk,
    astar_topk_vec,
    brute_force_topk,
    viterbi_top1,
    viterbi_top1_vec,
    viterbi_topk,
    viterbi_topk_vec,
)
from repro.data import (
    SynthConfig,
    SynthesizedCorpus,
    TopicModel,
    WorkloadGenerator,
    synthesize_dblp,
)
from repro.errors import ReproError
from repro.extensions import FacetedSuggester, FeedbackAdaptor
from repro.graph import (
    ClosenessExtractor,
    CooccurrenceSimilarity,
    RandomWalkEngine,
    SimilarityExtractor,
    TATGraph,
)
from repro.index import Analyzer, FieldTerm, InvertedIndex
from repro.live import LiveReformulator
from repro.index.phrases import (
    PhraseAnalyzer,
    PhraseModel,
    learn_phrases_from_database,
)
from repro.offline import OfflinePrecomputer, PrecomputeStats, TermRelationStore
from repro.offline_store import ShardedTermRelationStore, migrate_v1_to_v2
from repro.search import KeywordSearchEngine, ResultRanker, ResultSizeEstimator
from repro.server import ReformulationServer, ServerClient, ServerConfig
from repro.serving import PlanCache, ResultCache
from repro.storage import (
    Column,
    Database,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
    TupleGraph,
)
from repro.storage.schemaspec import load_database, save_database
from repro.storage.triples import Literal, TripleStore

__version__ = "1.0.0"

__all__ = [
    "obs",
    "Reformulator",
    "ReformulatorConfig",
    "ReformulationHMM",
    "ScoredQuery",
    "ExplainResult",
    "PositionBreakdown",
    "SuggestionExplanation",
    "astar_topk",
    "astar_topk_vec",
    "brute_force_topk",
    "viterbi_top1",
    "viterbi_top1_vec",
    "viterbi_topk",
    "viterbi_topk_vec",
    "SynthConfig",
    "SynthesizedCorpus",
    "TopicModel",
    "WorkloadGenerator",
    "synthesize_dblp",
    "ReproError",
    "ClosenessExtractor",
    "CooccurrenceSimilarity",
    "RandomWalkEngine",
    "SimilarityExtractor",
    "TATGraph",
    "Analyzer",
    "FieldTerm",
    "InvertedIndex",
    "KeywordSearchEngine",
    "ResultRanker",
    "ResultSizeEstimator",
    "Column",
    "Database",
    "DatabaseSchema",
    "ForeignKey",
    "TableSchema",
    "TupleGraph",
    "FacetedSuggester",
    "FeedbackAdaptor",
    "PhraseAnalyzer",
    "PhraseModel",
    "learn_phrases_from_database",
    "OfflinePrecomputer",
    "PrecomputeStats",
    "TermRelationStore",
    "ShardedTermRelationStore",
    "migrate_v1_to_v2",
    "load_database",
    "save_database",
    "Literal",
    "TripleStore",
    "PlanCache",
    "ResultCache",
    "LiveReformulator",
    "ReformulationServer",
    "ServerClient",
    "ServerConfig",
    "__version__",
]
