"""Public facade: end-to-end keyword query reformulation.

Wires the offline stage (TAT graph, contextual random walk similarity,
closeness extraction) to the online stage (HMM + top-k decoding) behind
one object::

    from repro import Reformulator, synthesize_dblp

    corpus = synthesize_dblp()
    reformulator = Reformulator.from_database(corpus.database)
    for query in reformulator.reformulate(["probabilistic", "query"], k=5):
        print(query.text, query.score)

Three interchangeable method configurations mirror the paper's
experimental arms:

* ``method="tat"`` — contextual random-walk similarity + HMM (the paper's
  approach, "TAT-based Reformulation");
* ``method="cooccurrence"`` — same HMM but co-occurrence similarity
  (the "Co-occurrence reformulation" baseline);
* ``method="rank"`` — similarity-only combination without the HMM
  (the "Rank-based reformulation" baseline).
"""

from __future__ import annotations

import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.astar import (
    AStarOutcome,
    astar_topk,
    astar_topk_log,
    astar_topk_vec,
    astar_topk_vec_log,
)
from repro.core.candidates import CandidateListBuilder, CandidateState
from repro.core.enumeration import RankBasedReformulator, brute_force_topk
from repro.core.explain import (
    ExplainResult,
    explain_hmm_path,
    explain_rank_path,
)
from repro.core.hmm import IndexFrequency, ReformulationHMM
from repro.core.scoring import ScoredQuery
from repro.core.viterbi import (
    viterbi_top1,
    viterbi_top1_vec,
    viterbi_topk,
    viterbi_topk_log,
    viterbi_topk_vec,
    viterbi_topk_vec_log,
)
from repro.errors import ReformulationError
from repro.obs.trace import Tracer
from repro.graph.closeness import ClosenessExtractor
from repro.graph.cooccurrence import CooccurrenceSimilarity
from repro.graph.similarity import SimilarityExtractor
from repro.graph.tat import TATGraph
from repro.index.analyzer import Analyzer
from repro.index.inverted import InvertedIndex
from repro.storage.database import Database

METHODS = ("tat", "cooccurrence", "rank")
#: ``*_log`` variants decode in log space (sums over matrices logged
#: once, cached in the HMM/plan-cache) — same results, no underflow.
ALGORITHMS = (
    "astar", "viterbi_topk", "brute_force", "astar_log", "viterbi_topk_log",
)
#: Decode lanes: "vectorized" (batched numpy, the default) and
#: "reference" (plain Python loops, the auditable escape hatch).  Both
#: lanes are bit-identical — enforced by tests/decode_oracle.py — so the
#: choice never appears in plan-cache or result-cache keys.
DECODE_IMPLS = ("vectorized", "reference")

#: (algorithm, decode_impl) -> top-k decoder.  brute_force has a single
#: implementation: it *is* the oracle the lanes are checked against.
_TOPK_DECODERS = {
    ("astar", "reference"): astar_topk,
    ("astar", "vectorized"): astar_topk_vec,
    ("astar_log", "reference"): astar_topk_log,
    ("astar_log", "vectorized"): astar_topk_vec_log,
    ("viterbi_topk", "reference"): viterbi_topk,
    ("viterbi_topk", "vectorized"): viterbi_topk_vec,
    ("viterbi_topk_log", "reference"): viterbi_topk_log,
    ("viterbi_topk_log", "vectorized"): viterbi_topk_vec_log,
}


@dataclass(frozen=True)
class ReformulatorConfig:
    """All tunables of the pipeline in one place."""

    method: str = "tat"
    n_candidates: int = 10
    include_original: bool = True
    include_void: bool = False
    smoothing_lambda: float = 0.8
    damping: float = 0.85
    closeness_depth: int = 4
    closeness_beam: Optional[int] = 2000
    drop_identity: bool = True
    dedup_text: bool = True
    #: Definition 2: a keyword query consists of *distinct* keywords, so a
    #: reformulation that repeats a term is not a valid query.
    drop_repeated_terms: bool = True
    #: When set (0 < λ ≤ 1), re-rank suggestions with MMR diversification
    #: at this relevance/diversity trade-off; None keeps pure score order.
    diversify_trade_off: Optional[float] = None
    #: Serving fast path: memoize per-term candidate/frequency/similarity
    #: blocks and per-pair closeness sub-matrices across queries.  Cached
    #: and uncached pipelines return bit-identical suggestions.
    enable_plan_cache: bool = True
    #: LRU capacities of the plan cache's two layers.
    plan_cache_terms: int = 512
    plan_cache_pairs: int = 2048
    #: Capacity of the query-level result LRU kept by LiveReformulator
    #: (0 disables result caching; plain Reformulator has no result LRU).
    result_cache_size: int = 1024
    #: Which decode lane runs the online stage: "vectorized" (batched
    #: numpy) or "reference" (plain Python loops).  Bit-identical by
    #: contract, so flipping this never changes results — only speed.
    decode_impl: str = "vectorized"

    def validate(self) -> None:
        """Raise on out-of-range configuration values."""
        if self.method not in METHODS:
            raise ReformulationError(
                f"unknown method {self.method!r}, expected one of {METHODS}"
            )
        if self.n_candidates < 1:
            raise ReformulationError("n_candidates must be >= 1")
        if self.enable_plan_cache and (
            self.plan_cache_terms < 1 or self.plan_cache_pairs < 1
        ):
            raise ReformulationError("plan cache capacities must be >= 1")
        if self.result_cache_size < 0:
            raise ReformulationError("result_cache_size must be >= 0")
        if self.decode_impl not in DECODE_IMPLS:
            raise ReformulationError(
                f"unknown decode_impl {self.decode_impl!r}, "
                f"expected one of {DECODE_IMPLS}"
            )

    def plan_knobs(self) -> Tuple:
        """Fingerprint of every config value the cached plan blocks
        depend on (part of each plan-cache key)."""
        return (
            self.method,
            self.n_candidates,
            self.include_original,
            self.include_void,
            self.smoothing_lambda,
        )


class Reformulator:
    """End-to-end keyword query reformulation over one database."""

    def __init__(
        self,
        graph: TATGraph,
        config: Optional[ReformulatorConfig] = None,
        similarity=None,
        closeness=None,
    ) -> None:
        """Wire the online stage.

        ``similarity`` and ``closeness`` default to live extractors over
        *graph*; pass a precomputed
        :class:`~repro.offline.TermRelationStore` for both to serve
        queries purely from materialized relations.
        """
        self.config = config or ReformulatorConfig()
        self.config.validate()
        self.graph = graph
        if similarity is not None:
            self.similarity = similarity
        elif self.config.method == "cooccurrence":
            self.similarity = CooccurrenceSimilarity(graph)
        else:
            from repro.graph.randomwalk import RandomWalkEngine

            self.similarity = SimilarityExtractor(
                graph,
                engine=RandomWalkEngine(
                    graph.adjacency, damping=self.config.damping
                ),
            )
        self.closeness = closeness or ClosenessExtractor(
            graph,
            max_depth=self.config.closeness_depth,
            beam_width=self.config.closeness_beam,
        )
        self.candidates = CandidateListBuilder(
            graph,
            self.similarity,
            n_candidates=self.config.n_candidates,
            include_original=self.config.include_original,
            include_void=self.config.include_void,
        )
        self.frequency = IndexFrequency(graph)
        if self.config.enable_plan_cache:
            from repro.serving.plan_cache import PlanCache

            self.plan_cache: Optional[PlanCache] = PlanCache(
                candidates=self.candidates,
                closeness=self.closeness,
                frequency=self.frequency,
                smoothing_lambda=self.config.smoothing_lambda,
                max_terms=self.config.plan_cache_terms,
                max_pairs=self.config.plan_cache_pairs,
                knobs=self.config.plan_knobs(),
            )
        else:
            self.plan_cache = None
        self._parser = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_database(
        cls,
        database: Database,
        config: Optional[ReformulatorConfig] = None,
        analyzer: Optional[Analyzer] = None,
    ) -> "Reformulator":
        """Build index + TAT graph from a raw database and wrap them."""
        index = InvertedIndex(database, analyzer=analyzer).build()
        graph = TATGraph(database, index)
        return cls(graph, config)

    # ------------------------------------------------------------------ #
    # online stage
    # ------------------------------------------------------------------ #

    def build_hmm(self, keywords: Sequence[str]) -> ReformulationHMM:
        """Candidate extraction + HMM parameterization for one query.

        With the plan cache enabled the HMM is assembled from memoized
        per-term/per-pair blocks (bit-identical to the fresh build).
        """
        keywords = list(keywords)
        if self.plan_cache is not None:
            return self.plan_cache.build_hmm(keywords)
        states = self.candidates.build(keywords)
        return ReformulationHMM.build(
            query=keywords,
            states=states,
            closeness=self.closeness,
            frequency=self.frequency,
            smoothing_lambda=self.config.smoothing_lambda,
        )

    def reformulate(
        self,
        keywords: Sequence[str],
        k: int = 10,
        algorithm: str = "astar",
        explain: bool = False,
    ) -> Union[List[ScoredQuery], ExplainResult]:
        """Top-k reformulated queries for *keywords*, best first.

        With ``explain=True`` the return value is an
        :class:`~repro.core.explain.ExplainResult`: the same suggestions
        plus a per-position score decomposition (Eq 7-10 factors) and
        the request's span tree, recorded regardless of the global
        observability switch.
        """
        if explain:
            return self.explain(keywords, k=k, algorithm=algorithm)
        enabled = obs.is_enabled()
        start = time.perf_counter() if enabled else 0.0
        with obs.span(
            "reformulate",
            method=self.config.method,
            algorithm=algorithm,
            k=k,
        ) as root:
            out = self._run(list(keywords), k, algorithm, obs.span, None)
            root.set_attribute("n_suggestions", len(out))
        if enabled:
            registry = obs.registry()
            registry.counter(
                "repro_reformulate_requests_total",
                "Reformulation requests served",
                method=self.config.method,
                algorithm=algorithm,
            ).inc()
            registry.histogram(
                "repro_reformulate_seconds",
                "End-to-end reformulate latency",
            ).observe(time.perf_counter() - start)
        return out

    def reformulate_many(
        self,
        queries: Sequence[Sequence[str]],
        k: int = 10,
        algorithm: str = "astar",
        workers: int = 1,
    ) -> List[List[ScoredQuery]]:
        """Batched reformulation over a query set (serving fast path).

        Three batch-level optimizations on top of per-query serving:

        * **query dedup** — textually identical queries are decoded once
          and the result is fanned back to every occurrence;
        * **shared-term warmup** — every distinct term (and adjacent
          term pair) across the batch gets its plan-cache entry built
          exactly once, before any decode starts;
        * **decode fan-out** — with ``workers > 1`` the per-query decode
          runs on a thread pool.  The warmed plan cache makes the fanned
          work read-only, so this is safe; without a plan cache the
          batch falls back to sequential decode (the live extractors'
          internal caches are not thread-safe).

        Returns one suggestion list per input query, aligned with
        *queries*.  Results are identical to calling
        :meth:`reformulate` per query.
        """
        query_tuples = [tuple(q) for q in queries]
        unique = list(dict.fromkeys(query_tuples))
        enabled = obs.is_enabled()
        start = time.perf_counter() if enabled else 0.0
        with obs.span(
            "reformulate_many",
            queries=len(query_tuples),
            unique=len(unique),
            workers=workers,
        ) as root:
            if self.plan_cache is not None:
                with obs.span("plan_warm") as sp:
                    n_terms = self.plan_cache.warm(unique)
                    sp.set_attribute("distinct_terms", n_terms)
            else:
                workers = 1

            def solve(query: Tuple[str, ...]) -> List[ScoredQuery]:
                return self.reformulate(list(query), k=k, algorithm=algorithm)

            if workers > 1 and len(unique) > 1:
                # Pool threads start with an *empty* contextvars state,
                # so copy the submitting context here — on this thread,
                # before the fan-out — one copy per task (a single
                # Context cannot run twice concurrently).  Per-query
                # spans then attach to this batch's open span tree and
                # trace annotations land on the request's TraceContext
                # instead of vanishing.
                contexts = [contextvars.copy_context() for _ in unique]
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(
                        lambda task: task[0].run(solve, task[1]),
                        zip(contexts, unique),
                    ))
            else:
                results = [solve(query) for query in unique]
            root.set_attribute("n_results", len(results))
        by_query = dict(zip(unique, results))
        if enabled:
            registry = obs.registry()
            registry.counter(
                "repro_batch_requests_total",
                "reformulate_many invocations",
            ).inc()
            registry.counter(
                "repro_batch_queries_total",
                "Queries received through the batch API",
            ).inc(len(query_tuples))
            registry.counter(
                "repro_batch_unique_queries_total",
                "Distinct queries decoded by the batch API",
            ).inc(len(unique))
            registry.histogram(
                "repro_batch_seconds",
                "End-to-end reformulate_many latency",
            ).observe(time.perf_counter() - start)
        return [list(by_query[query]) for query in query_tuples]

    def explain(
        self,
        query: Union[str, Sequence[str]],
        k: int = 10,
        algorithm: str = "astar",
    ) -> ExplainResult:
        """Reformulate with a full trace and score decomposition.

        *query* may be a raw string (segmented against the corpus
        vocabulary, like :meth:`reformulate_text`) or a pre-tokenized
        keyword sequence.  A dedicated tracer records the span tree even
        when the global observability switch is off, so explain mode is
        always available as a paper-reproduction debugging tool.
        """
        tracer = Tracer()
        detail: Dict[str, object] = {}
        with tracer.span(
            "reformulate",
            method=self.config.method,
            algorithm=algorithm,
            k=k,
            explain=True,
        ) as root:
            with tracer.span("parse") as sp:
                if isinstance(query, str):
                    parsed = self.parser.parse(query)
                    keywords = list(parsed.keywords)
                    sp.set_attribute("raw", query)
                else:
                    keywords = list(query)
                    sp.set_attribute("pre_tokenized", True)
                sp.set_attribute("keywords", list(keywords))
            if not keywords:
                raise ReformulationError(f"query {query!r} has no keywords")
            suggestions = self._run(
                keywords, k, algorithm, tracer.span, detail
            )
            root.set_attribute("n_suggestions", len(suggestions))
        if "hmm" in detail:
            hmm: ReformulationHMM = detail["hmm"]  # type: ignore[assignment]
            explanations = [
                explain_hmm_path(hmm, suggestion)
                for suggestion in suggestions
            ]
        else:
            ranker: RankBasedReformulator = detail["rank"]  # type: ignore[assignment]
            explanations = [
                explain_rank_path(ranker.sorted_states, keywords, suggestion)
                for suggestion in suggestions
            ]
        return ExplainResult(
            query=tuple(keywords),
            suggestions=suggestions,
            explanations=explanations,
            trace=root,
            algorithm=algorithm if self.config.method != "rank" else "rank",
            method=self.config.method,
        )

    def _run(
        self,
        keywords: List[str],
        k: int,
        algorithm: str,
        span_fn,
        detail: Optional[Dict[str, object]],
    ) -> List[ScoredQuery]:
        """Shared instrumented pipeline behind reformulate/explain.

        *span_fn* is either the gated :func:`repro.obs.span` (normal
        serving: no-ops when the switch is off) or a dedicated tracer's
        ``span`` (explain mode: always recording).  *detail*, when given,
        receives the HMM (or rank combiner) for score decomposition.
        """
        if algorithm not in ALGORITHMS:
            raise ReformulationError(
                f"unknown algorithm {algorithm!r}, expected one of {ALGORITHMS}"
            )
        enabled = obs.is_enabled()
        with span_fn("candidates", n=self.config.n_candidates) as sp:
            if self.plan_cache is not None:
                plans = [self.plan_cache.term_plan(kw) for kw in keywords]
                states = [plan.state_list for plan in plans]
                sp.set_attribute("plan_cache", True)
            else:
                plans = None
                states = self.candidates.build(keywords)
            sizes = [len(lst) for lst in states]
            sp.set_attribute("sizes", sizes)
        if enabled:
            size_hist = obs.registry().histogram(
                "repro_candidates_per_position",
                "Candidate-list length per query position",
                buckets=[1, 2, 4, 8, 16, 32, 64, 128],
            )
            for size in sizes:
                size_hist.observe(size)

        want = k + self._slack(keywords)
        if self.config.method == "rank":
            with span_fn("decode", algorithm="rank") as sp:
                ranker = RankBasedReformulator(states)
                raw = ranker.topk(want)
                sp.set_attribute("raw_results", len(raw))
            if detail is not None:
                detail["rank"] = ranker
        else:
            with span_fn("hmm_build") as sp:
                if self.plan_cache is not None:
                    hmm = self.plan_cache.build_hmm(keywords, plans=plans)
                else:
                    hmm = ReformulationHMM.build(
                        query=keywords,
                        states=states,
                        closeness=self.closeness,
                        frequency=self.frequency,
                        smoothing_lambda=self.config.smoothing_lambda,
                    )
                sp.set_attribute("length", hmm.length)
                sp.set_attribute("search_space", hmm.search_space)
            impl = self.config.decode_impl
            with span_fn("decode", algorithm=algorithm, impl=impl) as sp:
                if algorithm in ("astar", "astar_log"):
                    search = _TOPK_DECODERS[(algorithm, impl)]
                    outcome = search(hmm, want)
                    raw = outcome.queries
                    sp.set_attribute("expanded", outcome.expanded)
                    sp.set_attribute("pushed", outcome.pushed)
                    sp.set_attribute("pruned", outcome.pruned)
                    if enabled:
                        registry = obs.registry()
                        registry.counter(
                            "repro_astar_expanded_total",
                            "A* partial paths popped from IP",
                        ).inc(outcome.expanded)
                        registry.counter(
                            "repro_astar_pushed_total",
                            "A* partial paths pushed onto IP",
                        ).inc(outcome.pushed)
                        registry.counter(
                            "repro_astar_pruned_total",
                            "A* zero-potential extensions dropped",
                        ).inc(outcome.pruned)
                elif algorithm in ("viterbi_topk", "viterbi_topk_log"):
                    raw = _TOPK_DECODERS[(algorithm, impl)](hmm, want)
                else:
                    raw = brute_force_topk(hmm, want)
                sp.set_attribute("raw_results", len(raw))
            if detail is not None:
                detail["hmm"] = hmm

        with span_fn("postprocess") as sp:
            out = self._postprocess(keywords, raw, k)
            sp.set_attribute("kept", len(out))
        return out

    def reformulate_text(
        self, raw_query: str, k: int = 10, algorithm: str = "astar"
    ) -> List[ScoredQuery]:
        """Reformulate a raw query string.

        The string is segmented against the corpus vocabulary first, so
        multi-word atomic terms (author names, venues) survive as single
        keywords — "spatio temporal christian s. jensen" parses into
        ["spatio", "temporal", "christian s. jensen"].
        """
        with obs.span("parse") as sp:
            parsed = self.parser.parse(raw_query)
            sp.set_attribute("raw", raw_query)
            sp.set_attribute("keywords", list(parsed.keywords))
        if not parsed.keywords:
            raise ReformulationError(f"query {raw_query!r} has no keywords")
        return self.reformulate(list(parsed.keywords), k=k, algorithm=algorithm)

    @property
    def parser(self):
        """Lazily built raw-string query parser."""
        if self._parser is None:
            from repro.core.queryparse import QueryParser

            self._parser = QueryParser(self.graph)
        return self._parser

    def reformulate_with_timing(
        self, keywords: Sequence[str], k: int = 10
    ) -> AStarOutcome:
        """Algorithm 3 with per-stage timings (Figure 8/9 instrumentation)."""
        hmm = self.build_hmm(keywords)
        search = _TOPK_DECODERS[("astar", self.config.decode_impl)]
        return search(hmm, k)

    def best(self, keywords: Sequence[str]) -> ScoredQuery:
        """The single best reformulation (plain Viterbi).

        Runs the configured decode lane; both lanes return the
        lexicographically smallest maximum-score path, bit-identically.
        """
        top1 = (
            viterbi_top1_vec
            if self.config.decode_impl == "vectorized"
            else viterbi_top1
        )
        return top1(self.build_hmm(keywords))

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _slack(self, keywords: Sequence[str]) -> int:
        """Extra paths to request so identity/duplicate removal still
        leaves k results (and MMR has a pool to diversify over)."""
        slack = 0
        if self.config.drop_identity:
            slack += 1
        if self.config.dedup_text:
            slack += len(keywords)
        if self.config.drop_repeated_terms:
            slack += 2 * len(keywords)
        if self.config.diversify_trade_off is not None:
            slack += 20
        return slack

    def _postprocess(
        self,
        keywords: Sequence[str],
        raw: List[ScoredQuery],
        k: int,
    ) -> List[ScoredQuery]:
        original = " ".join(keywords)
        seen_texts = set()
        out: List[ScoredQuery] = []
        diversify = self.config.diversify_trade_off
        # With diversification, keep the whole filtered pool and let MMR
        # pick the final k; otherwise cut as soon as k survive.
        limit = len(raw) if diversify is not None else k
        for query in raw:
            text = query.text
            if self.config.drop_identity and text == original:
                continue
            if self.config.drop_repeated_terms:
                kws = query.keywords
                if len(set(kws)) != len(kws):
                    continue
            if self.config.dedup_text:
                if text in seen_texts:
                    continue
                seen_texts.add(text)
            out.append(query)
            if len(out) >= limit:
                break
        if diversify is not None:
            from repro.core.diversify import mmr_diversify

            return mmr_diversify(out, k, trade_off=diversify)
        return out
