"""Public facade: end-to-end keyword query reformulation.

Wires the offline stage (TAT graph, contextual random walk similarity,
closeness extraction) to the online stage (HMM + top-k decoding) behind
one object::

    from repro import Reformulator, synthesize_dblp

    corpus = synthesize_dblp()
    reformulator = Reformulator.from_database(corpus.database)
    for query in reformulator.reformulate(["probabilistic", "query"], k=5):
        print(query.text, query.score)

Three interchangeable method configurations mirror the paper's
experimental arms:

* ``method="tat"`` — contextual random-walk similarity + HMM (the paper's
  approach, "TAT-based Reformulation");
* ``method="cooccurrence"`` — same HMM but co-occurrence similarity
  (the "Co-occurrence reformulation" baseline);
* ``method="rank"`` — similarity-only combination without the HMM
  (the "Rank-based reformulation" baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.astar import AStarOutcome, astar_topk
from repro.core.candidates import CandidateListBuilder, CandidateState
from repro.core.enumeration import RankBasedReformulator, brute_force_topk
from repro.core.hmm import IndexFrequency, ReformulationHMM
from repro.core.scoring import ScoredQuery
from repro.core.viterbi import viterbi_top1, viterbi_topk
from repro.errors import ReformulationError
from repro.graph.closeness import ClosenessExtractor
from repro.graph.cooccurrence import CooccurrenceSimilarity
from repro.graph.similarity import SimilarityExtractor
from repro.graph.tat import TATGraph
from repro.index.analyzer import Analyzer
from repro.index.inverted import InvertedIndex
from repro.storage.database import Database

METHODS = ("tat", "cooccurrence", "rank")
ALGORITHMS = ("astar", "viterbi_topk", "brute_force")


@dataclass(frozen=True)
class ReformulatorConfig:
    """All tunables of the pipeline in one place."""

    method: str = "tat"
    n_candidates: int = 10
    include_original: bool = True
    include_void: bool = False
    smoothing_lambda: float = 0.8
    damping: float = 0.85
    closeness_depth: int = 4
    closeness_beam: Optional[int] = 2000
    drop_identity: bool = True
    dedup_text: bool = True
    #: Definition 2: a keyword query consists of *distinct* keywords, so a
    #: reformulation that repeats a term is not a valid query.
    drop_repeated_terms: bool = True
    #: When set (0 < λ ≤ 1), re-rank suggestions with MMR diversification
    #: at this relevance/diversity trade-off; None keeps pure score order.
    diversify_trade_off: Optional[float] = None

    def validate(self) -> None:
        """Raise on out-of-range configuration values."""
        if self.method not in METHODS:
            raise ReformulationError(
                f"unknown method {self.method!r}, expected one of {METHODS}"
            )
        if self.n_candidates < 1:
            raise ReformulationError("n_candidates must be >= 1")


class Reformulator:
    """End-to-end keyword query reformulation over one database."""

    def __init__(
        self,
        graph: TATGraph,
        config: Optional[ReformulatorConfig] = None,
        similarity=None,
        closeness=None,
    ) -> None:
        """Wire the online stage.

        ``similarity`` and ``closeness`` default to live extractors over
        *graph*; pass a precomputed
        :class:`~repro.offline.TermRelationStore` for both to serve
        queries purely from materialized relations.
        """
        self.config = config or ReformulatorConfig()
        self.config.validate()
        self.graph = graph
        if similarity is not None:
            self.similarity = similarity
        elif self.config.method == "cooccurrence":
            self.similarity = CooccurrenceSimilarity(graph)
        else:
            from repro.graph.randomwalk import RandomWalkEngine

            self.similarity = SimilarityExtractor(
                graph,
                engine=RandomWalkEngine(
                    graph.adjacency, damping=self.config.damping
                ),
            )
        self.closeness = closeness or ClosenessExtractor(
            graph,
            max_depth=self.config.closeness_depth,
            beam_width=self.config.closeness_beam,
        )
        self.candidates = CandidateListBuilder(
            graph,
            self.similarity,
            n_candidates=self.config.n_candidates,
            include_original=self.config.include_original,
            include_void=self.config.include_void,
        )
        self.frequency = IndexFrequency(graph)
        self._parser = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_database(
        cls,
        database: Database,
        config: Optional[ReformulatorConfig] = None,
        analyzer: Optional[Analyzer] = None,
    ) -> "Reformulator":
        """Build index + TAT graph from a raw database and wrap them."""
        index = InvertedIndex(database, analyzer=analyzer).build()
        graph = TATGraph(database, index)
        return cls(graph, config)

    # ------------------------------------------------------------------ #
    # online stage
    # ------------------------------------------------------------------ #

    def build_hmm(self, keywords: Sequence[str]) -> ReformulationHMM:
        """Candidate extraction + HMM parameterization for one query."""
        states = self.candidates.build(list(keywords))
        return ReformulationHMM.build(
            query=keywords,
            states=states,
            closeness=self.closeness,
            frequency=self.frequency,
            smoothing_lambda=self.config.smoothing_lambda,
        )

    def reformulate(
        self,
        keywords: Sequence[str],
        k: int = 10,
        algorithm: str = "astar",
    ) -> List[ScoredQuery]:
        """Top-k reformulated queries for *keywords*, best first."""
        if algorithm not in ALGORITHMS:
            raise ReformulationError(
                f"unknown algorithm {algorithm!r}, expected one of {ALGORITHMS}"
            )
        if self.config.method == "rank":
            states = self.candidates.build(list(keywords))
            raw = RankBasedReformulator(states).topk(k + self._slack(keywords))
            return self._postprocess(keywords, raw, k)

        hmm = self.build_hmm(keywords)
        want = k + self._slack(keywords)
        if algorithm == "astar":
            raw = astar_topk(hmm, want).queries
        elif algorithm == "viterbi_topk":
            raw = viterbi_topk(hmm, want)
        else:
            raw = brute_force_topk(hmm, want)
        return self._postprocess(keywords, raw, k)

    def reformulate_text(
        self, raw_query: str, k: int = 10, algorithm: str = "astar"
    ) -> List[ScoredQuery]:
        """Reformulate a raw query string.

        The string is segmented against the corpus vocabulary first, so
        multi-word atomic terms (author names, venues) survive as single
        keywords — "spatio temporal christian s. jensen" parses into
        ["spatio", "temporal", "christian s. jensen"].
        """
        parsed = self.parser.parse(raw_query)
        if not parsed.keywords:
            raise ReformulationError(f"query {raw_query!r} has no keywords")
        return self.reformulate(list(parsed.keywords), k=k, algorithm=algorithm)

    @property
    def parser(self):
        """Lazily built raw-string query parser."""
        if self._parser is None:
            from repro.core.queryparse import QueryParser

            self._parser = QueryParser(self.graph)
        return self._parser

    def reformulate_with_timing(
        self, keywords: Sequence[str], k: int = 10
    ) -> AStarOutcome:
        """Algorithm 3 with per-stage timings (Figure 8/9 instrumentation)."""
        hmm = self.build_hmm(keywords)
        return astar_topk(hmm, k)

    def best(self, keywords: Sequence[str]) -> ScoredQuery:
        """The single best reformulation (plain Viterbi)."""
        return viterbi_top1(self.build_hmm(keywords))

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _slack(self, keywords: Sequence[str]) -> int:
        """Extra paths to request so identity/duplicate removal still
        leaves k results (and MMR has a pool to diversify over)."""
        slack = 0
        if self.config.drop_identity:
            slack += 1
        if self.config.dedup_text:
            slack += len(keywords)
        if self.config.drop_repeated_terms:
            slack += 2 * len(keywords)
        if self.config.diversify_trade_off is not None:
            slack += 20
        return slack

    def _postprocess(
        self,
        keywords: Sequence[str],
        raw: List[ScoredQuery],
        k: int,
    ) -> List[ScoredQuery]:
        original = " ".join(keywords)
        seen_texts = set()
        out: List[ScoredQuery] = []
        diversify = self.config.diversify_trade_off
        # With diversification, keep the whole filtered pool and let MMR
        # pick the final k; otherwise cut as soon as k survive.
        limit = len(raw) if diversify is not None else k
        for query in raw:
            text = query.text
            if self.config.drop_identity and text == original:
                continue
            if self.config.drop_repeated_terms:
                kws = query.keywords
                if len(set(kws)) != len(kws):
                    continue
            if self.config.dedup_text:
                if text in seen_texts:
                    continue
                seen_texts.add(text)
            out.append(query)
            if len(out) >= limit:
                break
        if diversify is not None:
            from repro.core.diversify import mmr_diversify

            return mmr_diversify(out, k, trade_off=diversify)
        return out
