"""Candidate hidden states per query position (Section V-B).

For each input keyword ``q_i`` the HMM's hidden-state alphabet at step *i*
is the similar-term extension list ``L(q_i)`` produced by the offline
stage, optionally extended with

* the **original** state — ``q_i`` itself, so a reformulation may keep
  some input terms ("allow the original term existing in the new
  reformulated query"), and
* the **void** state — deletion of the term ("or deletion of initial
  terms").

Both extensions are explicitly called out in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from repro.errors import EmptyCandidateError, ReformulationError, UnknownNodeError
from repro.graph.similarity import SimilarNode
from repro.graph.tat import TATGraph


class StateKind(enum.Enum):
    """The three hidden-state families of Section V-B."""
    SIMILAR = "similar"
    ORIGINAL = "original"
    VOID = "void"


@dataclass(frozen=True)
class CandidateState:
    """One hidden state: a term node (or void) with its emission affinity."""

    kind: StateKind
    node_id: Optional[int]  # None for void
    text: Optional[str]     # None for void
    sim: float              # raw (unnormalized) similarity to the query term

    @property
    def is_void(self) -> bool:
        """True for the deletion state."""
        return self.kind is StateKind.VOID


class SimilarityBackend(Protocol):
    """What candidate building needs from a similarity provider.

    Both :class:`~repro.graph.similarity.SimilarityExtractor` and
    :class:`~repro.graph.cooccurrence.CooccurrenceSimilarity` satisfy it.
    """

    def similar_nodes(self, node_id: int, top_n: int) -> List[SimilarNode]:
        """Top-n same-class similar nodes of *node_id*."""
        ...


class CandidateListBuilder:
    """Builds the per-position hidden-state lists for a query.

    Parameters
    ----------
    graph:
        The TAT graph (resolves keyword text to term nodes).
    similarity:
        Offline similarity backend (contextual walk or co-occurrence).
    n_candidates:
        Size of each similar-term extension list (the paper's *n*).
    include_original:
        Add the original-term state at every position.
    include_void:
        Add the deletion state at every position.
    void_sim:
        Raw emission affinity of the void state (small, so deletion only
        wins when nothing else is cohesive).
    """

    def __init__(
        self,
        graph: TATGraph,
        similarity: SimilarityBackend,
        n_candidates: int = 10,
        include_original: bool = True,
        include_void: bool = False,
        void_sim: float = 1e-4,
    ) -> None:
        if n_candidates < 1:
            raise ReformulationError("n_candidates must be >= 1")
        if void_sim <= 0:
            raise ReformulationError("void_sim must be positive")
        self.graph = graph
        self.similarity = similarity
        self.n_candidates = n_candidates
        self.include_original = include_original
        self.include_void = include_void
        self.void_sim = void_sim

    # ------------------------------------------------------------------ #
    # building
    # ------------------------------------------------------------------ #

    def candidates_for(self, keyword: str) -> List[CandidateState]:
        """The hidden-state list ``L(q_i)`` for one query keyword.

        Unknown keywords (absent from the corpus) yield only the original
        state (emission 1.0): the term cannot be substituted, but it should
        not kill the whole query.
        """
        try:
            node_id = self.graph.resolve_text_one(keyword)
        except UnknownNodeError:
            states = [
                CandidateState(StateKind.ORIGINAL, None, keyword, 1.0)
            ]
            if self.include_void:
                states.append(self._void_state())
            return states

        states: List[CandidateState] = []
        similar = self.similarity.similar_nodes(node_id, self.n_candidates)
        for sim_node in similar:
            node = self.graph.node(sim_node.node_id)
            states.append(
                CandidateState(
                    StateKind.SIMILAR,
                    sim_node.node_id,
                    node.text or str(node),
                    sim_node.score,
                )
            )
        if self.include_original:
            # The original term is a perfect match for itself; give it the
            # strongest raw affinity in the list so normalization keeps it
            # competitive but not overwhelming.
            best = max((s.sim for s in states), default=1.0)
            states.insert(
                0,
                CandidateState(StateKind.ORIGINAL, node_id, keyword, best),
            )
        if self.include_void:
            states.append(self._void_state())
        if not states:
            raise EmptyCandidateError(
                f"keyword {keyword!r}: no candidate states"
            )
        return states

    def build(self, keywords: Sequence[str]) -> List[List[CandidateState]]:
        """Candidate lists for every position of a query.

        Repeated keywords share one computed list: candidate resolution
        hits the similarity backend once per *distinct* term, and the
        positions of a duplicated term reference the same list object.
        """
        if not keywords:
            raise ReformulationError("empty query")
        memo: dict = {}
        lists: List[List[CandidateState]] = []
        for kw in keywords:
            if kw not in memo:
                memo[kw] = self.candidates_for(kw)
            lists.append(memo[kw])
        return lists

    def _void_state(self) -> CandidateState:
        return CandidateState(StateKind.VOID, None, None, self.void_sim)
