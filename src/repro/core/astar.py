"""Algorithm 3: Viterbi-initialized A* search for top-k reformulations.

Two stages, as in the paper:

1. a Viterbi pass computes, for every (step, state), the best score any
   completion through that state can still achieve — the admissible
   heuristic ``h`` (Eq 10's factorization makes it a backward
   max-product);
2. a best-first search over partial paths expands the candidate with the
   highest potential ``g · h`` first, so the k-th complete path popped is
   guaranteed optimal and large parts of the state space are never
   touched.

The paper runs its Viterbi forward and grows paths from the tail; we run
the (equivalent, mirrored) backward Viterbi and grow paths from the head —
``h[c][i]`` is the best achievable score of the *suffix* starting at state
*i* of step *c*.  Both formulations visit the same number of states and
return the same queries.

Decode lanes and tie-breaks
---------------------------
The heap is keyed ``(-priority, path)``: among equal potentials the
lexicographically smallest partial path pops first, which makes the
sequence of completed paths — and therefore the returned top-k — follow
the repo-wide contract ``(score desc, path lex asc)`` deterministically
(see :mod:`repro.core.viterbi` for the full contract).  A partial path
is always a strict lexicographic prefix-extension of its parent, so
completions of a smaller prefix surface before completions of an
equally-ranked larger one.

:func:`astar_topk` is the reference lane (``decode_impl="reference"``):
it eagerly pushes every extension of a popped path with scalar Python
arithmetic.  :func:`astar_topk_vec` is the vectorized lane: one batched
numpy product scores all extensions of a popped path across the
candidate axis at once, and the frontier is kept *lazy* — children are
pushed in best-first order and each child materializes its next sibling
only when popped.  The heap therefore holds ~2 entries per expansion
instead of ``n``, a beam-style frontier pruning driven by the Eq 10
admissible backward heuristic that remains exact: the pop sequence is
provably identical to the eager reference lane, so results are
bit-identical (both lanes score extensions ``(g · trans) · emis``).

The two stage timings are surfaced separately because Figure 8 of the
paper reports them separately.

:func:`astar_topk_log` / :func:`astar_topk_vec_log` are the same search
in log space: potentials are sums of ``log``-matrices instead of
products, so deep queries cannot underflow the priority to an
indistinguishable 0 and the per-extension multiplications become
additions over matrices that were logged once (cached in the HMM's log
lane, pre-seeded by the serving plan cache).  A ``-inf`` potential is
the log-space image of zero potential.  Returned queries are re-scored
with Eq 10 in probability space.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.hmm import ReformulationHMM
from repro.core.scoring import ScoredQuery
from repro.errors import ReformulationError


@dataclass(frozen=True)
class AStarOutcome:
    """Top-k queries plus per-stage diagnostics for Figure 8/9."""

    queries: List[ScoredQuery]
    viterbi_seconds: float
    astar_seconds: float
    expanded: int  # number of partial paths popped from IP
    pushed: int = 0  # partial paths ever pushed onto IP
    pruned: int = 0  # kept for API compatibility; lex-exact lanes never drop

    @property
    def total_seconds(self) -> float:
        """Sum of the two stage timings."""
        return self.viterbi_seconds + self.astar_seconds


def backward_heuristic(hmm: ReformulationHMM) -> List[np.ndarray]:
    """h[c][i]: max achievable product over steps c+1..m-1 given state i
    at step c (already excluding step c's own emission)."""
    h: List[np.ndarray] = [np.ones(hmm.n_states(c)) for c in range(hmm.length)]
    for step in range(hmm.length - 2, -1, -1):
        trans = hmm.transitions[step]          # (n_step, n_{step+1})
        emis = hmm.emissions[step + 1]
        future = trans * (emis * h[step + 1])[None, :]
        h[step] = future.max(axis=1)
    return h


def backward_heuristic_log(hmm: ReformulationHMM) -> List[np.ndarray]:
    """Log-space twin of :func:`backward_heuristic`: max achievable
    log-score of the suffix starting at each (step, state)."""
    h: List[np.ndarray] = [
        np.zeros(hmm.n_states(c)) for c in range(hmm.length)
    ]
    for step in range(hmm.length - 2, -1, -1):
        trans = hmm.log_transitions[step]      # (n_step, n_{step+1})
        emis = hmm.log_emissions[step + 1]
        future = trans + (emis + h[step + 1])[None, :]
        h[step] = future.max(axis=1)
    return h


def astar_topk(hmm: ReformulationHMM, k: int) -> AStarOutcome:
    """Run Algorithm 3 (reference lane) — the exact top-k reformulations."""
    if k < 1:
        raise ReformulationError("k must be >= 1")

    t0 = time.perf_counter()
    h = backward_heuristic(hmm)
    t1 = time.perf_counter()

    # Priority queue of incomplete paths IP; heapq is a min-heap so we
    # store negated priorities.  The path tuple itself is the tiebreaker:
    # equal potentials pop in lexicographic path order.
    ip: List[Tuple[float, Tuple[int, ...], float]] = []
    pushed = 0
    for i in range(hmm.n_states(0)):
        g = float(hmm.pi[i] * hmm.emissions[0][i])
        priority = g * float(h[0][i])
        heapq.heappush(ip, (-priority, (i,), g))
        pushed += 1

    complete: List[ScoredQuery] = []
    expanded = 0
    m = hmm.length
    while ip and len(complete) < k:
        _neg_priority, path, g = heapq.heappop(ip)
        expanded += 1
        step = len(path)
        if step == m:
            complete.append(hmm.scored_query(path))
            continue
        trans = hmm.transitions[step - 1]
        last = path[-1]
        emis = hmm.emissions[step]
        for j in range(hmm.n_states(step)):
            g_next = g * float(trans[last, j]) * float(emis[j])
            priority = g_next * float(h[step][j])
            heapq.heappush(ip, (-priority, path + (j,), g_next))
            pushed += 1
    t2 = time.perf_counter()

    complete.sort(key=lambda q: (-q.score, q.state_path))
    return AStarOutcome(
        queries=complete,
        viterbi_seconds=t1 - t0,
        astar_seconds=t2 - t1,
        expanded=expanded,
        pushed=pushed,
    )


def astar_topk_log(hmm: ReformulationHMM, k: int) -> AStarOutcome:
    """Algorithm 3 over summed log-probabilities (no underflow possible).

    Mirrors :func:`astar_topk` exactly: identical expansion order up to
    floating-point rounding of ``log``, identical lexicographic
    tie-break, and the returned queries carry probability-space Eq 10
    scores.
    """
    if k < 1:
        raise ReformulationError("k must be >= 1")

    t0 = time.perf_counter()
    h = backward_heuristic_log(hmm)
    t1 = time.perf_counter()

    log_pi = hmm.log_pi
    log_emis0 = hmm.log_emissions[0]
    ip: List[Tuple[float, Tuple[int, ...], float]] = []
    pushed = 0
    for i in range(hmm.n_states(0)):
        g = float(log_pi[i] + log_emis0[i])
        priority = g + float(h[0][i])
        heapq.heappush(ip, (-priority, (i,), g))
        pushed += 1

    complete: List[ScoredQuery] = []
    expanded = 0
    m = hmm.length
    while ip and len(complete) < k:
        _neg_priority, path, g = heapq.heappop(ip)
        expanded += 1
        step = len(path)
        if step == m:
            complete.append(hmm.scored_query(path))
            continue
        trans = hmm.log_transitions[step - 1]
        last = path[-1]
        emis = hmm.log_emissions[step]
        for j in range(hmm.n_states(step)):
            g_next = g + float(trans[last, j]) + float(emis[j])
            priority = g_next + float(h[step][j])
            heapq.heappush(ip, (-priority, path + (j,), g_next))
            pushed += 1
    t2 = time.perf_counter()

    complete.sort(key=lambda q: (-q.score, q.state_path))
    return AStarOutcome(
        queries=complete,
        viterbi_seconds=t1 - t0,
        astar_seconds=t2 - t1,
        expanded=expanded,
        pushed=pushed,
    )


# ---------------------------------------------------------------------------
# Vectorized lane: batched extension scoring + lazy sibling frontier
# ---------------------------------------------------------------------------

# A frontier context holds every child of one expanded path, scored in a
# single batched product: (parent_path, order, gs, priorities) where
# ``order`` lists child states best-first under (-priority, state asc).
_Ctx = Tuple[Tuple[int, ...], np.ndarray, np.ndarray, np.ndarray]


def _push_child(ip: list, ctx: _Ctx, rank: int) -> None:
    parent_path, order, gs, prios = ctx
    j = int(order[rank])
    heapq.heappush(
        ip, (-float(prios[j]), parent_path + (j,), float(gs[j]), ctx, rank)
    )


def _astar_topk_vec(hmm: ReformulationHMM, k: int, log_space: bool) -> AStarOutcome:
    """Shared vectorized core for :func:`astar_topk_vec` / ``_vec_log``.

    Identical pop sequence to the eager reference lane: children of an
    expanded path are sorted best-first (stable, so ties fall to the
    lowest candidate index); only the best child is pushed, and a popped
    child pushes its next sibling.  A deferred sibling's heap key is
    never smaller than its predecessor's, so the global pop order — and
    therefore the returned top-k — is unchanged while the heap stays
    ~2 entries per expansion instead of ``n``.
    """
    if k < 1:
        raise ReformulationError("k must be >= 1")

    t0 = time.perf_counter()
    h = backward_heuristic_log(hmm) if log_space else backward_heuristic(hmm)
    t1 = time.perf_counter()

    if log_space:
        g0 = np.asarray(hmm.log_pi + hmm.log_emissions[0], dtype=np.float64)
        p0 = g0 + h[0]
    else:
        g0 = np.asarray(hmm.pi * hmm.emissions[0], dtype=np.float64)
        p0 = g0 * h[0]

    ip: list = []
    root_ctx: _Ctx = ((), np.argsort(-p0, kind="stable"), g0, p0)
    _push_child(ip, root_ctx, 0)
    pushed = 1

    complete: List[ScoredQuery] = []
    expanded = 0
    m = hmm.length
    while ip and len(complete) < k:
        _neg_priority, path, g, ctx, rank = heapq.heappop(ip)
        expanded += 1
        # Materialize the deferred sibling of the entry we just consumed.
        if rank + 1 < ctx[1].shape[0]:
            _push_child(ip, ctx, rank + 1)
            pushed += 1
        step = len(path)
        if step == m:
            complete.append(hmm.scored_query(path))
            continue
        if log_space:
            trans_row = hmm.log_transitions[step - 1][path[-1]]
            gs = g + trans_row + hmm.log_emissions[step]
            prios = gs + h[step]
        else:
            trans_row = hmm.transitions[step - 1][path[-1]]
            gs = g * trans_row * hmm.emissions[step]
            prios = gs * h[step]
        child_ctx: _Ctx = (path, np.argsort(-prios, kind="stable"), gs, prios)
        _push_child(ip, child_ctx, 0)
        pushed += 1
    t2 = time.perf_counter()

    complete.sort(key=lambda q: (-q.score, q.state_path))
    return AStarOutcome(
        queries=complete,
        viterbi_seconds=t1 - t0,
        astar_seconds=t2 - t1,
        expanded=expanded,
        pushed=pushed,
    )


def astar_topk_vec(hmm: ReformulationHMM, k: int) -> AStarOutcome:
    """Vectorized twin of :func:`astar_topk` (bit-identical results)."""
    return _astar_topk_vec(hmm, k, log_space=False)


def astar_topk_vec_log(hmm: ReformulationHMM, k: int) -> AStarOutcome:
    """Vectorized twin of :func:`astar_topk_log` (bit-identical results)."""
    return _astar_topk_vec(hmm, k, log_space=True)
