"""Algorithm 3: Viterbi-initialized A* search for top-k reformulations.

Two stages, as in the paper:

1. a Viterbi pass computes, for every (step, state), the best score any
   completion through that state can still achieve — the admissible
   heuristic ``h``;
2. a best-first search over partial paths expands the candidate with the
   highest potential ``g · h`` first, so the k-th complete path popped is
   guaranteed optimal and large parts of the state space are never
   touched.

The paper runs its Viterbi forward and grows paths from the tail; we run
the (equivalent, mirrored) backward Viterbi and grow paths from the head —
``h[c][i]`` is the best achievable score of the *suffix* starting at state
*i* of step *c*.  Both formulations visit the same number of states and
return the same queries.

The two stage timings are surfaced separately because Figure 8 of the
paper reports them separately.

:func:`astar_topk_log` is the same search in log space: potentials are
sums of ``log``-matrices instead of products, so deep queries cannot
underflow the priority to an indistinguishable 0 and the per-extension
multiplications become additions over matrices that were logged once
(cached in the HMM's log lane, pre-seeded by the serving plan cache).
Returned queries are re-scored with Eq 10 in probability space.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.hmm import ReformulationHMM
from repro.core.scoring import ScoredQuery
from repro.errors import ReformulationError


@dataclass(frozen=True)
class AStarOutcome:
    """Top-k queries plus per-stage diagnostics for Figure 8/9."""

    queries: List[ScoredQuery]
    viterbi_seconds: float
    astar_seconds: float
    expanded: int  # number of partial paths popped from IP
    pushed: int = 0  # partial paths ever pushed onto IP
    pruned: int = 0  # zero-potential extensions dropped without a push

    @property
    def total_seconds(self) -> float:
        """Sum of the two stage timings."""
        return self.viterbi_seconds + self.astar_seconds


def backward_heuristic(hmm: ReformulationHMM) -> List[np.ndarray]:
    """h[c][i]: max achievable product over steps c+1..m-1 given state i
    at step c (already excluding step c's own emission)."""
    h: List[np.ndarray] = [np.ones(hmm.n_states(c)) for c in range(hmm.length)]
    for step in range(hmm.length - 2, -1, -1):
        trans = hmm.transitions[step]          # (n_step, n_{step+1})
        emis = hmm.emissions[step + 1]
        future = trans * (emis * h[step + 1])[None, :]
        h[step] = future.max(axis=1)
    return h


def astar_topk(hmm: ReformulationHMM, k: int) -> AStarOutcome:
    """Run Algorithm 3 and return the exact top-k reformulations."""
    if k < 1:
        raise ReformulationError("k must be >= 1")

    t0 = time.perf_counter()
    h = backward_heuristic(hmm)
    t1 = time.perf_counter()

    # Priority queue of incomplete paths IP; heapq is a min-heap so we
    # store negated priorities.  The tiebreaker counter keeps comparisons
    # away from the path tuples.
    counter = itertools.count()
    ip: List[Tuple[float, int, float, Tuple[int, ...]]] = []
    pushed = 0
    pruned = 0
    for i in range(hmm.n_states(0)):
        g = float(hmm.pi[i] * hmm.emissions[0][i])
        priority = g * float(h[0][i])
        heapq.heappush(ip, (-priority, next(counter), g, (i,)))
        pushed += 1

    complete: List[ScoredQuery] = []
    expanded = 0
    m = hmm.length
    while ip and len(complete) < k:
        neg_priority, _tick, g, path = heapq.heappop(ip)
        expanded += 1
        step = len(path)
        if step == m:
            complete.append(hmm.scored_query(path))
            continue
        # Optimality pruning: if even the best completion of the best
        # remaining partial path cannot appear, the loop ends naturally
        # because priorities are monotonically non-increasing.
        trans = hmm.transitions[step - 1] if step >= 1 else None
        last = path[-1]
        emis = hmm.emissions[step]
        for j in range(hmm.n_states(step)):
            g_next = g * float(trans[last, j]) * float(emis[j])
            priority = g_next * float(h[step][j])
            if priority <= 0 and len(complete) + len(ip) >= k:
                # zero-potential extensions can never beat anything; keep
                # them only if we might otherwise run out of paths.
                pruned += 1
                continue
            heapq.heappush(ip, (-priority, next(counter), g_next, path + (j,)))
            pushed += 1
    t2 = time.perf_counter()

    complete.sort(key=lambda q: (-q.score, q.state_path))
    return AStarOutcome(
        queries=complete,
        viterbi_seconds=t1 - t0,
        astar_seconds=t2 - t1,
        expanded=expanded,
        pushed=pushed,
        pruned=pruned,
    )


def backward_heuristic_log(hmm: ReformulationHMM) -> List[np.ndarray]:
    """Log-space twin of :func:`backward_heuristic`: max achievable
    log-score of the suffix starting at each (step, state)."""
    h: List[np.ndarray] = [
        np.zeros(hmm.n_states(c)) for c in range(hmm.length)
    ]
    for step in range(hmm.length - 2, -1, -1):
        trans = hmm.log_transitions[step]      # (n_step, n_{step+1})
        emis = hmm.log_emissions[step + 1]
        future = trans + (emis + h[step + 1])[None, :]
        h[step] = future.max(axis=1)
    return h


def astar_topk_log(hmm: ReformulationHMM, k: int) -> AStarOutcome:
    """Algorithm 3 over summed log-probabilities (no underflow possible).

    Mirrors :func:`astar_topk` exactly: identical expansion order up to
    floating-point rounding of ``log``, identical pruning rule (a
    ``-inf`` potential is the log-space image of zero potential), and
    the returned queries carry probability-space Eq 10 scores.
    """
    if k < 1:
        raise ReformulationError("k must be >= 1")

    t0 = time.perf_counter()
    h = backward_heuristic_log(hmm)
    t1 = time.perf_counter()

    log_pi = hmm.log_pi
    log_emis0 = hmm.log_emissions[0]
    counter = itertools.count()
    ip: List[Tuple[float, int, float, Tuple[int, ...]]] = []
    pushed = 0
    pruned = 0
    for i in range(hmm.n_states(0)):
        g = float(log_pi[i] + log_emis0[i])
        priority = g + float(h[0][i])
        heapq.heappush(ip, (-priority, next(counter), g, (i,)))
        pushed += 1

    complete: List[ScoredQuery] = []
    expanded = 0
    m = hmm.length
    while ip and len(complete) < k:
        neg_priority, _tick, g, path = heapq.heappop(ip)
        expanded += 1
        step = len(path)
        if step == m:
            complete.append(hmm.scored_query(path))
            continue
        trans = hmm.log_transitions[step - 1] if step >= 1 else None
        last = path[-1]
        emis = hmm.log_emissions[step]
        for j in range(hmm.n_states(step)):
            g_next = g + float(trans[last, j]) + float(emis[j])
            priority = g_next + float(h[step][j])
            if priority == float("-inf") and len(complete) + len(ip) >= k:
                # -inf potential == zero probability: can never beat
                # anything; keep only if we might run out of paths.
                pruned += 1
                continue
            heapq.heappush(ip, (-priority, next(counter), g_next, path + (j,)))
            pushed += 1
    t2 = time.perf_counter()

    complete.sort(key=lambda q: (-q.score, q.state_path))
    return AStarOutcome(
        queries=complete,
        viterbi_seconds=t1 - t0,
        astar_seconds=t2 - t1,
        expanded=expanded,
        pushed=pushed,
        pruned=pruned,
    )
