"""Exhaustive and rank-based query generation.

Two purposes:

* :func:`brute_force_topk` enumerates the full ``n^m`` space and scores
  every path with Eq 10 — the correctness oracle for Algorithm 2 and
  Algorithm 3 in the tests (only usable for small n, m);
* :class:`RankBasedReformulator` is the paper's first baseline: combine
  the per-position similar-term lists by **similarity alone**, ignoring
  closeness.  Implemented as a lazy k-best product combination so it stays
  efficient even for large candidate lists.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Sequence, Tuple

from repro.core.candidates import CandidateState
from repro.core.hmm import ReformulationHMM
from repro.core.scoring import ScoredQuery, aggregate_similarity
from repro.errors import ReformulationError


def brute_force_topk(hmm: ReformulationHMM, k: int, max_space: int = 2_000_000) -> List[ScoredQuery]:
    """Score every path in the HMM and return the exact top-k.

    Guards against accidental use on large instances via *max_space*.
    """
    if k < 1:
        raise ReformulationError("k must be >= 1")
    if hmm.search_space > max_space:
        raise ReformulationError(
            f"search space {hmm.search_space} exceeds max_space={max_space}"
        )
    ranges = [range(hmm.n_states(i)) for i in range(hmm.length)]
    scored = (
        (hmm.path_score(path), path) for path in itertools.product(*ranges)
    )
    top = heapq.nlargest(k, scored, key=lambda sp: (sp[0], tuple(-x for x in sp[1])))
    top.sort(key=lambda sp: (-sp[0], sp[1]))
    return [hmm.scored_query(path) for _score, path in top]


class RankBasedReformulator:
    """Similarity-only top-k combination (the Rank-based baseline).

    Given per-position candidate lists with raw similarity scores, the
    score of a combined query is the product of its per-position
    similarities (no closeness, no cohesion check).  Top-k combinations
    are produced with the classic sorted-lists k-best expansion: start
    from the all-best tuple and expand one position at a time through a
    max-heap, which visits at most ``k·m`` tuples.
    """

    def __init__(self, states: List[List[CandidateState]]) -> None:
        if not states or any(not lst for lst in states):
            raise ReformulationError("every position needs at least one state")
        # Sort each position's list by similarity descending (stable).
        self.sorted_states: List[List[CandidateState]] = [
            sorted(lst, key=lambda s: -s.sim) for lst in states
        ]

    def topk(self, k: int) -> List[ScoredQuery]:
        """The k highest similarity-product combinations, best first."""
        if k < 1:
            raise ReformulationError("k must be >= 1")
        m = len(self.sorted_states)
        first = tuple(0 for _ in range(m))
        heap: List[Tuple[float, Tuple[int, ...]]] = [
            (-self._score(first), first)
        ]
        seen = {first}
        out: List[ScoredQuery] = []
        while heap and len(out) < k:
            neg_score, idxs = heapq.heappop(heap)
            out.append(self._materialize(idxs, -neg_score))
            for pos in range(m):
                if idxs[pos] + 1 >= len(self.sorted_states[pos]):
                    continue
                nxt = idxs[:pos] + (idxs[pos] + 1,) + idxs[pos + 1:]
                if nxt in seen:
                    continue
                seen.add(nxt)
                heapq.heappush(heap, (-self._score(nxt), nxt))
        return out

    def _score(self, idxs: Sequence[int]) -> float:
        return aggregate_similarity(
            self.sorted_states[pos][i].sim for pos, i in enumerate(idxs)
        )

    def _materialize(self, idxs: Sequence[int], score: float) -> ScoredQuery:
        terms = tuple(
            self.sorted_states[pos][i].text for pos, i in enumerate(idxs)
        )
        return ScoredQuery(terms=terms, score=score, state_path=tuple(idxs))
