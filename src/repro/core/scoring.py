"""Reformulated-query scoring: Eq 4 and the smoothing of Eq 5-6.

The raw score of a candidate query multiplies per-position similarities
with between-position closenesses (Eq 4 == Eq 10 once the HMM is in
place).  Products are "sensitive to zero": one missing closeness zeroes an
otherwise good query.  Eq 5-6 therefore blend every local factor with a
*global indication* — the aggregate of the corresponding factors across the
whole query — controlled by the smoothing weight λ:

    sim_smo(q'_i, q_i)   = λ·sim(q'_i, q_i)   + (1-λ)·mean_k sim(q'_k, q_k)
    clos_smo(q'_{i-1}, q'_i) = λ·clos(...)    + (1-λ)·mean_k clos(q'_{k-1}, q'_k)

We use the mean (not the sum) of the other factors so the blended factor
stays on the same scale; the paper notes the smoothing "keeps the
aggregated scores unchanged in order to maintain the probabilistic meaning
of the parameters", which the mean preserves up to normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReformulationError


def smooth_factors(raw: np.ndarray, lam: float) -> np.ndarray:
    """Blend each factor with the global mean of all factors (Eq 5-6).

    *raw* may be any-dimensional; the global indication is the mean over
    every entry.  ``lam=1`` disables smoothing.
    """
    if not 0.0 < lam <= 1.0:
        raise ReformulationError(f"smoothing λ must be in (0,1], got {lam}")
    if lam == 1.0 or raw.size == 0:
        return raw.copy()
    global_mean = float(raw.mean())
    return lam * raw + (1.0 - lam) * global_mean


def smooth_rows(raw: np.ndarray, lam: float) -> np.ndarray:
    """Row-wise variant: each row blends with its own mean.

    Used for transition matrices where the "other word pairs" of Eq 6 are
    the alternative next-states of the same step.
    """
    if not 0.0 < lam <= 1.0:
        raise ReformulationError(f"smoothing λ must be in (0,1], got {lam}")
    if lam == 1.0 or raw.size == 0:
        return raw.copy()
    row_means = raw.mean(axis=-1, keepdims=True)
    return lam * raw + (1.0 - lam) * row_means


@dataclass(frozen=True)
class ScoredQuery:
    """A reformulated query with its generation probability (Eq 10)."""

    terms: Tuple[Optional[str], ...]  # None marks a void (deleted) position
    score: float
    state_path: Tuple[int, ...]  # per-position state indices in the HMM

    @property
    def text(self) -> str:
        """The rendered query, void positions dropped."""
        return " ".join(t for t in self.terms if t is not None)

    @property
    def keywords(self) -> Tuple[str, ...]:
        """Non-void terms of the suggestion, in order."""
        return tuple(t for t in self.terms if t is not None)

    def __len__(self) -> int:
        return len(self.keywords)


def normalize_distribution(weights: np.ndarray) -> np.ndarray:
    """Normalize non-negative weights to a probability distribution.

    All-zero input becomes uniform — a candidate list must stay usable
    even when every raw weight vanished.
    """
    if weights.ndim != 1:
        raise ReformulationError("expected a 1-d weight vector")
    if np.any(weights < 0):
        raise ReformulationError("negative weights are not probabilities")
    total = weights.sum()
    if total <= 0:
        return np.full(weights.shape, 1.0 / max(1, weights.size))
    return weights / total


def aggregate_similarity(sims: Sequence[float]) -> float:
    """Rank-based baseline score: product of per-position similarities.

    The "Rank-based reformulation" baseline of Section VI combines the
    similar-term lists by similarity alone, ignoring closeness.
    """
    score = 1.0
    for s in sims:
        score *= max(0.0, s)
    return score
