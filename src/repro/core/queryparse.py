"""Raw query-string parsing (segmentation against the corpus vocabulary).

The paper's test queries mix word terms with multi-word atomic terms:
"spatio temporal Christian S. Jensen" is *two* topical words plus *one*
author name.  Splitting on whitespace would shred the name, so the parser
segments a raw string greedily against what actually exists in the
corpus:

1. normalize the raw string into tokens (keeping the atomic fields'
   vocabulary matchable as token n-grams);
2. at each position prefer the **longest** token n-gram that is a known
   term (atomic names first — they are the reason segmentation exists —
   then learned phrases, then single words);
3. unknown tokens pass through as single keywords (the candidate builder
   handles out-of-vocabulary terms gracefully).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.graph.tat import TATGraph
from repro.index.analyzer import Analyzer


@dataclass(frozen=True)
class ParsedQuery:
    """Segmentation result: the keywords plus which were multi-token."""

    keywords: Tuple[str, ...]
    multiword: Tuple[str, ...]  # the matched multi-token terms

    def __len__(self) -> int:
        return len(self.keywords)


class QueryParser:
    """Greedy longest-match segmentation against the index vocabulary.

    Parameters
    ----------
    graph:
        The TAT graph whose vocabulary defines the known terms.
    max_term_tokens:
        Longest n-gram considered (atomic names in DBLP are 2-4 tokens).
    """

    def __init__(self, graph: TATGraph, max_term_tokens: int = 5) -> None:
        if max_term_tokens < 1:
            raise ReproError("max_term_tokens must be >= 1")
        self.graph = graph
        self.max_term_tokens = max_term_tokens
        # Multi-token vocabulary, tokenized with a permissive analyzer so
        # "christian s. jensen" matches the tokens of the raw input.
        self._splitter = Analyzer(stopwords=frozenset(), min_token_len=1)
        self._multi: Dict[Tuple[str, ...], str] = {}
        for term in graph.index.terms():
            if " " not in term.text:
                continue
            tokens = tuple(self._splitter.tokenize(term.text))
            if 1 < len(tokens) <= max_term_tokens:
                # first registration wins; ties across fields are rare
                self._multi.setdefault(tokens, term.text)

    @property
    def multiword_vocabulary_size(self) -> int:
        """Number of known multi-token terms."""
        return len(self._multi)

    def parse(self, raw: str) -> ParsedQuery:
        """Segment one raw query string."""
        tokens = self._splitter.tokenize(raw)
        keywords: List[str] = []
        multiword: List[str] = []
        i = 0
        single_analyzer = self.graph.index.analyzer
        while i < len(tokens):
            match = self._longest_match(tokens, i)
            if match is not None:
                length, text = match
                keywords.append(text)
                multiword.append(text)
                i += length
                continue
            token = tokens[i]
            # apply the corpus analyzer's policy to single words
            analyzed = single_analyzer.tokenize(token)
            if analyzed:
                keywords.append(analyzed[0])
            i += 1
        # Definition 2: keywords are distinct.
        deduped: List[str] = []
        for kw in keywords:
            if kw not in deduped:
                deduped.append(kw)
        return ParsedQuery(tuple(deduped), tuple(multiword))

    def _longest_match(
        self, tokens: Sequence[str], start: int
    ) -> Optional[Tuple[int, str]]:
        limit = min(self.max_term_tokens, len(tokens) - start)
        for length in range(limit, 1, -1):
            candidate = tuple(tokens[start:start + length])
            text = self._multi.get(candidate)
            if text is not None:
                return length, text
        return None
