"""Viterbi decoding: top-1 and the extended top-k variant (Algorithm 2).

The standard Viterbi recursion finds the single best hidden-state
sequence in ``O(m n²)``.  Algorithm 2 of the paper extends the per-state
memo from one best prefix to the *k* best prefixes ending in each state.

Decode lanes
------------
Every decoder ships in two implementations that are **bit-identical**:

* the *reference* lane (``viterbi_top1``, ``viterbi_topk``, ``*_log``):
  plain Python loops over scalar floats — slow, easy to audit, kept as
  the ``decode_impl="reference"`` escape hatch;
* the *vectorized* lane (``viterbi_top1_vec``, ``viterbi_topk_vec``,
  ``*_vec_log``): numpy whole-matrix operations over the contiguous
  emission columns and transition sub-matrices the serving plan cache
  assembles.  One batched product per position scores every
  (prefix, next-state) extension at once, and a stable column-wise
  argsort keeps the k best prefixes per state.

Bit-identity holds because both lanes perform the same floating-point
operations in the same association order — an extension is always scored
``(prefix · trans) · emis`` (``+`` in log space) — and both lanes resolve
ties with the same total order.

Tie-break contract
------------------
All decoders (here, in :mod:`repro.core.astar` and in
:mod:`repro.core.enumeration`) order paths by the total order

    ``(score descending, state_path lexicographically ascending)``

so equal-scored reformulations always surface lowest-candidate-index
first, at every internal truncation and in the returned list.  Top-1 is
the k=1 specialization of the same recursion, hence bit-identical to
``topk(hmm, 1)[0]``.

Zero-probability caveat: when the returned list contains zero-score
paths, the per-state truncation can keep different (equally worthless)
zero-score prefixes than a global enumeration would, so only the
*scores* are guaranteed to match A*/brute-force rank-for-rank; paths and
ordering agree whenever every returned score is positive or ``k`` covers
the whole search space.  ``tests/decode_oracle.py`` states (and
enforces) the full contract.

Each algorithm has a **log-space lane** (``*_log``): the recursion adds
``log π / log B / log A`` instead of multiplying probabilities, so long
queries cannot underflow to an all-zero table and no per-query rescaling
is ever needed.  The log matrices come from the HMM's cached lane
(:attr:`~repro.core.hmm.ReformulationHMM.log_transitions` is pre-seeded
by the serving plan cache), and returned queries are re-scored with
Eq 10 in probability space.  Selection happens on summed logs, so a
log lane can order within-an-ulp near-ties differently than the linear
lanes; reference and vectorized *log* lanes remain bit-identical to
each other.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.hmm import ReformulationHMM
from repro.core.scoring import ScoredQuery
from repro.errors import ReformulationError


@dataclass(frozen=True)
class ViterbiTable:
    """Forward max-product table: scores[c][i] = best prefix score ending
    at state *i* of step *c*; used by the A* stage of Algorithm 3."""

    scores: List[np.ndarray]
    backpointers: List[np.ndarray]


def viterbi_table(hmm: ReformulationHMM) -> ViterbiTable:
    """Run the forward max-product recursion over the whole HMM."""
    scores: List[np.ndarray] = []
    backpointers: List[np.ndarray] = []

    first = hmm.pi * hmm.emissions[0]
    scores.append(first)
    backpointers.append(np.full(first.shape, -1, dtype=np.int64))

    for step in range(1, hmm.length):
        trans = hmm.transitions[step - 1]
        prev = scores[-1]
        # combined[i, j] = prev[i] * trans[i, j]
        combined = prev[:, None] * trans
        best_prev = combined.argmax(axis=0)
        best_score = combined[best_prev, np.arange(trans.shape[1])]
        scores.append(best_score * hmm.emissions[step])
        backpointers.append(best_prev)
    return ViterbiTable(scores, backpointers)


def viterbi_table_log(hmm: ReformulationHMM) -> ViterbiTable:
    """Log-space forward max-sum recursion (scores are log-probabilities).

    Zero-probability entries enter as ``-inf`` and stay ``-inf`` through
    the additions, so impossible prefixes never need special-casing.
    """
    scores: List[np.ndarray] = []
    backpointers: List[np.ndarray] = []

    first = hmm.log_pi + hmm.log_emissions[0]
    scores.append(first)
    backpointers.append(np.full(first.shape, -1, dtype=np.int64))

    for step in range(1, hmm.length):
        trans = hmm.log_transitions[step - 1]
        prev = scores[-1]
        # combined[i, j] = prev[i] + trans[i, j]
        combined = prev[:, None] + trans
        best_prev = combined.argmax(axis=0)
        best_score = combined[best_prev, np.arange(trans.shape[1])]
        scores.append(best_score + hmm.log_emissions[step])
        backpointers.append(best_prev)
    return ViterbiTable(scores, backpointers)


# ---------------------------------------------------------------------------
# Reference lane: plain Python loops (decode_impl="reference")
# ---------------------------------------------------------------------------


def _prefix_key(sp: Tuple[float, Tuple[int, ...]]):
    """The contract's total order as a min-key: score desc, path lex asc."""
    return (-sp[0], sp[1])


def viterbi_top1(hmm: ReformulationHMM) -> ScoredQuery:
    """The single most probable reformulation (classic Viterbi).

    Implemented as the k=1 specialization of Algorithm 2 so the result —
    the lexicographically smallest maximum-score path — is bit-identical
    to ``viterbi_topk(hmm, 1)[0]``.
    """
    best: List[Tuple[float, Tuple[int, ...]]] = [
        (float(hmm.pi[i] * hmm.emissions[0][i]), (i,))
        for i in range(hmm.n_states(0))
    ]
    for step in range(1, hmm.length):
        trans = hmm.transitions[step - 1]
        emis = hmm.emissions[step]
        best = [
            min(
                (
                    (score * float(trans[i, j]) * float(emis[j]), path + (j,))
                    for i, (score, path) in enumerate(best)
                ),
                key=_prefix_key,
            )
            for j in range(hmm.n_states(step))
        ]
    _score, path = min(best, key=_prefix_key)
    return hmm.scored_query(path)


def viterbi_top1_log(hmm: ReformulationHMM) -> ScoredQuery:
    """Log-space Viterbi; the returned score is Eq 10 in probability space.

    k=1 specialization of :func:`viterbi_topk_log` — same per-state
    selection on summed logs with the lexicographic tie-break.
    """
    log_pi = hmm.log_pi
    log_emis0 = hmm.log_emissions[0]
    best: List[Tuple[float, Tuple[int, ...]]] = [
        (float(log_pi[i] + log_emis0[i]), (i,))
        for i in range(hmm.n_states(0))
    ]
    for step in range(1, hmm.length):
        trans = hmm.log_transitions[step - 1]
        emis = hmm.log_emissions[step]
        best = [
            min(
                (
                    (score + float(trans[i, j]) + float(emis[j]), path + (j,))
                    for i, (score, path) in enumerate(best)
                ),
                key=_prefix_key,
            )
            for j in range(hmm.n_states(step))
        ]
    _score, path = min(best, key=_prefix_key)
    return hmm.scored_query(path)


def viterbi_topk(hmm: ReformulationHMM, k: int) -> List[ScoredQuery]:
    """Algorithm 2: extended Viterbi storing top-k prefixes per state.

    ``L[c][i]`` holds at most *k* (score, path) prefixes ending in state
    *i* at step *c*; step ``c+1`` merges the extensions of every previous
    state's list and keeps the best *k* per state under the contract's
    ``(score desc, path lex asc)`` order.  Returns the global top-k
    complete paths, best first.
    """
    if k < 1:
        raise ReformulationError("k must be >= 1")

    # lists[i] = [(score, path_tuple), ...] best-first under the contract
    lists: List[List[Tuple[float, Tuple[int, ...]]]] = []
    for i in range(hmm.n_states(0)):
        score = float(hmm.pi[i] * hmm.emissions[0][i])
        lists.append([(score, (i,))])

    for step in range(1, hmm.length):
        trans = hmm.transitions[step - 1]
        emis = hmm.emissions[step]
        new_lists: List[List[Tuple[float, Tuple[int, ...]]]] = []
        for j in range(hmm.n_states(step)):
            extensions = (
                (score * float(trans[i, j]) * float(emis[j]), path + (j,))
                for i, prefix_list in enumerate(lists)
                for score, path in prefix_list
            )
            new_lists.append(heapq.nsmallest(k, extensions, key=_prefix_key))
        lists = new_lists

    complete = [sp for state_list in lists for sp in state_list]
    # nsmallest returns ascending by key == the contract's output order.
    top = heapq.nsmallest(k, complete, key=_prefix_key)
    return [hmm.scored_query(path) for _score, path in top]


def viterbi_topk_log(hmm: ReformulationHMM, k: int) -> List[ScoredQuery]:
    """Algorithm 2 in log space: top-k prefixes per state via max-sum.

    Selection happens on summed log-probabilities under the same
    ``(score desc, path lex asc)`` order; the final list is re-scored
    and re-sorted with the probability-space Eq 10 score.
    """
    if k < 1:
        raise ReformulationError("k must be >= 1")

    log_pi = hmm.log_pi
    log_emis0 = hmm.log_emissions[0]
    lists: List[List[Tuple[float, Tuple[int, ...]]]] = []
    for i in range(hmm.n_states(0)):
        score = float(log_pi[i] + log_emis0[i])
        lists.append([(score, (i,))])

    for step in range(1, hmm.length):
        trans = hmm.log_transitions[step - 1]
        emis = hmm.log_emissions[step]
        new_lists: List[List[Tuple[float, Tuple[int, ...]]]] = []
        for j in range(hmm.n_states(step)):
            extensions = (
                (score + float(trans[i, j]) + float(emis[j]), path + (j,))
                for i, prefix_list in enumerate(lists)
                for score, path in prefix_list
            )
            new_lists.append(heapq.nsmallest(k, extensions, key=_prefix_key))
        lists = new_lists

    complete = [sp for state_list in lists for sp in state_list]
    top = heapq.nsmallest(k, complete, key=_prefix_key)
    out = [hmm.scored_query(path) for _score, path in top]
    # Deterministic output order on the probability-space score.
    out.sort(key=lambda q: (-q.score, q.state_path))
    return out


# ---------------------------------------------------------------------------
# Vectorized lane: batched numpy selection (decode_impl="vectorized")
# ---------------------------------------------------------------------------


def _reconstruct_path(
    states_hist: List[np.ndarray], parents: List[np.ndarray], row: int
) -> Tuple[int, ...]:
    """Walk parent pointers backwards from a final live-prefix row."""
    path = []
    r = row
    for step in range(len(states_hist) - 1, -1, -1):
        path.append(int(states_hist[step][r]))
        if step > 0:
            r = int(parents[step][r])
    path.reverse()
    return tuple(path)


def _viterbi_topk_vec_paths(
    hmm: ReformulationHMM, k: int, log_space: bool
) -> List[Tuple[int, ...]]:
    """Shared vectorized core: the selected top-k paths, best first.

    Live prefixes are kept as flat arrays *in lexicographic path order*
    (restored after every step with ``np.lexsort``), so a **stable**
    argsort on negated scores realizes exactly the contract's
    ``(score desc, path lex asc)`` order — both at the per-state
    truncation and at the final global selection.  The extension scores
    are computed with the same association as the reference lane
    (``(prefix ∘ trans) ∘ emis``), which makes the two lanes
    bit-identical.
    """
    if log_space:
        scores = np.asarray(hmm.log_pi + hmm.log_emissions[0], dtype=np.float64)
    else:
        scores = np.asarray(hmm.pi * hmm.emissions[0], dtype=np.float64)

    n0 = hmm.n_states(0)
    states_hist: List[np.ndarray] = [np.arange(n0, dtype=np.int64)]
    parents: List[np.ndarray] = [np.full(n0, -1, dtype=np.int64)]

    for step in range(1, hmm.length):
        if log_space:
            trans = hmm.log_transitions[step - 1]
            emis = hmm.log_emissions[step]
        else:
            trans = hmm.transitions[step - 1]
            emis = hmm.emissions[step]
        ends = states_hist[-1]
        # ext[r, j]: prefix row r extended with next-state j, one batched
        # product (sum in log space) over the whole live frontier.
        if log_space:
            ext = scores[:, None] + trans[ends, :] + emis[None, :]
        else:
            ext = scores[:, None] * trans[ends, :] * emis[None, :]

        n_next = ext.shape[1]
        keep = min(k, ext.shape[0])
        # Stable column-wise argsort: rows are in lex order, so ties on
        # score resolve to the lexicographically smallest prefix.
        order = np.argsort(-ext, axis=0, kind="stable")[:keep, :]

        new_parent = order.ravel(order="F")
        new_state = np.repeat(np.arange(n_next, dtype=np.int64), keep)
        new_scores = ext[new_parent, new_state]
        # Restore the lex-order invariant for the next step: sort the
        # survivors by (parent row, next state) == full-path lex order.
        perm = np.lexsort((new_state, new_parent))
        states_hist.append(new_state[perm])
        parents.append(new_parent[perm])
        scores = new_scores[perm]

    keep = min(k, scores.shape[0])
    top_rows = np.argsort(-scores, kind="stable")[:keep]
    return [_reconstruct_path(states_hist, parents, int(r)) for r in top_rows]


def viterbi_top1_vec(hmm: ReformulationHMM) -> ScoredQuery:
    """Vectorized twin of :func:`viterbi_top1` (bit-identical result)."""
    (path,) = _viterbi_topk_vec_paths(hmm, 1, log_space=False)
    return hmm.scored_query(path)


def viterbi_top1_vec_log(hmm: ReformulationHMM) -> ScoredQuery:
    """Vectorized twin of :func:`viterbi_top1_log` (bit-identical result)."""
    (path,) = _viterbi_topk_vec_paths(hmm, 1, log_space=True)
    return hmm.scored_query(path)


def viterbi_topk_vec(hmm: ReformulationHMM, k: int) -> List[ScoredQuery]:
    """Vectorized twin of :func:`viterbi_topk` (bit-identical results)."""
    if k < 1:
        raise ReformulationError("k must be >= 1")
    paths = _viterbi_topk_vec_paths(hmm, k, log_space=False)
    # The selection scores equal the recomputed Eq 10 scores bit-for-bit
    # (same factors, same association), so the order is already final.
    return [hmm.scored_query(path) for path in paths]


def viterbi_topk_vec_log(hmm: ReformulationHMM, k: int) -> List[ScoredQuery]:
    """Vectorized twin of :func:`viterbi_topk_log` (bit-identical results)."""
    if k < 1:
        raise ReformulationError("k must be >= 1")
    paths = _viterbi_topk_vec_paths(hmm, k, log_space=True)
    out = [hmm.scored_query(path) for path in paths]
    out.sort(key=lambda q: (-q.score, q.state_path))
    return out


def path_scores_consistent(
    hmm: ReformulationHMM, queries: Sequence[ScoredQuery], tol: float = 1e-12
) -> bool:
    """Sanity helper used in tests: recompute every score from Eq 10."""
    return all(
        abs(q.score - hmm.path_score(q.state_path)) <= tol * max(1.0, q.score)
        for q in queries
    )
