"""Viterbi decoding: top-1 and the extended top-k variant (Algorithm 2).

The standard Viterbi recursion finds the single best hidden-state
sequence in ``O(m n²)``.  Algorithm 2 of the paper extends the per-state
memo from one best prefix to the *k* best prefixes ending in each state,
which is ``k log k`` slower: ``O(m n² k log k)``.

Each algorithm has a **log-space lane** (``*_log``): the recursion adds
``log π / log B / log A`` instead of multiplying probabilities, so long
queries cannot underflow to an all-zero table and no per-query rescaling
is ever needed.  The log matrices come from the HMM's cached lane
(:attr:`~repro.core.hmm.ReformulationHMM.log_transitions` is pre-seeded
by the serving plan cache), and returned queries are re-scored with
Eq 10 in probability space, so both lanes emit identical
:class:`ScoredQuery` values.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.hmm import ReformulationHMM
from repro.core.scoring import ScoredQuery
from repro.errors import ReformulationError


@dataclass(frozen=True)
class ViterbiTable:
    """Forward max-product table: scores[c][i] = best prefix score ending
    at state *i* of step *c*; used by the A* stage of Algorithm 3."""

    scores: List[np.ndarray]
    backpointers: List[np.ndarray]


def viterbi_table(hmm: ReformulationHMM) -> ViterbiTable:
    """Run the forward max-product recursion over the whole HMM."""
    scores: List[np.ndarray] = []
    backpointers: List[np.ndarray] = []

    first = hmm.pi * hmm.emissions[0]
    scores.append(first)
    backpointers.append(np.full(first.shape, -1, dtype=np.int64))

    for step in range(1, hmm.length):
        trans = hmm.transitions[step - 1]
        prev = scores[-1]
        # combined[i, j] = prev[i] * trans[i, j]
        combined = prev[:, None] * trans
        best_prev = combined.argmax(axis=0)
        best_score = combined[best_prev, np.arange(trans.shape[1])]
        scores.append(best_score * hmm.emissions[step])
        backpointers.append(best_prev)
    return ViterbiTable(scores, backpointers)


def viterbi_top1(hmm: ReformulationHMM) -> ScoredQuery:
    """The single most probable reformulation (classic Viterbi)."""
    table = viterbi_table(hmm)
    last = int(table.scores[-1].argmax())
    path = [last]
    for step in range(hmm.length - 1, 0, -1):
        path.append(int(table.backpointers[step][path[-1]]))
    path.reverse()
    return hmm.scored_query(path)


def viterbi_topk(hmm: ReformulationHMM, k: int) -> List[ScoredQuery]:
    """Algorithm 2: extended Viterbi storing top-k prefixes per state.

    ``L[c][i]`` holds at most *k* (score, path) prefixes ending in state
    *i* at step *c*; step ``c+1`` merges the extensions of every previous
    state's list and keeps the best *k* per state.  Returns the global
    top-k complete paths, best first.
    """
    if k < 1:
        raise ReformulationError("k must be >= 1")

    # lists[i] = [(score, path_tuple), ...] sorted descending
    lists: List[List[Tuple[float, Tuple[int, ...]]]] = []
    for i in range(hmm.n_states(0)):
        score = float(hmm.pi[i] * hmm.emissions[0][i])
        lists.append([(score, (i,))])

    for step in range(1, hmm.length):
        trans = hmm.transitions[step - 1]
        emis = hmm.emissions[step]
        new_lists: List[List[Tuple[float, Tuple[int, ...]]]] = []
        for j in range(hmm.n_states(step)):
            extensions = (
                (score * float(trans[i, j]) * float(emis[j]), path + (j,))
                for i, prefix_list in enumerate(lists)
                for score, path in prefix_list
            )
            best = heapq.nlargest(k, extensions, key=lambda sp: sp[0])
            new_lists.append(best)
        lists = new_lists

    complete = [sp for state_list in lists for sp in state_list]
    top = heapq.nlargest(k, complete, key=lambda sp: sp[0])
    # Deterministic tie-break: score desc, then path lexicographic.
    top.sort(key=lambda sp: (-sp[0], sp[1]))
    return [hmm.scored_query(path) for _score, path in top]


def viterbi_table_log(hmm: ReformulationHMM) -> ViterbiTable:
    """Log-space forward max-sum recursion (scores are log-probabilities).

    Zero-probability entries enter as ``-inf`` and stay ``-inf`` through
    the additions, so impossible prefixes never need special-casing.
    """
    scores: List[np.ndarray] = []
    backpointers: List[np.ndarray] = []

    first = hmm.log_pi + hmm.log_emissions[0]
    scores.append(first)
    backpointers.append(np.full(first.shape, -1, dtype=np.int64))

    for step in range(1, hmm.length):
        trans = hmm.log_transitions[step - 1]
        prev = scores[-1]
        # combined[i, j] = prev[i] + trans[i, j]
        combined = prev[:, None] + trans
        best_prev = combined.argmax(axis=0)
        best_score = combined[best_prev, np.arange(trans.shape[1])]
        scores.append(best_score + hmm.log_emissions[step])
        backpointers.append(best_prev)
    return ViterbiTable(scores, backpointers)


def viterbi_top1_log(hmm: ReformulationHMM) -> ScoredQuery:
    """Log-space Viterbi; the returned score is Eq 10 in probability space."""
    table = viterbi_table_log(hmm)
    last = int(table.scores[-1].argmax())
    path = [last]
    for step in range(hmm.length - 1, 0, -1):
        path.append(int(table.backpointers[step][path[-1]]))
    path.reverse()
    return hmm.scored_query(path)


def viterbi_topk_log(hmm: ReformulationHMM, k: int) -> List[ScoredQuery]:
    """Algorithm 2 in log space: top-k prefixes per state via max-sum.

    Selection happens on summed log-probabilities; the final list is
    re-scored and re-sorted with the probability-space Eq 10 score, so
    the output ordering matches :func:`viterbi_topk` exactly.
    """
    if k < 1:
        raise ReformulationError("k must be >= 1")

    log_pi = hmm.log_pi
    log_emis0 = hmm.log_emissions[0]
    lists: List[List[Tuple[float, Tuple[int, ...]]]] = []
    for i in range(hmm.n_states(0)):
        score = float(log_pi[i] + log_emis0[i])
        lists.append([(score, (i,))])

    for step in range(1, hmm.length):
        trans = hmm.log_transitions[step - 1]
        emis = hmm.log_emissions[step]
        new_lists: List[List[Tuple[float, Tuple[int, ...]]]] = []
        for j in range(hmm.n_states(step)):
            extensions = (
                (score + float(trans[i, j]) + float(emis[j]), path + (j,))
                for i, prefix_list in enumerate(lists)
                for score, path in prefix_list
            )
            best = heapq.nlargest(k, extensions, key=lambda sp: sp[0])
            new_lists.append(best)
        lists = new_lists

    complete = [sp for state_list in lists for sp in state_list]
    top = heapq.nlargest(k, complete, key=lambda sp: sp[0])
    out = [hmm.scored_query(path) for _score, path in top]
    # Deterministic tie-break on the probability-space score, matching
    # the linear-space lane bit for bit.
    out.sort(key=lambda q: (-q.score, q.state_path))
    return out


def path_scores_consistent(
    hmm: ReformulationHMM, queries: Sequence[ScoredQuery], tol: float = 1e-12
) -> bool:
    """Sanity helper used in tests: recompute every score from Eq 10."""
    return all(
        abs(q.score - hmm.path_score(q.state_path)) <= tol * max(1.0, q.score)
        for q in queries
    )
