"""Per-suggestion score decomposition — the query-explain mode.

Eq 10 scores a reformulation as ``π(q'_1) · Π_i B(q'_i, q_i) ·
Π_i A(q'_{i-1}, q'_i)``.  Explain mode splits that product back into its
per-position factors so a suggestion's rank can be audited against the
paper's components: which position's emission carried it, which
transition (closeness) nearly zeroed it, whether the initial
distribution (Eq 7) dominated.

Each position contributes ``π · B · A`` (with ``π = 1`` beyond the first
position and ``A = 1`` at the first); the product of the contributions
recombines to :attr:`~repro.core.scoring.ScoredQuery.score` up to
floating-point association order (verified to ``rel_tol=1e-9`` by the
tests).  The rank-based baseline decomposes into its per-position raw
similarities the same way.

:class:`ExplainResult` bundles the suggestions, their decompositions and
the request's span tree — the payload behind
``Reformulator.reformulate(..., explain=True)`` and the ``repro
explain`` CLI verb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.candidates import CandidateState
from repro.core.hmm import ReformulationHMM
from repro.core.scoring import ScoredQuery
from repro.errors import ReformulationError
from repro.obs.export import render_span_tree
from repro.obs.trace import Span


@dataclass(frozen=True)
class PositionBreakdown:
    """One position's share of a suggestion's Eq 10 score."""

    position: int
    keyword: str              #: original query keyword at this position
    term: Optional[str]       #: chosen candidate term (None = deleted)
    kind: str                 #: "similar" | "original" | "void"
    pi: float                 #: Eq 7 factor (1.0 beyond position 0)
    emission: float           #: Eq 9 factor B(t_ij, q_i)
    transition: float         #: Eq 8 factor A(q'_{i-1}, q'_i); 1.0 at i=0

    @property
    def contribution(self) -> float:
        """This position's multiplicative share: ``π · B · A``."""
        return self.pi * self.emission * self.transition


@dataclass(frozen=True)
class SuggestionExplanation:
    """A suggestion with its full per-position decomposition."""

    suggestion: ScoredQuery
    positions: Tuple[PositionBreakdown, ...]

    @property
    def recombined_score(self) -> float:
        """Product of the position contributions (≈ suggestion.score)."""
        score = 1.0
        for position in self.positions:
            score *= position.contribution
        return score

    def render(self) -> str:
        """Aligned per-position factor table for terminal output."""
        lines = [
            "  pos  keyword          -> term             kind      "
            "π          emission   transition contribution"
        ]
        for pb in self.positions:
            term = pb.term if pb.term is not None else "∅ (deleted)"
            pi = f"{pb.pi:.4e}" if pb.position == 0 else "-"
            trans = f"{pb.transition:.4e}" if pb.position > 0 else "-"
            lines.append(
                f"  {pb.position:<4d} {pb.keyword:<16.16s} -> "
                f"{term:<16.16s} {pb.kind:<9.9s} {pi:<10s} "
                f"{pb.emission:<10.4e} {trans:<10s} "
                f"{pb.contribution:.4e}"
            )
        return "\n".join(lines)


def explain_hmm_path(
    hmm: ReformulationHMM, suggestion: ScoredQuery
) -> SuggestionExplanation:
    """Decompose one HMM suggestion along its state path."""
    path = suggestion.state_path
    if len(path) != hmm.length:
        raise ReformulationError(
            f"state path length {len(path)} != query length {hmm.length}"
        )
    positions: List[PositionBreakdown] = []
    for i, state_index in enumerate(path):
        state = hmm.states[i][state_index]
        positions.append(
            PositionBreakdown(
                position=i,
                keyword=hmm.query[i],
                term=state.text,
                kind=state.kind.value,
                pi=float(hmm.pi[state_index]) if i == 0 else 1.0,
                emission=float(hmm.emissions[i][state_index]),
                transition=(
                    float(hmm.transitions[i - 1][path[i - 1], state_index])
                    if i > 0
                    else 1.0
                ),
            )
        )
    return SuggestionExplanation(suggestion, tuple(positions))


def explain_rank_path(
    sorted_states: Sequence[Sequence[CandidateState]],
    query: Sequence[str],
    suggestion: ScoredQuery,
) -> SuggestionExplanation:
    """Decompose one rank-baseline suggestion into per-position sims.

    The baseline's score is the product of raw (clamped) per-position
    similarities, so each position contributes exactly its similarity.
    """
    path = suggestion.state_path
    if len(path) != len(sorted_states):
        raise ReformulationError(
            f"state path length {len(path)} != query length "
            f"{len(sorted_states)}"
        )
    positions: List[PositionBreakdown] = []
    for i, state_index in enumerate(path):
        state = sorted_states[i][state_index]
        positions.append(
            PositionBreakdown(
                position=i,
                keyword=query[i],
                term=state.text,
                kind=state.kind.value,
                pi=1.0,
                emission=max(0.0, state.sim),
                transition=1.0,
            )
        )
    return SuggestionExplanation(suggestion, tuple(positions))


@dataclass
class ExplainResult:
    """Everything explain mode returns for one request."""

    query: Tuple[str, ...]
    suggestions: List[ScoredQuery]
    explanations: List[SuggestionExplanation]
    trace: Optional[Span] = None
    algorithm: str = "astar"
    method: str = "tat"

    def __len__(self) -> int:
        return len(self.suggestions)

    def render(self) -> str:
        """Span tree plus per-suggestion decomposition, terminal-ready."""
        blocks: List[str] = []
        if self.trace is not None:
            blocks.append("trace:")
            blocks.append(render_span_tree(self.trace, indent=1))
        blocks.append(
            f"suggestions ({self.method}/{self.algorithm}):"
        )
        for rank, explanation in enumerate(self.explanations, 1):
            suggestion = explanation.suggestion
            blocks.append(
                f"[{rank}] {suggestion.text}  score={suggestion.score:.4e}  "
                f"(recombined {explanation.recombined_score:.4e})"
            )
            blocks.append(explanation.render())
        return "\n".join(blocks)
