"""Online query-reformulation core: HMM, Viterbi, A*, baselines."""

from repro.core.astar import (
    AStarOutcome,
    astar_topk,
    astar_topk_log,
    astar_topk_vec,
    astar_topk_vec_log,
    backward_heuristic,
    backward_heuristic_log,
)
from repro.core.candidates import (
    CandidateListBuilder,
    CandidateState,
    StateKind,
)
from repro.core.diversify import (
    distinct_term_coverage,
    keyword_overlap,
    mmr_diversify,
)
from repro.core.enumeration import RankBasedReformulator, brute_force_topk
from repro.core.explain import (
    ExplainResult,
    PositionBreakdown,
    SuggestionExplanation,
    explain_hmm_path,
    explain_rank_path,
)
from repro.core.queryparse import ParsedQuery, QueryParser
from repro.core.hmm import IndexFrequency, ReformulationHMM
from repro.core.reformulator import (
    ALGORITHMS,
    DECODE_IMPLS,
    METHODS,
    Reformulator,
    ReformulatorConfig,
)
from repro.core.scoring import (
    ScoredQuery,
    aggregate_similarity,
    normalize_distribution,
    smooth_factors,
    smooth_rows,
)
from repro.core.viterbi import (
    ViterbiTable,
    viterbi_table,
    viterbi_table_log,
    viterbi_top1,
    viterbi_top1_log,
    viterbi_top1_vec,
    viterbi_top1_vec_log,
    viterbi_topk,
    viterbi_topk_log,
    viterbi_topk_vec,
    viterbi_topk_vec_log,
)

__all__ = [
    "AStarOutcome",
    "astar_topk",
    "astar_topk_log",
    "astar_topk_vec",
    "astar_topk_vec_log",
    "backward_heuristic",
    "backward_heuristic_log",
    "CandidateListBuilder",
    "CandidateState",
    "StateKind",
    "distinct_term_coverage",
    "keyword_overlap",
    "mmr_diversify",
    "ParsedQuery",
    "QueryParser",
    "RankBasedReformulator",
    "brute_force_topk",
    "ExplainResult",
    "PositionBreakdown",
    "SuggestionExplanation",
    "explain_hmm_path",
    "explain_rank_path",
    "IndexFrequency",
    "ReformulationHMM",
    "ALGORITHMS",
    "DECODE_IMPLS",
    "METHODS",
    "Reformulator",
    "ReformulatorConfig",
    "ScoredQuery",
    "aggregate_similarity",
    "normalize_distribution",
    "smooth_factors",
    "smooth_rows",
    "ViterbiTable",
    "viterbi_table",
    "viterbi_table_log",
    "viterbi_top1",
    "viterbi_top1_log",
    "viterbi_top1_vec",
    "viterbi_top1_vec_log",
    "viterbi_topk",
    "viterbi_topk_log",
    "viterbi_topk_vec",
    "viterbi_topk_vec_log",
]
