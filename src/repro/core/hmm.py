"""The probabilistic query-generation HMM (Section V-B).

Observed symbols are the input keywords ``q_1..q_m``; hidden states at step
*i* are the candidate list ``L(q_i)``.  The three HMM components follow the
paper exactly:

* initial distribution ``π(t_1j) ∝ freq(t_1j)`` — Eq 7;
* transitions ``A(q'_{i-1}, q'_i) = clos(q'_{i-1}, q'_i)`` — Eq 8;
* emissions ``B(t_ij, q_i) ∝ sim(t_ij, q_i)`` — Eq 9;

and a path's quality is Eq 10:
``p(Q'|Q) = π(q'_1) · Π_i B(q'_i, q_i) · Π_i A(q'_{i-1}, q'_i)``.

Similarity and closeness factors are smoothed per Eq 5-6 before being
normalized into the matrices (see :mod:`repro.core.scoring`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.candidates import CandidateState
from repro.core.scoring import (
    ScoredQuery,
    normalize_distribution,
    smooth_factors,
    smooth_rows,
)
from repro.errors import ReformulationError


class ClosenessBackend(Protocol):
    """What the HMM needs from a closeness provider."""

    def closeness(self, node_a: int, node_b: int) -> float:
        """clos(a, b) per Eq 3."""
        ...


class FrequencyBackend(Protocol):
    """Provides term frequencies for Eq 7 (π)."""

    def frequency(self, node_id: int) -> float:
        """Collection frequency of one node (Eq 7 numerator)."""
        ...


class IndexFrequency:
    """Collection term frequency from the TAT graph's inverted index."""

    def __init__(self, graph) -> None:
        self.graph = graph

    def frequency(self, node_id: int) -> float:
        """Collection tf of a term node; 1.0 for non-terms."""
        node = self.graph.node(node_id)
        if node.text is None:
            return 1.0
        return float(self.graph.index.total_tf(node.payload))


@dataclass
class ReformulationHMM:
    """A fully parameterized HMM for one input query."""

    query: Tuple[str, ...]
    states: List[List[CandidateState]]
    pi: np.ndarray                    # shape (n_0,)
    emissions: List[np.ndarray]       # emissions[i] shape (n_i,)
    transitions: List[np.ndarray]     # transitions[i] shape (n_{i-1}, n_i), i>=1

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        query: Sequence[str],
        states: List[List[CandidateState]],
        closeness: ClosenessBackend,
        frequency: FrequencyBackend,
        smoothing_lambda: float = 0.8,
        void_closeness: float = 1e-4,
    ) -> "ReformulationHMM":
        """Parameterize the HMM from offline similarity/closeness relations.

        Parameters
        ----------
        query:
            The input keywords (observed symbols).
        states:
            Per-position candidate lists from
            :class:`~repro.core.candidates.CandidateListBuilder`.
        closeness:
            Offline closeness relation (Eq 8 transitions).
        frequency:
            Term frequency provider (Eq 7 initial distribution).
        smoothing_lambda:
            λ of Eq 5-6.  1.0 disables smoothing.
        void_closeness:
            Raw closeness assigned to transitions entering a void state.
        """
        query = tuple(query)
        if len(query) != len(states):
            raise ReformulationError(
                f"query has {len(query)} terms but {len(states)} state lists"
            )
        if not states or any(not lst for lst in states):
            raise ReformulationError("every position needs at least one state")

        # π — Eq 7 (frequency-proportional over the first candidate list)
        freqs = np.array(
            [
                frequency.frequency(s.node_id) if s.node_id is not None else 1.0
                for s in states[0]
            ],
            dtype=np.float64,
        )
        pi = normalize_distribution(freqs)

        # B — Eq 9 with the Eq 5 smoothing applied to the raw sims first.
        raw_sims = [
            np.array([s.sim for s in lst], dtype=np.float64) for lst in states
        ]
        global_sim = np.concatenate(raw_sims)
        global_mean = float(global_sim.mean()) if global_sim.size else 0.0
        emissions: List[np.ndarray] = []
        for raw in raw_sims:
            if smoothing_lambda < 1.0:
                blended = smoothing_lambda * raw + (1 - smoothing_lambda) * global_mean
            else:
                blended = raw
            emissions.append(normalize_distribution(blended))

        # A — Eq 8 with Eq 6 smoothing (row-mean global indication).
        transitions: List[np.ndarray] = []
        for i in range(1, len(states)):
            prev, curr = states[i - 1], states[i]
            raw = np.zeros((len(prev), len(curr)), dtype=np.float64)
            for a_idx, a in enumerate(prev):
                for b_idx, b in enumerate(curr):
                    raw[a_idx, b_idx] = _state_closeness(
                        a, b, closeness, void_closeness
                    )
            smoothed = smooth_rows(raw, smoothing_lambda)
            transitions.append(smoothed)

        return cls(
            query=query,
            states=states,
            pi=pi,
            emissions=emissions,
            transitions=transitions,
        )

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    @property
    def length(self) -> int:
        """m — number of steps (query length)."""
        return len(self.states)

    def n_states(self, position: int) -> int:
        """Number of hidden states at one position."""
        return len(self.states[position])

    @property
    def search_space(self) -> int:
        """Total number of candidate queries: Π_i n_i (the O(n^m) space)."""
        total = 1
        for lst in self.states:
            total *= len(lst)
        return total

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #

    def path_score(self, path: Sequence[int]) -> float:
        """Eq 10 for one state path (indices into each position's list)."""
        if len(path) != self.length:
            raise ReformulationError(
                f"path length {len(path)} != query length {self.length}"
            )
        score = float(self.pi[path[0]]) * float(self.emissions[0][path[0]])
        for i in range(1, self.length):
            score *= float(self.transitions[i - 1][path[i - 1], path[i]])
            score *= float(self.emissions[i][path[i]])
        return score

    def scored_query(self, path: Sequence[int]) -> ScoredQuery:
        """Materialize a path into a :class:`ScoredQuery`."""
        terms = tuple(
            self.states[i][s].text for i, s in enumerate(path)
        )
        return ScoredQuery(
            terms=terms,
            score=self.path_score(path),
            state_path=tuple(path),
        )

    def is_identity_path(self, path: Sequence[int]) -> bool:
        """True if the path reproduces the original query verbatim."""
        return all(
            self.states[i][s].text == self.query[i]
            for i, s in enumerate(path)
        )


def _state_closeness(
    a: CandidateState,
    b: CandidateState,
    closeness: ClosenessBackend,
    void_closeness: float,
) -> float:
    """Closeness between two candidate states, handling void/unknown."""
    if a.is_void or b.is_void:
        return void_closeness
    if a.node_id is None or b.node_id is None:
        return 0.0  # unknown original term: smoothing provides the floor
    if a.node_id == b.node_id:
        # A term repeated in adjacent positions never helps a keyword
        # query; clos(v,v) is 0 by Eq 3's path definition.
        return 0.0
    return max(0.0, closeness.closeness(a.node_id, b.node_id))
