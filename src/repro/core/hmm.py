"""The probabilistic query-generation HMM (Section V-B).

Observed symbols are the input keywords ``q_1..q_m``; hidden states at step
*i* are the candidate list ``L(q_i)``.  The three HMM components follow the
paper exactly:

* initial distribution ``π(t_1j) ∝ freq(t_1j)`` — Eq 7;
* transitions ``A(q'_{i-1}, q'_i) = clos(q'_{i-1}, q'_i)`` — Eq 8;
* emissions ``B(t_ij, q_i) ∝ sim(t_ij, q_i)`` — Eq 9;

and a path's quality is Eq 10:
``p(Q'|Q) = π(q'_1) · Π_i B(q'_i, q_i) · Π_i A(q'_{i-1}, q'_i)``.

Similarity and closeness factors are smoothed per Eq 5-6 before being
normalized into the matrices (see :mod:`repro.core.scoring`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.candidates import CandidateState
from repro.core.scoring import (
    ScoredQuery,
    normalize_distribution,
    smooth_factors,
    smooth_rows,
)
from repro.errors import ReformulationError


class ClosenessBackend(Protocol):
    """What the HMM needs from a closeness provider."""

    def closeness(self, node_a: int, node_b: int) -> float:
        """clos(a, b) per Eq 3."""
        ...


class FrequencyBackend(Protocol):
    """Provides term frequencies for Eq 7 (π)."""

    def frequency(self, node_id: int) -> float:
        """Collection frequency of one node (Eq 7 numerator)."""
        ...


class IndexFrequency:
    """Collection term frequency from the TAT graph's inverted index.

    Lookups are memoized per node id: a node's collection tf is immutable
    for the lifetime of the graph, and every π build (Eq 7) re-reads the
    same handful of first-position candidates, so the graph-node walk and
    postings aggregation run at most once per node.
    """

    def __init__(self, graph) -> None:
        self.graph = graph
        self._cache: Dict[int, float] = {}

    def frequency(self, node_id: int) -> float:
        """Collection tf of a term node; 1.0 for non-terms."""
        cached = self._cache.get(node_id)
        if cached is not None:
            return cached
        node = self.graph.node(node_id)
        if node.text is None:
            value = 1.0
        else:
            value = float(self.graph.index.total_tf(node.payload))
        self._cache[node_id] = value
        return value


@dataclass
class ReformulationHMM:
    """A fully parameterized HMM for one input query."""

    query: Tuple[str, ...]
    states: List[List[CandidateState]]
    pi: np.ndarray                    # shape (n_0,)
    emissions: List[np.ndarray]       # emissions[i] shape (n_i,)
    transitions: List[np.ndarray]     # transitions[i] shape (n_{i-1}, n_i), i>=1

    def __post_init__(self) -> None:
        # Lazy log-space lane (zeros map to -inf); the plan cache may
        # pre-seed _log_transitions with matrices logged once per pair.
        self._log_pi: Optional[np.ndarray] = None
        self._log_emissions: Optional[List[np.ndarray]] = None
        self._log_transitions: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        query: Sequence[str],
        states: List[List[CandidateState]],
        closeness: ClosenessBackend,
        frequency: FrequencyBackend,
        smoothing_lambda: float = 0.8,
        void_closeness: float = 1e-4,
    ) -> "ReformulationHMM":
        """Parameterize the HMM from offline similarity/closeness relations.

        Parameters
        ----------
        query:
            The input keywords (observed symbols).
        states:
            Per-position candidate lists from
            :class:`~repro.core.candidates.CandidateListBuilder`.
        closeness:
            Offline closeness relation (Eq 8 transitions).
        frequency:
            Term frequency provider (Eq 7 initial distribution).
        smoothing_lambda:
            λ of Eq 5-6.  1.0 disables smoothing.
        void_closeness:
            Raw closeness assigned to transitions entering a void state.
        """
        query = tuple(query)
        if len(query) != len(states):
            raise ReformulationError(
                f"query has {len(query)} terms but {len(states)} state lists"
            )
        if not states or any(not lst for lst in states):
            raise ReformulationError("every position needs at least one state")

        # π numerators — Eq 7 (over the first candidate list only)
        freqs = term_frequencies(states[0], frequency)

        # raw per-position similarity columns (Eq 9 numerators, pre-smoothing)
        raw_sims = [
            np.array([s.sim for s in lst], dtype=np.float64) for lst in states
        ]

        # A — Eq 8 with Eq 6 smoothing (row-mean global indication).
        transitions = [
            smooth_rows(
                pair_closeness_matrix(
                    states[i - 1], states[i], closeness, void_closeness
                ),
                smoothing_lambda,
            )
            for i in range(1, len(states))
        ]

        return cls.assemble(
            query=query,
            states=states,
            freqs=freqs,
            raw_sims=raw_sims,
            transitions=transitions,
            smoothing_lambda=smoothing_lambda,
        )

    @classmethod
    def assemble(
        cls,
        query: Tuple[str, ...],
        states: List[List[CandidateState]],
        freqs: np.ndarray,
        raw_sims: List[np.ndarray],
        transitions: List[np.ndarray],
        smoothing_lambda: float,
        log_transitions: Optional[List[np.ndarray]] = None,
    ) -> "ReformulationHMM":
        """Finish parameterization from precomputed raw blocks.

        This is the single code path behind both :meth:`build` (which
        computes the blocks fresh) and the serving plan cache (which
        replays memoized per-term/per-pair blocks), so cached and
        uncached construction are bit-identical by construction: the
        final normalization and Eq 5 smoothing run the same floating
        point operations on the same values either way.

        *transitions* are the already row-smoothed Eq 8 matrices;
        *log_transitions*, when given, seeds the lazy log-space lane with
        matrices that were log-transformed once at plan-cache fill time.

        The assembled matrices are guaranteed float64 and C-contiguous:
        the vectorized decode lanes (:mod:`repro.core.viterbi`,
        :mod:`repro.core.astar`) take whole-matrix products and row
        slices of them, and the layout guarantee keeps those batched
        operations on the no-copy fast path.  (``ascontiguousarray`` is
        a no-op on already-conforming arrays, including the plan cache's
        read-only views, and never changes values — bit-identity across
        cached/uncached construction is preserved.)
        """
        transitions = [
            np.ascontiguousarray(t, dtype=np.float64) for t in transitions
        ]
        # π — Eq 7 (frequency-proportional over the first candidate list)
        pi = normalize_distribution(freqs)

        # B — Eq 9 with the Eq 5 smoothing applied to the raw sims first.
        # The global indication spans every position of *this query*, so
        # it is recomputed per assembly (it cannot live in a term plan).
        global_sim = np.concatenate(raw_sims)
        global_mean = float(global_sim.mean()) if global_sim.size else 0.0
        emissions: List[np.ndarray] = []
        for raw in raw_sims:
            if smoothing_lambda < 1.0:
                blended = smoothing_lambda * raw + (1 - smoothing_lambda) * global_mean
            else:
                blended = raw
            emissions.append(normalize_distribution(blended))

        hmm = cls(
            query=query,
            states=states,
            pi=pi,
            emissions=emissions,
            transitions=transitions,
        )
        if log_transitions is not None:
            hmm._log_transitions = list(log_transitions)
        return hmm

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    @property
    def length(self) -> int:
        """m — number of steps (query length)."""
        return len(self.states)

    def n_states(self, position: int) -> int:
        """Number of hidden states at one position."""
        return len(self.states[position])

    @property
    def search_space(self) -> int:
        """Total number of candidate queries: Π_i n_i (the O(n^m) space)."""
        total = 1
        for lst in self.states:
            total *= len(lst)
        return total

    # ------------------------------------------------------------------ #
    # log-space lane
    # ------------------------------------------------------------------ #

    @property
    def log_pi(self) -> np.ndarray:
        """``log π`` with zeros mapped to ``-inf`` (computed once)."""
        if self._log_pi is None:
            self._log_pi = log_matrix(self.pi)
        return self._log_pi

    @property
    def log_emissions(self) -> List[np.ndarray]:
        """Per-position ``log B`` columns (computed once)."""
        if self._log_emissions is None:
            self._log_emissions = [log_matrix(e) for e in self.emissions]
        return self._log_emissions

    @property
    def log_transitions(self) -> List[np.ndarray]:
        """Per-step ``log A`` matrices.

        Pre-seeded by the serving plan cache (logged once per cached
        term pair); computed lazily otherwise.
        """
        if self._log_transitions is None:
            self._log_transitions = [log_matrix(t) for t in self.transitions]
        return self._log_transitions

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #

    def path_score(self, path: Sequence[int]) -> float:
        """Eq 10 for one state path (indices into each position's list)."""
        if len(path) != self.length:
            raise ReformulationError(
                f"path length {len(path)} != query length {self.length}"
            )
        score = float(self.pi[path[0]]) * float(self.emissions[0][path[0]])
        for i in range(1, self.length):
            score *= float(self.transitions[i - 1][path[i - 1], path[i]])
            score *= float(self.emissions[i][path[i]])
        return score

    def scored_query(self, path: Sequence[int]) -> ScoredQuery:
        """Materialize a path into a :class:`ScoredQuery`."""
        terms = tuple(
            self.states[i][s].text for i, s in enumerate(path)
        )
        return ScoredQuery(
            terms=terms,
            score=self.path_score(path),
            state_path=tuple(path),
        )

    def is_identity_path(self, path: Sequence[int]) -> bool:
        """True if the path reproduces the original query verbatim."""
        return all(
            self.states[i][s].text == self.query[i]
            for i, s in enumerate(path)
        )


def term_frequencies(
    states: Sequence[CandidateState], frequency: FrequencyBackend
) -> np.ndarray:
    """Eq 7 numerators for one candidate list (void/unknown count as 1)."""
    return np.array(
        [
            frequency.frequency(s.node_id) if s.node_id is not None else 1.0
            for s in states
        ],
        dtype=np.float64,
    )


def pair_closeness_matrix(
    prev: Sequence[CandidateState],
    curr: Sequence[CandidateState],
    closeness: ClosenessBackend,
    void_closeness: float = 1e-4,
) -> np.ndarray:
    """Raw Eq 8 sub-matrix between two adjacent candidate lists.

    This is the ``O(n²)`` closeness-lookup loop of the HMM build, pulled
    out so the serving plan cache can memoize one matrix per adjacent
    term pair instead of re-running the loop on every query.
    """
    raw = np.zeros((len(prev), len(curr)), dtype=np.float64)
    for a_idx, a in enumerate(prev):
        for b_idx, b in enumerate(curr):
            raw[a_idx, b_idx] = _state_closeness(a, b, closeness, void_closeness)
    return raw


def log_matrix(values: np.ndarray) -> np.ndarray:
    """Elementwise ``log`` with zeros mapped to ``-inf`` (no warnings)."""
    with np.errstate(divide="ignore"):
        return np.log(values)


def _state_closeness(
    a: CandidateState,
    b: CandidateState,
    closeness: ClosenessBackend,
    void_closeness: float,
) -> float:
    """Closeness between two candidate states, handling void/unknown."""
    if a.is_void or b.is_void:
        return void_closeness
    if a.node_id is None or b.node_id is None:
        return 0.0  # unknown original term: smoothing provides the floor
    if a.node_id == b.node_id:
        # A term repeated in adjacent positions never helps a keyword
        # query; clos(v,v) is 0 by Eq 3's path definition.
        return 0.0
    return max(0.0, closeness.closeness(a.node_id, b.node_id))
