"""Suggestion diversification.

The paper values suggestions that are "novel and diverse, beyond the
returned papers and initial input query" (Section VI-B).  The HMM's top-k
often contains near-duplicates (two suggestions differing in one minor
term); this module re-ranks a candidate pool with maximal marginal
relevance (MMR):

    mmr(q) = λ · rel(q) − (1 − λ) · max_{s ∈ selected} overlap(q, s)

where relevance is the (normalized) generation score and overlap is the
Jaccard similarity of the keyword sets.  λ=1 reproduces the plain score
order; lower λ spreads the list over distinct substitution patterns.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.core.scoring import ScoredQuery
from repro.errors import ReformulationError


def keyword_overlap(a: ScoredQuery, b: ScoredQuery) -> float:
    """Jaccard similarity of two suggestions' keyword sets."""
    set_a: Set[str] = set(a.keywords)
    set_b: Set[str] = set(b.keywords)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def mmr_diversify(
    queries: Sequence[ScoredQuery],
    k: int,
    trade_off: float = 0.7,
) -> List[ScoredQuery]:
    """Select *k* suggestions balancing score against mutual overlap.

    Parameters
    ----------
    queries:
        Candidate pool, any order (typically the HMM top-2k..3k).
    k:
        Number of suggestions to return.
    trade_off:
        λ ∈ (0, 1]; 1.0 keeps the pure score ranking.
    """
    if k < 1:
        raise ReformulationError("k must be >= 1")
    if not 0.0 < trade_off <= 1.0:
        raise ReformulationError("trade_off must be in (0,1]")
    pool = list(queries)
    if not pool:
        return []

    max_score = max(q.score for q in pool)
    norm = max_score if max_score > 0 else 1.0

    selected: List[ScoredQuery] = []
    remaining = pool.copy()
    while remaining and len(selected) < k:
        best = None
        best_value = -float("inf")
        for candidate in remaining:
            relevance = candidate.score / norm
            redundancy = max(
                (keyword_overlap(candidate, s) for s in selected),
                default=0.0,
            )
            value = trade_off * relevance - (1 - trade_off) * redundancy
            if value > best_value:
                best_value = value
                best = candidate
        selected.append(best)
        remaining.remove(best)
    return selected


def distinct_term_coverage(queries: Sequence[ScoredQuery]) -> int:
    """Diversity diagnostic: number of distinct terms across suggestions."""
    return len({t for q in queries for t in q.keywords})
