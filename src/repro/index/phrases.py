"""Topical-phrase detection and phrase-aware analysis.

Definition 2 of the paper allows a query keyword to be "a word or a
topical phrase, depending on the tokenization/segmentation".  This module
supplies the segmentation half: a collocation model learns which adjacent
word pairs form phrases ("association rule", "nearest neighbor"), and a
phrase-aware analyzer merges them into single terms so they become
first-class TAT-graph nodes.

The phrase score is the standard corpus collocation statistic

    score(a, b) = (count(ab) - discount) * N / (count(a) * count(b))

(high when the pair occurs far more often than independence predicts),
with an absolute minimum pair count to keep rare noise out.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import IndexError_
from repro.index.analyzer import Analyzer
from repro.storage.database import Database

Bigram = Tuple[str, str]


@dataclass(frozen=True)
class PhraseStats:
    """Diagnostics of one accepted phrase."""

    bigram: Bigram
    count: int
    score: float

    @property
    def text(self) -> str:
        """The phrase as one space-joined term."""
        return f"{self.bigram[0]} {self.bigram[1]}"


class PhraseModel:
    """Learned collocations over a token-sequence corpus.

    Parameters
    ----------
    min_count:
        Minimum bigram occurrences (absolute support).
    min_score:
        Minimum collocation score (lift-style; ≥ 1 means "more often
        than independent").
    discount:
        Subtracted from bigram counts before scoring, biasing against
        barely-supported pairs (the word2vec δ).
    """

    def __init__(
        self,
        min_count: int = 3,
        min_score: float = 4.0,
        discount: float = 1.0,
    ) -> None:
        if min_count < 1:
            raise IndexError_("min_count must be >= 1")
        if min_score <= 0:
            raise IndexError_("min_score must be positive")
        self.min_count = min_count
        self.min_score = min_score
        self.discount = discount
        self._phrases: Dict[Bigram, PhraseStats] = {}
        self._learned = False

    # ------------------------------------------------------------------ #
    # learning
    # ------------------------------------------------------------------ #

    def learn(self, token_sequences: Iterable[List[str]]) -> "PhraseModel":
        """Count unigrams/bigrams over the sequences and accept phrases."""
        unigrams: Counter = Counter()
        bigrams: Counter = Counter()
        for tokens in token_sequences:
            unigrams.update(tokens)
            bigrams.update(zip(tokens, tokens[1:]))
        total = sum(unigrams.values())
        self._phrases = {}
        for bigram, count in bigrams.items():
            if count < self.min_count:
                continue
            a, b = bigram
            score = (
                (count - self.discount)
                * total
                / (unigrams[a] * unigrams[b])
            )
            if score >= self.min_score:
                self._phrases[bigram] = PhraseStats(bigram, count, score)
        self._learned = True
        return self

    @property
    def phrases(self) -> List[PhraseStats]:
        """Accepted phrases, most frequent first."""
        self._require_learned()
        return sorted(
            self._phrases.values(),
            key=lambda p: (-p.count, -p.score, p.bigram),
        )

    def is_phrase(self, a: str, b: str) -> bool:
        """True iff (a, b) was accepted as a collocation."""
        self._require_learned()
        return (a, b) in self._phrases

    def __len__(self) -> int:
        return len(self._phrases)

    def _require_learned(self) -> None:
        if not self._learned:
            raise IndexError_("phrase model not learned; call learn() first")

    # ------------------------------------------------------------------ #
    # segmentation
    # ------------------------------------------------------------------ #

    def merge(self, tokens: List[str]) -> List[str]:
        """Greedy left-to-right merge of adjacent phrase pairs.

        A merged phrase becomes one space-joined term ("association
        rule"); merging is non-overlapping and single-pass, so trigram
        phrases require two learn/merge rounds (as in word2vec).
        """
        self._require_learned()
        out: List[str] = []
        i = 0
        while i < len(tokens):
            if i + 1 < len(tokens) and (tokens[i], tokens[i + 1]) in self._phrases:
                out.append(f"{tokens[i]} {tokens[i + 1]}")
                i += 2
            else:
                out.append(tokens[i])
                i += 1
        return out


class PhraseAnalyzer(Analyzer):
    """An :class:`Analyzer` that merges learned phrases into single terms.

    Drop-in replacement anywhere an analyzer is accepted (inverted index,
    workloads): segmented fields are tokenized, then adjacent collocation
    pairs become one term each; atomic fields are untouched.
    """

    def __init__(self, model: PhraseModel, **analyzer_kwargs) -> None:
        super().__init__(**analyzer_kwargs)
        self.model = model

    def tokenize(self, text: str) -> List[str]:
        """Tokenize, then merge learned collocations."""
        return self.model.merge(super().tokenize(text))


def learn_phrases_from_database(
    database: Database,
    analyzer: Optional[Analyzer] = None,
    min_count: int = 3,
    min_score: float = 4.0,
) -> PhraseModel:
    """Learn a phrase model from every segmented text field of a database."""
    analyzer = analyzer or Analyzer()

    def sequences() -> Iterable[List[str]]:
        for table_name in database.table_names:
            table = database.table(table_name)
            schema = table.schema
            segmented = [
                f for f in schema.text_fields if not schema.is_atomic(f)
            ]
            if not segmented:
                continue
            for row in table.scan():
                for field_name in segmented:
                    value = row.get(field_name)
                    if value:
                        yield analyzer.tokenize(str(value))

    return PhraseModel(min_count=min_count, min_score=min_score).learn(
        sequences()
    )
