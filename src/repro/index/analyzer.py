"""Text analysis: tokenization, normalization, stopword removal.

This is the Lucene-analyzer substitute.  Two analysis modes mirror
Section IV-A of the paper:

* **segmented** fields (e.g. paper titles) are split into individual word
  terms;
* **atomic** fields (author names, conference names) are kept as a single
  term because "all terms stand together for certain semantic meaning".
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Optional

_TOKEN_RE = re.compile(r"[a-z0-9][a-z0-9+\-]*")

#: Minimal English stopword list tuned for bibliographic titles.  The paper
#: indexes DBLP titles; articles/prepositions would otherwise dominate the
#: term-node degree distribution and wash out the random walk.
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    """
    a an and are as at be by for from has have in into is it its of on or
    over s t that the their this to towards under using via we with within
    """.split()
)


class Analyzer:
    """Configurable tokenizer + normalizer.

    Parameters
    ----------
    stopwords:
        Terms to drop from segmented fields (never applied to atomic
        fields).  Pass ``frozenset()`` to keep everything.
    min_token_len:
        Tokens shorter than this are dropped from segmented fields.
    """

    def __init__(
        self,
        stopwords: Optional[Iterable[str]] = None,
        min_token_len: int = 2,
    ) -> None:
        if stopwords is None:
            stopwords = DEFAULT_STOPWORDS
        self.stopwords: FrozenSet[str] = frozenset(w.lower() for w in stopwords)
        self.min_token_len = min_token_len

    def normalize(self, text: str) -> str:
        """Lowercase and collapse whitespace (used for atomic terms)."""
        return " ".join(text.lower().split())

    def tokenize(self, text: str) -> List[str]:
        """Split *text* into normalized tokens, keeping duplicates.

        Duplicates matter: term frequency inside one field contributes to
        edge weights in the TAT graph.
        """
        text = text.lower()
        tokens = _TOKEN_RE.findall(text)
        return [
            tok
            for tok in tokens
            if len(tok) >= self.min_token_len and tok not in self.stopwords
        ]

    def analyze(self, text: str, atomic: bool = False) -> List[str]:
        """Produce the terms of one field value.

        Atomic fields yield at most one term (the normalized full value);
        segmented fields yield the token list.
        """
        if atomic:
            normalized = self.normalize(text)
            return [normalized] if normalized else []
        return self.tokenize(text)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Analyzer(stopwords={len(self.stopwords)}, "
            f"min_token_len={self.min_token_len})"
        )
