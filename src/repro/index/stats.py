"""Corpus-level statistics helpers layered over the inverted index.

Mostly convenience views used by the contextual preference vector
(Definition 6) and by the evaluation metrics: term frequency rankings,
co-occurrence counts between a term and its context nodes, and field-level
summaries.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.index.inverted import FieldRef, FieldTerm, InvertedIndex
from repro.storage.database import TupleRef


class CorpusStats:
    """Read-only statistics over a built :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index

    def term_frequencies(
        self, field: Optional[FieldRef] = None
    ) -> List[Tuple[FieldTerm, int]]:
        """All (term, collection frequency) pairs, most frequent first."""
        items = [
            (term, self.index.total_tf(term))
            for term in self.index.terms()
            if field is None or term.field == field
        ]
        items.sort(key=lambda pair: (-pair[1], pair[0]))
        return items

    def top_terms(
        self, n: int, field: Optional[FieldRef] = None
    ) -> List[FieldTerm]:
        """The *n* most frequent terms (optionally within one field)."""
        return [term for term, _ in self.term_frequencies(field)[:n]]

    def cooccurrence_counts(self, term: FieldTerm) -> Counter:
        """freq(v_c, t0): how often each other term shares a tuple with *term*.

        This is the node-weight ingredient of the contextual preference
        vector and the raw signal of the co-occurrence baseline.
        """
        counts: Counter = Counter()
        for posting in self.index.postings(term):
            for other, tf in self.index.terms_of(posting.ref):
                if other != term:
                    counts[other] += min(posting.tf, tf)
        return counts

    def shared_tuples(self, a: FieldTerm, b: FieldTerm) -> int:
        """Number of tuples containing both *a* and *b*."""
        refs_a = {p.ref for p in self.index.postings(a)}
        if not refs_a:
            return 0
        return sum(1 for p in self.index.postings(b) if p.ref in refs_a)

    def field_summary(self) -> Dict[FieldRef, Dict[str, int]]:
        """Per-field vocabulary size and total term mass."""
        summary: Dict[FieldRef, Dict[str, int]] = {}
        for term in self.index.terms():
            entry = summary.setdefault(
                term.field, {"vocabulary": 0, "occurrences": 0}
            )
            entry["vocabulary"] += 1
            entry["occurrences"] += self.index.total_tf(term)
        return summary

    def tuples_of(self, term: FieldTerm) -> List[TupleRef]:
        """Tuple refs containing one term."""
        return [p.ref for p in self.index.postings(term)]
