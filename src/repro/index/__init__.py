"""Full-text indexing layer (the paper's Lucene substitute)."""

from repro.index.analyzer import DEFAULT_STOPWORDS, Analyzer
from repro.index.inverted import FieldRef, FieldTerm, InvertedIndex, Posting
from repro.index.stats import CorpusStats

__all__ = [
    "Analyzer",
    "DEFAULT_STOPWORDS",
    "FieldRef",
    "FieldTerm",
    "InvertedIndex",
    "Posting",
    "CorpusStats",
]
