"""Field-aware inverted index over a :class:`~repro.storage.Database`.

This is the Lucene substitute.  The unit of indexing is the **field term**:
terms carry the ``(table, field)`` label they were extracted from, because
the paper treats "term nodes with same text extracted from different
fields" as distinct nodes (Section IV-A).

Postings map a field term to the tuples containing it, with per-tuple term
frequency.  The index also exposes the corpus statistics the contextual
preference vector needs: document frequency, idf, and field cardinality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IndexError_
from repro.index.analyzer import Analyzer
from repro.storage.database import Database, TupleRef

#: A field is identified by ``(table_name, column_name)``.
FieldRef = Tuple[str, str]


@dataclass(frozen=True, order=True)
class FieldTerm:
    """A term labelled with the field it was extracted from."""

    field: FieldRef
    text: str

    def __str__(self) -> str:
        table, column = self.field
        return f"{table}.{column}:{self.text}"


@dataclass(frozen=True)
class Posting:
    """One occurrence record: the tuple and the in-tuple term frequency."""

    ref: TupleRef
    tf: int


class InvertedIndex:
    """Inverted index built from every text field of a database."""

    def __init__(self, database: Database, analyzer: Optional[Analyzer] = None) -> None:
        self.database = database
        self.analyzer = analyzer or Analyzer()
        self._postings: Dict[FieldTerm, List[Posting]] = {}
        # forward index: tuple -> list of (term, tf); needed for TAT edges.
        self._forward: Dict[TupleRef, List[Tuple[FieldTerm, int]]] = {}
        self._field_vocab: Dict[FieldRef, int] = {}
        self._doc_count = 0
        self._built = False

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #

    def build(self) -> "InvertedIndex":
        """Index every text field of every tuple.  Idempotent."""
        if self._built:
            return self
        for table_name in self.database.table_names:
            table = self.database.table(table_name)
            schema = table.schema
            if not schema.text_fields:
                continue
            for row in table.scan():
                ref: TupleRef = (table_name, row[schema.primary_key])
                self._index_row(ref, row, schema)
                self._doc_count += 1
        self._built = True
        return self

    def add_rows(
        self, refs: Sequence[TupleRef]
    ) -> List[Tuple[TupleRef, List[Tuple[FieldTerm, int]]]]:
        """Index freshly inserted rows in place (incremental extension).

        The rows must already live in the database and must not have been
        indexed before.  Returns ``(ref, [(term, tf), ...])`` per ref, in
        input order — the containment-edge material the TAT graph's
        :meth:`~repro.graph.tat.TATGraph.add_tuples` consumes.

        Every global statistic shifts accordingly: ``doc_count`` grows, the
        touched terms' ``df`` grows, and — because idf depends on the
        document count — **every** term's idf drifts.  Callers holding
        ``tf · idf`` edge weights must reweight them (see
        ``TATGraph.add_tuples``).
        """
        self._require_built()
        out: List[Tuple[TupleRef, List[Tuple[FieldTerm, int]]]] = []
        for ref in refs:
            table_name, pk = ref
            table = self.database.table(table_name)
            schema = table.schema
            if not schema.text_fields:
                out.append((ref, []))
                continue
            if ref in self._forward:
                raise IndexError_(f"tuple {ref} is already indexed")
            entry = self._index_row(ref, table.get(pk), schema)
            self._doc_count += 1
            out.append((ref, entry))
        return out

    def _index_row(
        self, ref: TupleRef, row: Dict[str, object], schema
    ) -> List[Tuple[FieldTerm, int]]:
        counts: Dict[FieldTerm, int] = {}
        for field_name in schema.text_fields:
            value = row.get(field_name)
            if not value:
                continue
            terms = self.analyzer.analyze(
                str(value), atomic=schema.is_atomic(field_name)
            )
            field: FieldRef = (schema.name, field_name)
            for text in terms:
                term = FieldTerm(field, text)
                counts[term] = counts.get(term, 0) + 1
        if not counts:
            return []
        forward_entry: List[Tuple[FieldTerm, int]] = []
        for term, tf in counts.items():
            postings = self._postings.get(term)
            if postings is None:
                postings = self._postings[term] = []
                self._field_vocab[term.field] = (
                    self._field_vocab.get(term.field, 0) + 1
                )
            postings.append(Posting(ref, tf))
            forward_entry.append((term, tf))
        self._forward[ref] = forward_entry
        return forward_entry

    def _require_built(self) -> None:
        if not self._built:
            raise IndexError_("index not built; call build() first")

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def postings(self, term: FieldTerm) -> List[Posting]:
        """Postings list for a field term (empty if unseen)."""
        self._require_built()
        return self._postings.get(term, [])

    def lookup_text(self, text: str) -> List[FieldTerm]:
        """All field terms whose text matches *text* (normalized), any field.

        A keyword query does not say which field a keyword belongs to; this
        resolves the text against every field's vocabulary.
        """
        self._require_built()
        normalized = self.analyzer.normalize(text)
        return [t for t in self._postings if t.text == normalized]

    def tuples_matching(self, text: str) -> Dict[TupleRef, int]:
        """All tuples containing *text* in any field, with total tf."""
        matches: Dict[TupleRef, int] = {}
        for term in self.lookup_text(text):
            for posting in self._postings[term]:
                matches[posting.ref] = matches.get(posting.ref, 0) + posting.tf
        return matches

    def terms_of(self, ref: TupleRef) -> List[Tuple[FieldTerm, int]]:
        """Forward lookup: the field terms contained in one tuple."""
        self._require_built()
        return self._forward.get(ref, [])

    def terms(self) -> Iterator[FieldTerm]:
        """Iterate every indexed field term."""
        self._require_built()
        yield from self._postings

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    @property
    def doc_count(self) -> int:
        """Number of indexed tuples (tuples with at least one text field)."""
        return self._doc_count

    def vocabulary_size(self) -> int:
        """Number of distinct field terms."""
        self._require_built()
        return len(self._postings)

    def df(self, term: FieldTerm) -> int:
        """Document frequency: number of tuples containing *term*."""
        return len(self.postings(term))

    def total_tf(self, term: FieldTerm) -> int:
        """Collection frequency: total occurrences of *term*."""
        return sum(p.tf for p in self.postings(term))

    def idf(self, term: FieldTerm) -> float:
        """Smoothed inverse document frequency, always > 0."""
        self._require_built()
        return math.log(1.0 + self._doc_count / (1.0 + self.df(term)))

    def field_cardinality(self, field: FieldRef) -> int:
        """|F_i|: number of distinct terms extracted from *field*."""
        self._require_built()
        return self._field_vocab.get(field, 0)

    def fields(self) -> List[FieldRef]:
        """All indexed (table, column) fields, sorted."""
        self._require_built()
        return sorted(self._field_vocab)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InvertedIndex(docs={self._doc_count}, "
            f"vocab={len(self._postings)}, built={self._built})"
        )
