"""Serving-daemon configuration.

Every knob of the network layer in one frozen dataclass, mirroring
:class:`~repro.core.reformulator.ReformulatorConfig` for the pipeline.
The defaults target a small single-host deployment; the CLI ``serve``
verb exposes the admission and deadline knobs as flags.

Capacity model
--------------

``max_concurrency`` requests execute at once (a semaphore); up to
``queue_depth`` more wait for at most ``queue_timeout_s`` seconds.
Anything beyond that is *shed* immediately with ``429 Too Many
Requests`` and a ``Retry-After`` hint — the daemon prefers a fast
refusal over unbounded queueing, so latency stays bounded under
overload (the classic admission-control trade).

Deadline model
--------------

A request may carry ``deadline_ms``; ``default_deadline_ms`` applies
when it does not (0 disables deadlines entirely).  Queue wait counts
against the deadline.  When the remaining budget is smaller than
``degrade_safety`` times the observed full-path latency (EWMA, floored
at ``min_latency_estimate_s``), the handler *degrades* instead of
blowing the deadline: it serves the result-cache entry if one exists,
else the single-best Viterbi decode, and marks the response
``"degraded": true``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ReproError
from repro.lanes.router import KNOWN_LANES, RouterConfig


class ServerConfigError(ReproError):
    """Invalid serving-daemon configuration."""


@dataclass(frozen=True)
class ServerConfig:
    """All tunables of the HTTP serving daemon."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Requests executing at once (admission semaphore permits).
    max_concurrency: int = 8
    #: Requests allowed to wait for a permit; 0 sheds on saturation.
    queue_depth: int = 16
    #: Longest a queued request waits before being shed.
    queue_timeout_s: float = 1.0
    #: Deadline applied when the request does not carry ``deadline_ms``
    #: (0 = no deadline, never degrade unless the request asks for one).
    default_deadline_ms: int = 0
    #: Degrade when ``remaining < degrade_safety * estimated_latency``.
    degrade_safety: float = 1.5
    #: Floor of the latency estimate, so tiny deadlines degrade even
    #: before the EWMA has samples.
    min_latency_estimate_s: float = 0.005
    #: Clamp of the computed ``Retry-After`` hint (seconds).
    retry_after_min_s: int = 1
    retry_after_max_s: int = 30
    #: Idle keep-alive connections are closed after this long; it also
    #: bounds how long a drain waits on an idle connection.
    keepalive_timeout_s: float = 5.0
    #: Hard cap on ``workers`` accepted by the batch endpoint.
    max_batch_workers: int = 8
    #: Default ``k`` when a request does not specify one.
    default_k: int = 10
    #: Build the pipeline before serving, so ``/readyz`` is green from
    #: the first accepted connection.
    warm_on_start: bool = True
    #: Bind with ``SO_REUSEPORT`` so several worker processes can listen
    #: on the same port and let the kernel balance accepts (the pre-fork
    #: pool of :mod:`repro.server.prefork` sets this on every worker).
    reuse_port: bool = False
    #: Identity of this process inside a pre-fork pool (0 standalone).
    worker_index: int = 0
    #: Directory where this worker periodically spools a JSON metrics
    #: snapshot, and where ``GET /metrics/aggregate`` merges the whole
    #: pool's snapshots from.  ``None`` (standalone) makes the aggregate
    #: view identical to ``/metrics``.  Flight-recorder trace snapshots
    #: (``traces-worker-NNNN.json``) share the same directory, merged by
    #: ``GET /debug/traces``.
    metrics_spool_dir: Optional[str] = None
    #: Seconds between metrics-snapshot spool writes.
    metrics_flush_interval_s: float = 1.0
    #: Head-sampling rate of request traces kept in the flight
    #: recorder's *sampled* ring (slow/degraded/shed requests are always
    #: kept regardless).  1.0 keeps every request, 0.0 only notable ones.
    trace_sample_rate: float = 0.1
    #: Requests slower than this are always captured by the flight
    #: recorder, whatever the sampling decision said.
    slow_trace_ms: float = 500.0
    #: Per-ring capacity of the in-memory flight recorder.
    flight_recorder_size: int = 64
    #: JSON-lines access log (one line per request: trace id, route,
    #: status, stage latencies, cache/degraded flags).  ``None`` disables.
    #: Opened in append mode per worker, so a pre-fork pool can share one
    #: path — each line is a single O_APPEND write.
    access_log_path: Optional[str] = None
    #: Reformulation lanes the daemon serves (``{"lane": ...}`` request
    #: field); names outside this set get a 400.
    lanes: Tuple[str, ...] = KNOWN_LANES
    #: Lane used when a request does not name one.
    default_lane: str = "hmm"
    #: Lane to re-route through when the routed lane's best-path cohesion
    #: falls below ``cohesion_threshold`` (``None`` disables the chain).
    fallback_lane: Optional[str] = None
    #: Cohesion threshold of the fallback chain (and the relaxation
    #: lane's own incohesion trigger).
    cohesion_threshold: float = 1e-9

    def router_config(self) -> RouterConfig:
        """The lane-routing slice of this config, for the live wrapper."""
        return RouterConfig(
            lanes=tuple(self.lanes),
            default_lane=self.default_lane,
            fallback_lane=self.fallback_lane,
            cohesion_threshold=self.cohesion_threshold,
        )

    def validate(self) -> None:
        """Raise :class:`ServerConfigError` on out-of-range values."""
        if self.max_concurrency < 1:
            raise ServerConfigError("max_concurrency must be >= 1")
        if self.queue_depth < 0:
            raise ServerConfigError("queue_depth must be >= 0")
        if self.queue_timeout_s < 0:
            raise ServerConfigError("queue_timeout_s must be >= 0")
        if self.default_deadline_ms < 0:
            raise ServerConfigError("default_deadline_ms must be >= 0")
        if self.degrade_safety <= 0:
            raise ServerConfigError("degrade_safety must be > 0")
        if self.min_latency_estimate_s <= 0:
            raise ServerConfigError("min_latency_estimate_s must be > 0")
        if not 0 < self.retry_after_min_s <= self.retry_after_max_s:
            raise ServerConfigError(
                "need 0 < retry_after_min_s <= retry_after_max_s"
            )
        if self.max_batch_workers < 1:
            raise ServerConfigError("max_batch_workers must be >= 1")
        if self.default_k < 1:
            raise ServerConfigError("default_k must be >= 1")
        if self.worker_index < 0:
            raise ServerConfigError("worker_index must be >= 0")
        if self.metrics_flush_interval_s <= 0:
            raise ServerConfigError("metrics_flush_interval_s must be > 0")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ServerConfigError("trace_sample_rate must be in [0, 1]")
        if self.slow_trace_ms < 0:
            raise ServerConfigError("slow_trace_ms must be >= 0")
        if self.flight_recorder_size < 1:
            raise ServerConfigError("flight_recorder_size must be >= 1")
        try:
            self.router_config().validate()
        except ReproError as exc:
            raise ServerConfigError(str(exc)) from None
