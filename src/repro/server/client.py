"""Minimal stdlib HTTP client for the serving daemon.

Used by the test suite, the load benchmark and as the reference for
integrating from other processes — one persistent keep-alive connection
per :class:`ServerClient`, JSON in/out, no third-party dependency.

Responses are returned as :class:`ServerResponse` rather than raised on
non-2xx, because overload (429) and draining (503) are *expected*
states the caller is supposed to branch on::

    with ServerClient(port=server.port) as client:
        response = client.reformulate(["probabilistic", "query"], k=5)
        if response.status == 429:
            time.sleep(response.retry_after or 1)
        else:
            for s in response.json["suggestions"]:
                print(s["score"], s["text"])
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence
from urllib.parse import quote, urlencode

from repro.errors import ReproError


class ServerClientError(ReproError):
    """Transport-level client failure (connect/read errors)."""


@dataclass(frozen=True)
class ServerResponse:
    """One HTTP exchange, body parsed lazily."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        """2xx."""
        return 200 <= self.status < 300

    @property
    def text(self) -> str:
        """Body decoded as UTF-8."""
        return self.body.decode("utf-8")

    @property
    def json(self) -> Any:
        """Body parsed as JSON."""
        return json.loads(self.body) if self.body else None

    @property
    def retry_after(self) -> Optional[int]:
        """Parsed ``Retry-After`` header, when present."""
        value = self.headers.get("retry-after")
        return int(value) if value is not None else None

    @property
    def request_id(self) -> Optional[str]:
        """The ``X-Request-Id`` the server stamped on this response."""
        return self.headers.get("x-request-id")


class ServerClient:
    """Keep-alive JSON client for :class:`~repro.server.app.ReformulationServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout_s: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
            conn.connect()
            # Requests are tiny; leaving Nagle on trades latency for
            # nothing here (see the matching server-side setting).
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._conn = conn
        return self._conn

    def close(self) -> None:
        """Drop the persistent connection (reopened on next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        request_id: Optional[str] = None,
    ) -> ServerResponse:
        """One JSON exchange; retries once on a stale keep-alive socket.

        *request_id* is sent as ``X-Request-Id`` so the server traces
        the request under the caller's id (echoed back in the response
        and joinable against the access log / ``/debug/traces``).
        """
        body = None
        headers = {"Accept": "application/json"}
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (1, 2):
            try:
                conn = self._connection()
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                return ServerResponse(
                    status=response.status,
                    headers={
                        name.lower(): value
                        for name, value in response.getheaders()
                    },
                    body=data,
                )
            except (http.client.HTTPException, OSError) as exc:
                # The server closes idle keep-alive sockets; a request
                # racing that close fails exactly once — reconnect.
                self.close()
                if attempt == 2:
                    raise ServerClientError(
                        f"{method} {path} failed: {exc}"
                    ) from exc
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #

    def reformulate(
        self,
        keywords: Optional[Sequence[str]] = None,
        k: Optional[int] = None,
        algorithm: Optional[str] = None,
        deadline_ms: Optional[int] = None,
        query: Optional[str] = None,
        lane: Optional[str] = None,
    ) -> ServerResponse:
        """``POST /reformulate`` (pre-tokenized keywords or a raw query)."""
        payload: Dict[str, Any] = {}
        if keywords is not None:
            payload["keywords"] = list(keywords)
        if query is not None:
            payload["query"] = query
        if k is not None:
            payload["k"] = k
        if algorithm is not None:
            payload["algorithm"] = algorithm
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if lane is not None:
            payload["lane"] = lane
        return self.request("POST", "/reformulate", payload)

    def reformulate_batch(
        self,
        queries: Sequence[Sequence[str]],
        k: Optional[int] = None,
        algorithm: Optional[str] = None,
        workers: Optional[int] = None,
        deadline_ms: Optional[int] = None,
        lane: Optional[str] = None,
    ) -> ServerResponse:
        """``POST /reformulate/batch``."""
        payload: Dict[str, Any] = {
            "queries": [list(query) for query in queries]
        }
        if k is not None:
            payload["k"] = k
        if algorithm is not None:
            payload["algorithm"] = algorithm
        if workers is not None:
            payload["workers"] = workers
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if lane is not None:
            payload["lane"] = lane
        return self.request("POST", "/reformulate/batch", payload)

    def similar(self, term: str, n: int = 10) -> ServerResponse:
        """``GET /similar``."""
        params = urlencode({"term": term, "n": n}, quote_via=quote)
        return self.request("GET", f"/similar?{params}")

    def healthz(self) -> ServerResponse:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def readyz(self) -> ServerResponse:
        """``GET /readyz``."""
        return self.request("GET", "/readyz")

    def metrics(self) -> ServerResponse:
        """``GET /metrics`` (Prometheus text format)."""
        return self.request("GET", "/metrics")

    def metrics_aggregate(self) -> ServerResponse:
        """``GET /metrics/aggregate`` (pool-wide Prometheus view)."""
        return self.request("GET", "/metrics/aggregate")

    def debug_traces(self, n: Optional[int] = None) -> ServerResponse:
        """``GET /debug/traces`` (pool-wide flight-recorder view)."""
        path = "/debug/traces" if n is None else f"/debug/traces?n={n}"
        return self.request("GET", path)

    def admin_reload(self) -> ServerResponse:
        """``POST /admin/reload``."""
        return self.request("POST", "/admin/reload", {})

    def wait_ready(self, timeout_s: float = 10.0) -> bool:
        """Poll ``/readyz`` until 200 or *timeout_s* elapses."""
        limit = time.monotonic() + timeout_s
        while time.monotonic() < limit:
            try:
                if self.readyz().status == 200:
                    return True
            except ServerClientError:
                pass
            time.sleep(0.05)
        return False


def suggestions_signature(
    suggestions: List[Dict[str, Any]]
) -> List[tuple]:
    """Comparison key matching in-process ``(text, score, state_path)``.

    JSON round-trips floats exactly (``repr`` in, ``float`` out), so
    equality against direct :meth:`LiveReformulator.reformulate` output
    is bit-identical, not approximate.
    """
    return [
        (s["text"], s["score"], tuple(s["state_path"])) for s in suggestions
    ]
