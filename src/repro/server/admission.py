"""Admission control: bounded concurrency with a bounded wait queue.

The controller owns a semaphore of ``max_concurrency`` permits.  A
request that finds a free permit executes immediately; otherwise it may
wait, but only while fewer than ``queue_depth`` requests are already
waiting and only up to a timeout.  Everything else is **shed** — the
caller gets :class:`OverloadedError` and turns it into ``429 Too Many
Requests`` with a ``Retry-After`` hint.

Why shed instead of queue deeper: with a fixed service rate, queue
length is the latency the *next* request will see.  Past
``queue_depth`` the daemon would only be manufacturing timeouts, so the
honest answer is an immediate refusal the client can back off from.

The controller is pure threading (no asyncio) to match the threaded
``http.server`` stack, and is independently testable without sockets.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ReproError

#: Shed causes, also used as the ``reason`` attached to the error.
SHED_QUEUE_FULL = "queue_full"
SHED_TIMEOUT = "timeout"


class OverloadedError(ReproError):
    """Request shed by admission control (HTTP 429).

    ``waited_s`` carries the queue time the request spent before being
    shed, so the access log and flight recorder can attribute the wait
    even for requests that never executed.
    """

    def __init__(
        self, reason: str, retry_after_s: int = 1, waited_s: float = 0.0
    ) -> None:
        super().__init__(f"overloaded ({reason})")
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.waited_s = waited_s


@dataclass(frozen=True)
class AdmissionStats:
    """Plain-integer counter snapshot (ungated, always available)."""

    admitted: int
    shed_queue_full: int
    shed_timeout: int
    executing: int
    waiting: int

    @property
    def shed(self) -> int:
        """Total shed requests, both causes."""
        return self.shed_queue_full + self.shed_timeout


class AdmissionController:
    """Semaphore-bounded concurrency plus a bounded, timed wait queue."""

    def __init__(
        self,
        max_concurrency: int,
        queue_depth: int = 0,
        queue_timeout_s: float = 1.0,
    ) -> None:
        if max_concurrency < 1:
            raise ReproError("max_concurrency must be >= 1")
        if queue_depth < 0:
            raise ReproError("queue_depth must be >= 0")
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self.queue_timeout_s = queue_timeout_s
        self._semaphore = threading.Semaphore(max_concurrency)
        self._lock = threading.Lock()
        self._executing = 0
        self._waiting = 0
        self._admitted = 0
        self._shed_queue_full = 0
        self._shed_timeout = 0

    # ------------------------------------------------------------------ #
    # acquire / release
    # ------------------------------------------------------------------ #

    def acquire(self, timeout_s: Optional[float] = None) -> float:
        """Take one execution permit or raise :class:`OverloadedError`.

        *timeout_s* caps the queue wait below ``queue_timeout_s`` (a
        request with little deadline budget left should not out-wait
        its own deadline); ``None`` uses the configured timeout.

        Returns the seconds this request spent waiting in the queue
        (0.0 on the uncontended fast path), so the caller can attribute
        queue wait separately from decode time.
        """
        if self._semaphore.acquire(blocking=False):
            with self._lock:
                self._executing += 1
                self._admitted += 1
            return 0.0
        with self._lock:
            if self._waiting >= self.queue_depth:
                self._shed_queue_full += 1
                raise OverloadedError(SHED_QUEUE_FULL)
            self._waiting += 1
        budget = self.queue_timeout_s
        if timeout_s is not None:
            budget = min(budget, timeout_s)
        wait_start = time.perf_counter()
        admitted = self._semaphore.acquire(timeout=max(0.0, budget))
        waited = time.perf_counter() - wait_start
        with self._lock:
            self._waiting -= 1
            if admitted:
                self._executing += 1
                self._admitted += 1
            else:
                self._shed_timeout += 1
        if not admitted:
            raise OverloadedError(SHED_TIMEOUT, waited_s=waited)
        return waited

    def release(self) -> None:
        """Return one execution permit."""
        with self._lock:
            self._executing -= 1
        self._semaphore.release()

    @contextmanager
    def admit(self, timeout_s: Optional[float] = None) -> Iterator[float]:
        """``with admission.admit() as waited_s: ...`` — acquire, run,
        release; yields the queue wait in seconds."""
        waited = self.acquire(timeout_s=timeout_s)
        try:
            yield waited
        finally:
            self.release()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> AdmissionStats:
        """Counter snapshot."""
        with self._lock:
            return AdmissionStats(
                admitted=self._admitted,
                shed_queue_full=self._shed_queue_full,
                shed_timeout=self._shed_timeout,
                executing=self._executing,
                waiting=self._waiting,
            )

    @property
    def saturated(self) -> bool:
        """True when every permit is taken and the queue is full."""
        with self._lock:
            return (
                self._executing >= self.max_concurrency
                and self._waiting >= self.queue_depth
            )
