"""SO_REUSEPORT pre-fork worker pool for the serving daemon.

One master process owns no request path at all — it exists to fork,
watch, and drain N :class:`~repro.server.app.ReformulationServer`
workers that each bind the *same* ``(host, port)`` with ``SO_REUSEPORT``
and let the kernel balance accepted connections across them.  That turns
the GIL-bound single daemon into one serving process per core:

.. code-block:: text

    master ── resolver socket (bound, never listening: reserves the port)
      ├─ fork → worker 0: bind+listen SO_REUSEPORT, own admission/caches
      ├─ fork → worker 1:   "    (kernel balances accepts between them)
      └─ monitor thread: waitpid each child, respawn on crash,
                         SIGTERM fan-out + reap on shutdown

Design points:

* **Copy-on-write sharing.**  The pipeline factory runs (and should
  warm) *before* the forks, so the TAT graph, index, and — with a v3
  binary store (:mod:`repro.storage.binary`) — the memmapped relation
  blocks are physically shared: each worker adds only its own caches
  and request state on top of one resident copy.
* **The master reserves but never serves the port.**  The resolver
  socket is bound with ``SO_REUSEPORT`` yet never calls ``listen()``,
  so it resolves ``port=0`` to a concrete port for the children and
  keeps the port claimed between a crash and the respawn, while
  receiving none of the kernel-balanced connections itself.
* **Crash containment.**  A worker that dies (segfault, OOM kill,
  ``kill -9``) is reaped by the monitor and respawned with the same
  worker index, up to ``max_respawns`` times per slot; its siblings
  keep serving throughout.
* **Drain semantics.**  ``shutdown()`` (or SIGTERM via
  :meth:`PreforkServer.install_signal_handlers`) fans SIGTERM out to
  every worker; each worker runs its own in-process drain (stop
  accepting, join in-flight handlers, flush the metrics spool) and
  exits.  Workers still alive after ``drain_timeout_s`` get SIGKILL.
* **Metrics.**  Every worker keeps its per-process ``/metrics``; all
  workers spool JSON snapshots into a shared directory, and any
  worker's ``GET /metrics/aggregate`` merges the pool
  (:func:`repro.obs.export.merge_snapshots`).
* **Traces.**  Each worker also spools its flight-recorder contents
  (``traces-worker-NNNN.json``) into the same directory on the metrics
  flush cadence, so ``GET /debug/traces`` on *any* worker returns the
  pool-wide view (:func:`repro.obs.flight.merge_trace_snapshots`) —
  the kernel may route the debug request to a different worker than
  the slow query it is investigating.  Request ids ride ``X-Request-Id``
  headers end to end, so a client can trace a request without caring
  which worker served it.

Everything is standard library: ``os.fork``, a status pipe per worker
for the READY handshake, and ``os.waitpid(pid, WNOHANG)`` polling (a
specific pid, never ``-1`` — the embedding process may own unrelated
children).
"""

from __future__ import annotations

import dataclasses
import logging
import os
import select
import shutil
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import ReproError
from repro.live import LiveReformulator
from repro.server.app import ReformulationServer
from repro.server.config import ServerConfig

logger = logging.getLogger("repro.server.prefork")

#: Default cap on automatic respawns per worker slot.
DEFAULT_MAX_RESPAWNS = 3


@dataclass
class _Worker:
    """Master-side bookkeeping for one forked worker."""

    index: int
    pid: int
    status_fd: int
    alive: bool = True
    ready: bool = False
    respawns: int = 0
    status_buf: bytes = field(default=b"", repr=False)


class PreforkServer:
    """Master of a pre-fork pool of :class:`ReformulationServer` workers.

    Parameters
    ----------
    live_factory:
        Zero-argument callable returning the :class:`LiveReformulator`
        a worker serves.  Called once per worker *after* the fork — to
        share the pipeline copy-on-write, build and warm it first and
        return the same object from every call.
    config:
        Template :class:`ServerConfig`.  Each worker gets a copy with
        the resolved port, ``reuse_port=True``, its ``worker_index``,
        and the shared ``metrics_spool_dir`` filled in.
    workers:
        Number of worker processes (>= 1).
    max_respawns:
        Automatic restarts allowed per worker slot before the slot is
        abandoned (the pool keeps serving on the remaining workers).
    drain_timeout_s:
        How long ``shutdown()`` waits for SIGTERM-initiated worker
        drains before escalating to SIGKILL.
    enable_metrics:
        Flip the :mod:`repro.obs` switch on in every worker (the CLI
        maps ``--no-metrics`` onto this).
    """

    def __init__(
        self,
        live_factory: Callable[[], LiveReformulator],
        config: Optional[ServerConfig] = None,
        workers: int = 2,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        drain_timeout_s: float = 20.0,
        enable_metrics: bool = True,
    ) -> None:
        if workers < 1:
            raise ReproError("workers must be >= 1")
        if os.name != "posix":
            raise ReproError("the pre-fork pool requires a POSIX platform")
        self.live_factory = live_factory
        self.config = config or ServerConfig()
        self.config.validate()
        self.n_workers = workers
        self.max_respawns = max_respawns
        self.drain_timeout_s = drain_timeout_s
        self.enable_metrics = enable_metrics
        self._resolver: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._workers: Dict[int, _Worker] = {}
        self._workers_lock = threading.RLock()
        self._spool_dir: Optional[str] = None
        self._owns_spool = False
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The resolved listening port (after :meth:`start`)."""
        if self._port is None:
            return self.config.port
        return self._port

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the pool serves on."""
        return (self.config.host, self.port)

    @property
    def worker_pids(self) -> List[int]:
        """PIDs of currently live workers."""
        with self._workers_lock:
            return [w.pid for w in self._workers.values() if w.alive]

    def start(self, ready_timeout_s: float = 60.0) -> "PreforkServer":
        """Fork the pool and wait for every worker's READY handshake.

        The monitor (reap/respawn) runs on a background thread; returns
        self once all workers are accepting.
        """
        if self._started:
            raise ReproError("pre-fork pool already started")
        self._started = True
        self._bind_resolver()
        spool = self.config.metrics_spool_dir
        if spool is None:
            spool = tempfile.mkdtemp(prefix="repro-metrics-spool-")
            self._owns_spool = True
        os.makedirs(spool, exist_ok=True)
        self._spool_dir = spool
        for index in range(self.n_workers):
            self._spawn(index)
        self._await_ready(ready_timeout_s)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-prefork-monitor",
            daemon=True,
        )
        self._monitor.start()
        logger.info(
            "pre-fork pool serving on %s:%d with %d workers (pids %s)",
            self.config.host, self.port, self.n_workers,
            ",".join(map(str, self.worker_pids)),
        )
        return self

    def serve_forever(self) -> None:
        """Run the pool from the calling thread until :meth:`shutdown`."""
        if not self._started:
            self.start()
        self._stopped.wait()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT on the master -> fan-out drain of the pool."""

        def _handle(signum: int, _frame) -> None:
            logger.info("master received signal %d, draining pool", signum)
            threading.Thread(
                target=self.shutdown, name="repro-prefork-drain",
                daemon=True,
            ).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def shutdown(self) -> None:
        """Drain every worker, reap them, release the port (idempotent)."""
        if self._stopping.is_set():
            self._stopped.wait()
            return
        self._stopping.set()
        with self._workers_lock:
            targets = [w for w in self._workers.values() if w.alive]
        for worker in targets:
            self._signal(worker, signal.SIGTERM)
        deadline = time.monotonic() + self.drain_timeout_s
        for worker in targets:
            self._reap(worker, deadline)
        for worker in targets:
            if worker.alive:
                logger.warning(
                    "worker %d (pid %d) did not drain in %.1fs; killing",
                    worker.index, worker.pid, self.drain_timeout_s,
                )
                self._signal(worker, signal.SIGKILL)
                self._reap(worker, time.monotonic() + 5.0)
        # final sweep: a worker respawned by the monitor in the instant
        # before _stopping was set would not be in `targets`
        with self._workers_lock:
            stragglers = [
                w for w in self._workers.values()
                if w.alive and w not in targets
            ]
        for worker in stragglers:
            self._signal(worker, signal.SIGTERM)
            self._reap(worker, time.monotonic() + self.drain_timeout_s)
            if worker.alive:
                self._signal(worker, signal.SIGKILL)
                self._reap(worker, time.monotonic() + 5.0)
        if self._monitor is not None:
            self._stopped.set()
            self._monitor.join(timeout=5.0)
        if self._resolver is not None:
            self._resolver.close()
            self._resolver = None
        with self._workers_lock:
            for worker in self._workers.values():
                self._close_status_fd(worker)
        if self._owns_spool and self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
        self._stopped.set()
        logger.info("pre-fork pool drained and closed")

    # ------------------------------------------------------------------ #
    # port reservation
    # ------------------------------------------------------------------ #

    def _bind_resolver(self) -> None:
        """Bind (but never listen on) the port to reserve and resolve it.

        A bound, non-listening SO_REUSEPORT socket takes part in the
        port claim — so ``port=0`` resolves once for all workers and the
        port survives worker crashes — but the kernel only balances
        connections across *listening* sockets, so the master receives
        none of the traffic.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.config.host, self.config.port))
        except OSError as exc:
            sock.close()
            raise ReproError(
                f"cannot reserve {self.config.host}:{self.config.port}: {exc}"
            )
        self._resolver = sock
        self._port = sock.getsockname()[1]

    # ------------------------------------------------------------------ #
    # forking
    # ------------------------------------------------------------------ #

    def _worker_config(self, index: int) -> ServerConfig:
        return dataclasses.replace(
            self.config,
            port=self.port,
            reuse_port=True,
            worker_index=index,
            metrics_spool_dir=self._spool_dir,
        )

    def _spawn(self, index: int, respawns: int = 0) -> _Worker:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # --- child: never returns, never runs parent atexit/pytest
            os.close(read_fd)
            self._child_main(index, write_fd)
            os._exit(0)  # unreachable (child_main always _exits)
        os.close(write_fd)
        worker = _Worker(
            index=index, pid=pid, status_fd=read_fd, respawns=respawns
        )
        with self._workers_lock:
            self._workers[index] = worker
        return worker

    def _child_main(self, index: int, write_fd: int) -> None:
        """Worker body: bind with SO_REUSEPORT, handshake, serve, exit."""
        code = 0
        try:
            if self._resolver is not None:
                self._resolver.close()
            # single-threaded right after fork: touch the dict without
            # the lock, which another master thread may have held at
            # fork time (its owner does not exist in this process)
            for sibling in list(self._workers.values()):
                self._close_status_fd(sibling)
            if self.enable_metrics:
                obs.reset()
                obs.enable()
            server = ReformulationServer(
                self.live_factory(), self._worker_config(index)
            )
            # after fork the forking thread is the child's main thread,
            # so per-worker signal handlers install cleanly
            server.install_signal_handlers()
            server.bind()
            os.write(write_fd, f"READY {server.port}\n".encode("utf-8"))
            server.serve_forever()
        except BaseException as exc:  # noqa: BLE001 - report then die
            code = 1
            try:
                os.write(
                    write_fd, f"ERROR {exc!r}\n".encode("utf-8", "replace")
                )
            except OSError:
                pass
        finally:
            try:
                os.close(write_fd)
            except OSError:
                pass
            os._exit(code)

    # ------------------------------------------------------------------ #
    # readiness handshake
    # ------------------------------------------------------------------ #

    def _await_ready(self, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        with self._workers_lock:
            pending = [w for w in self._workers.values() if not w.ready]
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.shutdown()
                raise ReproError(
                    f"workers not ready after {timeout_s:.0f}s: "
                    f"{[w.index for w in pending]}"
                )
            readable, _w, _x = select.select(
                [w.status_fd for w in pending], [], [], min(remaining, 0.5)
            )
            for worker in list(pending):
                if worker.status_fd not in readable:
                    continue
                line = self._read_status_line(worker)
                if line is None:
                    continue
                if line.startswith("READY"):
                    worker.ready = True
                    pending.remove(worker)
                else:
                    self.shutdown()
                    raise ReproError(
                        f"worker {worker.index} failed to start: {line}"
                    )

    def _read_status_line(self, worker: _Worker) -> Optional[str]:
        """One newline-terminated status line, or None if incomplete."""
        try:
            chunk = os.read(worker.status_fd, 4096)
        except OSError:
            chunk = b""
        worker.status_buf += chunk
        if b"\n" in worker.status_buf:
            line, _sep, worker.status_buf = worker.status_buf.partition(b"\n")
            return line.decode("utf-8", "replace")
        if not chunk:  # EOF without a full line: the child died early
            return "ERROR worker exited before reporting status"
        return None

    @staticmethod
    def _close_status_fd(worker: _Worker) -> None:
        if worker.status_fd >= 0:
            try:
                os.close(worker.status_fd)
            except OSError:
                pass
            worker.status_fd = -1

    # ------------------------------------------------------------------ #
    # monitor: reap + respawn
    # ------------------------------------------------------------------ #

    def _poll_worker(self, worker: _Worker) -> bool:
        """Non-blocking reap of one worker; True when it has exited."""
        if not worker.alive:
            return True
        try:
            pid, status = os.waitpid(worker.pid, os.WNOHANG)
        except ChildProcessError:
            worker.alive = False
            return True
        if pid == 0:
            return False
        worker.alive = False
        if os.waitstatus_to_exitcode(status) != 0:
            logger.warning(
                "worker %d (pid %d) exited abnormally (status %d)",
                worker.index, worker.pid, status,
            )
        return True

    def _reap(self, worker: _Worker, deadline: float) -> None:
        """Blockingly reap one worker until *deadline* (poll WNOHANG)."""
        while worker.alive and time.monotonic() < deadline:
            if self._poll_worker(worker):
                return
            time.sleep(0.02)

    def _signal(self, worker: _Worker, signum: int) -> None:
        try:
            os.kill(worker.pid, signum)
        except ProcessLookupError:
            worker.alive = False

    def _monitor_loop(self) -> None:
        """Reap crashed workers and respawn them (until shutdown)."""
        while not self._stopping.is_set():
            with self._workers_lock:
                snapshot = list(self._workers.values())
            for worker in snapshot:
                if not worker.alive or not self._poll_worker(worker):
                    continue
                if self._stopping.is_set():
                    break
                self._close_status_fd(worker)
                if worker.respawns >= self.max_respawns:
                    logger.error(
                        "worker %d crashed %d times; abandoning the slot",
                        worker.index, worker.respawns + 1,
                    )
                    continue
                logger.warning(
                    "worker %d (pid %d) died; respawning",
                    worker.index, worker.pid,
                )
                replacement = self._spawn(
                    worker.index, respawns=worker.respawns + 1
                )
                try:
                    self._await_worker(replacement, timeout_s=60.0)
                except ReproError:
                    logger.exception(
                        "respawned worker %d failed its handshake",
                        worker.index,
                    )
            self._stopping.wait(0.2)

    def _await_worker(self, worker: _Worker, timeout_s: float) -> None:
        """READY handshake for one (respawned) worker."""
        deadline = time.monotonic() + timeout_s
        while not worker.ready:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ReproError(
                    f"worker {worker.index} not ready after {timeout_s:.0f}s"
                )
            readable, _w, _x = select.select(
                [worker.status_fd], [], [], min(remaining, 0.5)
            )
            if worker.status_fd not in readable:
                continue
            line = self._read_status_line(worker)
            if line is None:
                continue
            if line.startswith("READY"):
                worker.ready = True
            else:
                raise ReproError(
                    f"worker {worker.index} failed to start: {line}"
                )
