"""Network serving layer: the HTTP daemon over :class:`LiveReformulator`.

The subsystem turns the in-process pipeline into a long-lived query
service with an overload story:

* :mod:`repro.server.config` — :class:`ServerConfig`, every knob;
* :mod:`repro.server.admission` — semaphore-bounded concurrency plus a
  bounded wait queue; excess load is shed with 429 + ``Retry-After``;
* :mod:`repro.server.deadline` — per-request budgets and the latency
  EWMA behind graceful degradation (cached result / single-best
  Viterbi instead of a blown deadline);
* :mod:`repro.server.app` — the threaded ``http.server`` daemon:
  ``POST /reformulate``, ``POST /reformulate/batch``, ``GET /similar``,
  ``GET /healthz``, ``GET /readyz``, ``GET /metrics``,
  ``GET /metrics/aggregate``, ``GET /debug/traces``,
  ``POST /admin/reload``, graceful SIGTERM drain; every response
  carries ``X-Request-Id`` (echoed from the client or generated);
* :mod:`repro.server.accesslog` — JSON-lines per-request access log
  shared append-safely across pre-fork workers;
* :mod:`repro.server.prefork` — :class:`PreforkServer`, the
  SO_REUSEPORT master/worker pool that runs one daemon process per
  core over a shared (ideally memmapped v3) relation store;
* :mod:`repro.server.client` — stdlib keep-alive JSON client.

Quickstart (in-process; the CLI equivalent is ``repro serve``)::

    from repro.live import LiveReformulator
    from repro.server import ReformulationServer, ServerClient, ServerConfig

    server = ReformulationServer(
        LiveReformulator(database), ServerConfig(port=0)
    ).start()
    with ServerClient(port=server.port) as client:
        print(client.reformulate(["probabilistic", "query"], k=5).json)
    server.shutdown()
"""

from repro.server.accesslog import AccessLog, open_access_log
from repro.server.admission import (
    AdmissionController,
    AdmissionStats,
    OverloadedError,
    SHED_QUEUE_FULL,
    SHED_TIMEOUT,
)
from repro.server.app import (
    DEGRADE_CACHED,
    DEGRADE_VITERBI,
    BadRequestError,
    ReformulationServer,
    scored_to_dict,
)
from repro.server.client import (
    ServerClient,
    ServerClientError,
    ServerResponse,
    suggestions_signature,
)
from repro.server.config import ServerConfig, ServerConfigError
from repro.server.deadline import Deadline, LatencyEstimator, should_degrade
from repro.server.prefork import PreforkServer

__all__ = [
    "AccessLog",
    "open_access_log",
    "AdmissionController",
    "AdmissionStats",
    "BadRequestError",
    "Deadline",
    "DEGRADE_CACHED",
    "DEGRADE_VITERBI",
    "LatencyEstimator",
    "OverloadedError",
    "PreforkServer",
    "ReformulationServer",
    "ServerClient",
    "ServerClientError",
    "ServerConfig",
    "ServerConfigError",
    "ServerResponse",
    "SHED_QUEUE_FULL",
    "SHED_TIMEOUT",
    "scored_to_dict",
    "should_degrade",
    "suggestions_signature",
]
