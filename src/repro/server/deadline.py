"""Per-request deadlines and the latency estimate that drives degradation.

A :class:`Deadline` is a wall-clock budget started when the request is
*received* (before admission), so queue wait spends the same budget as
decode work.  The handler consults it twice:

* entering the admission queue — the wait is capped at the remaining
  budget, a request never out-waits its own deadline;
* before decoding — if the remaining budget cannot fit the expected
  full-path latency (times a safety factor), the handler degrades to a
  cheaper plan rather than blowing the deadline.

:class:`LatencyEstimator` supplies that expectation: an EWMA of
observed full-path latencies, floored so that sub-floor deadlines
degrade deterministically even on a cold server.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Optional


class Deadline:
    """Monotonic-clock budget for one request (``None`` = unlimited).

    The construction stamp is kept even for unlimited deadlines, so
    :meth:`elapsed` gives the request's age for stage attribution (the
    access log's per-stage timings) regardless of whether a budget
    applies.
    """

    __slots__ = ("budget_s", "_started_at", "_expires_at")

    def __init__(self, budget_s: Optional[float]) -> None:
        self.budget_s = budget_s
        self._started_at = time.perf_counter()
        self._expires_at = (
            None if budget_s is None else self._started_at + budget_s
        )

    @classmethod
    def from_ms(cls, budget_ms: Optional[float]) -> "Deadline":
        """Deadline from milliseconds; ``None`` or <= 0 means unlimited."""
        if budget_ms is None or budget_ms <= 0:
            return cls(None)
        return cls(budget_ms / 1000.0)

    @property
    def unlimited(self) -> bool:
        """True when no deadline applies."""
        return self._expires_at is None

    def remaining(self) -> float:
        """Seconds left (may be negative); +inf when unlimited."""
        if self._expires_at is None:
            return math.inf
        return self._expires_at - time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since the deadline started (request receive time)."""
        return time.perf_counter() - self._started_at

    def expired(self) -> bool:
        """True when the budget is spent."""
        return self.remaining() <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.unlimited:
            return "Deadline(unlimited)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


class LatencyEstimator:
    """Thread-safe EWMA of full-path request latency, with a floor.

    The floor does double duty: it keeps the estimate meaningful before
    any sample has arrived, and it sets the smallest deadline that can
    still take the full path — anything below ``floor * safety``
    degrades by construction, which is what makes the deadline tests
    deterministic.
    """

    def __init__(self, floor_s: float = 0.005, alpha: float = 0.2) -> None:
        if floor_s <= 0:
            raise ValueError("floor_s must be > 0")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.floor_s = floor_s
        self.alpha = alpha
        self._ewma: Optional[float] = None
        self._samples = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Fold one full-path latency sample into the EWMA."""
        seconds = max(0.0, float(seconds))
        with self._lock:
            if self._ewma is None:
                self._ewma = seconds
            else:
                self._ewma += self.alpha * (seconds - self._ewma)
            self._samples += 1

    def estimate(self) -> float:
        """Expected full-path latency in seconds (never below the floor)."""
        with self._lock:
            if self._ewma is None:
                return self.floor_s
            return max(self.floor_s, self._ewma)

    @property
    def samples(self) -> int:
        """Observations folded in so far."""
        with self._lock:
            return self._samples


def should_degrade(
    deadline: Deadline, estimator: LatencyEstimator, safety: float
) -> bool:
    """True when the remaining budget cannot fit a full-path decode."""
    return deadline.remaining() < estimator.estimate() * safety
