"""Structured JSON-lines access log for the serving daemon.

One line per finished request — trace id, route, status, lane
(algorithm), cache hit/miss, degraded/shed flags, and the per-stage
latency breakdown — machine-parseable (``jq``-able) and joinable with
``GET /debug/traces`` output on ``trace_id``.

The file is opened in **append** mode.  In a pre-fork pool every worker
opens the same path after the fork; each record is serialized to a
single ``write`` of one line, which POSIX appends atomically for writes
up to ``PIPE_BUF`` — and in practice for ordinary ``O_APPEND`` regular
files — so per-worker lines interleave without tearing.  A per-process
lock serializes the daemon's own handler threads.
"""

from __future__ import annotations

import json
import logging
import threading
from typing import Any, Dict, Optional

logger = logging.getLogger("repro.server")

#: Keys dropped from access-log lines (bulky; they live in the flight
#: recorder / ``/debug/traces`` instead, joinable via ``trace_id``).
_EXCLUDED_KEYS = frozenset({"span_tree"})


class AccessLog:
    """Append-only JSON-lines request log."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        # line-buffered text append: every write() of one "...\n" line
        # reaches the file as a single OS-level append
        self._handle = open(path, "a", encoding="utf-8", buffering=1)

    def write(self, record: Dict[str, Any]) -> None:
        """Append one request record as a single JSON line.

        Never raises: a full disk or revoked file must not fail the
        request that was otherwise served fine.
        """
        payload = {
            key: value
            for key, value in record.items()
            if key not in _EXCLUDED_KEYS
        }
        try:
            line = json.dumps(payload, separators=(",", ":"), default=str)
            with self._lock:
                self._handle.write(line + "\n")
        except (OSError, ValueError):
            logger.exception("access-log write failed")

    def close(self) -> None:
        """Flush and close the log file (idempotent)."""
        with self._lock:
            if not self._handle.closed:
                try:
                    self._handle.close()
                except OSError:
                    logger.exception("access-log close failed")

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def open_access_log(path: Optional[str]) -> Optional[AccessLog]:
    """An :class:`AccessLog` for *path*, or ``None`` when disabled."""
    return AccessLog(path) if path else None
