"""The serving daemon: a threaded stdlib HTTP server over LiveReformulator.

Request lifecycle for the query routes (``/reformulate``,
``/reformulate/batch``, ``/similar``)::

    receive -> parse body -> start deadline -> admission (may wait/shed)
            -> degrade decision -> decode (full or fallback) -> respond

* **Admission** (:mod:`repro.server.admission`): ``max_concurrency``
  requests execute, ``queue_depth`` wait, the rest are shed with
  ``429`` + ``Retry-After``.
* **Deadlines** (:mod:`repro.server.deadline`): queue wait and decode
  share one budget; on deadline pressure the handler falls back from
  the full A* top-k to the result-cache entry (if the identical request
  is resident) or a single-best Viterbi decode, and marks the response
  ``"degraded": true`` — a cheap answer beats a blown deadline.
* **Drain**: SIGTERM (via :meth:`ReformulationServer.install_signal_handlers`)
  or :meth:`ReformulationServer.shutdown` stops accepting connections,
  flips ``/readyz`` to 503, and joins in-flight handler threads before
  returning.

Health/metrics/admin routes bypass admission so the daemon stays
observable and steerable under overload.

Every request runs under a :class:`repro.obs.TraceContext` — generated
or echoed from the client's ``X-Request-Id`` header and stamped on
**every** response (200s, 400s, 429 sheds, health probes).  The handler
records per-stage timings (parse, queue wait, decode, serialize, plus
the assemble/decode split lifted from the span tree), writes one
JSON line per request to the optional access log, and feeds the
per-worker :class:`~repro.obs.flight.FlightRecorder` whose merged view
is served at ``GET /debug/traces``.

Everything is standard library: ``http.server`` threading stack, JSON
bodies, and the existing :mod:`repro.obs` Prometheus exporter behind
``GET /metrics``.
"""

from __future__ import annotations

import json
import logging
import math
import os
import random
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.core.scoring import ScoredQuery
from repro.errors import ReproError
from repro.lanes.base import LaneResult
from repro.live import LiveReformulator
from repro.obs.flight import FlightRecorder, merge_trace_snapshots
from repro.obs.trace import (
    Span,
    TraceContext,
    new_trace_id,
    reset_current_trace,
    sanitize_trace_id,
    set_current_trace,
)
from repro.serving.result_cache import ResultCache
from repro.server.accesslog import open_access_log
from repro.server.admission import AdmissionController, OverloadedError
from repro.server.config import ServerConfig
from repro.server.deadline import Deadline, LatencyEstimator, should_degrade

logger = logging.getLogger("repro.server")

#: Degradation fallbacks, in preference order.
DEGRADE_CACHED = "cached"
DEGRADE_VITERBI = "viterbi_top1"

_JSON = "application/json"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

#: Span names folded into the flat stage view of the access log:
#: plan-cache assemble (candidate plans + HMM build + batch warm),
#: decode, and response shaping.
_STAGE_SPAN_NAMES = {
    "plan_warm": "assemble",
    "candidates": "assemble",
    "hmm_build": "assemble",
    "decode": "decode",
    "postprocess": "postprocess",
}


def _tree_stage_latencies(root: Span) -> Dict[str, float]:
    """Sum span durations under *root* into coarse stage buckets."""
    out: Dict[str, float] = {}

    def visit(span: Span) -> None:
        stage = _STAGE_SPAN_NAMES.get(span.name)
        if stage is not None:
            out[stage] = out.get(stage, 0.0) + span.duration
        for child in span.children:
            visit(child)

    visit(root)
    return out


def scored_to_dict(query: ScoredQuery) -> Dict[str, Any]:
    """JSON-able view of one suggestion.

    ``score`` survives the JSON round trip exactly: ``json.dumps`` emits
    ``repr(float)`` which parses back bit-identical, so HTTP responses
    can be compared 1:1 against in-process results.
    """
    return {
        "text": query.text,
        "score": query.score,
        "terms": list(query.terms),
        "state_path": list(query.state_path),
    }


class BadRequestError(ReproError):
    """Malformed request payload (HTTP 400)."""


def _require_keywords(value: Any, what: str = "keywords") -> List[str]:
    if (
        not isinstance(value, (list, tuple))
        or not value
        or not all(isinstance(term, str) and term for term in value)
    ):
        raise BadRequestError(f"{what} must be a non-empty list of strings")
    return [term for term in value]


def _int_field(payload: Dict[str, Any], name: str, default: int,
               minimum: int = 1) -> int:
    value = payload.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise BadRequestError(f"{name} must be an integer >= {minimum}")
    return value


class ReformulationServer:
    """HTTP daemon wrapping one :class:`LiveReformulator`.

    The server object is independent of the socket machinery: handlers
    call :meth:`handle_reformulate` / :meth:`handle_batch` /
    :meth:`handle_similar`, which are plain methods and unit-testable.
    """

    def __init__(
        self,
        live: LiveReformulator,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.live = live
        self.config = config or ServerConfig()
        self.config.validate()
        # Route with the served lane set — in a pre-fork pool __init__
        # runs post-fork, so every worker re-applies the shared config.
        self.live.configure_router(self.config.router_config())
        self.admission = AdmissionController(
            self.config.max_concurrency,
            queue_depth=self.config.queue_depth,
            queue_timeout_s=self.config.queue_timeout_s,
        )
        self.latency = LatencyEstimator(
            floor_s=self.config.min_latency_estimate_s
        )
        self._httpd: Optional[_HTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._draining = threading.Event()
        self._started = threading.Event()
        self._lifecycle_lock = threading.Lock()
        self._closed = False
        self._degraded_served = 0
        self._flush_stop = threading.Event()
        self._flusher: Optional[threading.Thread] = None
        self.flight = FlightRecorder(
            capacity=self.config.flight_recorder_size,
            slow_threshold_s=self.config.slow_trace_ms / 1000.0,
        )
        self.access_log = open_access_log(self.config.access_log_path)
        # Per-process sampling RNG.  In a pre-fork pool this object is
        # constructed in the worker (post-fork), so worker streams are
        # independent by construction.
        self._trace_rng = random.Random(os.urandom(8))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)`` — resolves port 0 to the real one."""
        if self._httpd is None:
            return (self.config.host, self.config.port)
        return self._httpd.server_address[:2]

    @property
    def port(self) -> int:
        """The bound port."""
        return self.address[1]

    @property
    def draining(self) -> bool:
        """True once shutdown started; ``/readyz`` turns 503."""
        return self._draining.is_set()

    @property
    def ready(self) -> bool:
        """Pipeline built, serving, and not draining."""
        return (
            self._started.is_set()
            and not self.draining
            and self.live.version >= 1
        )

    def _ensure_httpd(self) -> "_HTTPServer":
        with self._lifecycle_lock:
            if self._closed:
                raise ReproError("server already shut down")
            if self._httpd is None:
                self._httpd = _HTTPServer(
                    (self.config.host, self.config.port), _Handler, app=self
                )
            return self._httpd

    def bind(self) -> Tuple[str, int]:
        """Bind the listening socket now; returns the bound address.

        Lets callers (the CLI) announce the real port — meaningful with
        ``port=0`` — before blocking in :meth:`serve_forever`.
        """
        self._ensure_httpd()
        return self.address

    def start(self) -> "ReformulationServer":
        """Serve from a background thread (tests, embedding); returns self."""
        httpd = self._ensure_httpd()
        if self.config.warm_on_start:
            self.live.pipeline()
        self._thread = threading.Thread(
            target=self._serve_loop, args=(httpd,),
            name="repro-server", daemon=True,
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        return self

    def serve_forever(self) -> None:
        """Serve from the calling thread until :meth:`shutdown`."""
        httpd = self._ensure_httpd()
        if self.config.warm_on_start:
            self.live.pipeline()
        self._serve_loop(httpd)

    def _serve_loop(self, httpd: "_HTTPServer") -> None:
        logger.info("serving on %s:%d", *self.address)
        self._start_metrics_flusher()
        self._started.set()
        try:
            httpd.serve_forever(poll_interval=0.1)
        finally:
            self._close(httpd)

    def _close(self, httpd: "_HTTPServer") -> None:
        """Join in-flight handlers and release the socket (idempotent)."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        # block_on_close + non-daemon handler threads: this join IS the
        # drain — every accepted request finishes before we return.
        httpd.server_close()
        self._stop_metrics_flusher()
        if self.access_log is not None:
            self.access_log.close()
        logger.info("drained and closed")

    def shutdown(self) -> None:
        """Graceful stop: refuse new connections, drain in-flight work.

        Safe to call from any thread except a request handler; returns
        once every in-flight request has completed and the listening
        socket is released.  Idempotent.
        """
        if self._httpd is None:
            return
        self._draining.set()
        self._httpd.shutdown()  # stops the accept loop (blocks until out)
        self._close(self._httpd)
        if (
            self._thread is not None
            and self._thread is not threading.current_thread()
        ):
            self._thread.join(timeout=self.config.keepalive_timeout_s + 5.0)

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (main thread only).

        ``serve_forever`` runs in the main thread under the CLI, and
        ``ThreadingHTTPServer.shutdown`` deadlocks when called from the
        serving thread — so the handler hands the drain to a helper
        thread and lets ``serve_forever`` return naturally.
        """

        def _handle(signum: int, _frame: Any) -> None:
            logger.info("received signal %d, draining", signum)
            threading.Thread(
                target=self.shutdown, name="repro-server-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    # ------------------------------------------------------------------ #
    # request handling (HTTP-free, unit-testable)
    # ------------------------------------------------------------------ #

    @property
    def degraded_served(self) -> int:
        """Requests answered through a degradation fallback (ungated)."""
        return self._degraded_served

    def retry_after_s(self) -> int:
        """``Retry-After`` hint: expected time for the queue to clear."""
        stats = self.admission.stats()
        backlog = stats.executing + stats.waiting
        per_slot = self.latency.estimate()
        estimate = per_slot * max(1, backlog) / self.admission.max_concurrency
        return int(
            min(
                self.config.retry_after_max_s,
                max(self.config.retry_after_min_s, math.ceil(estimate)),
            )
        )

    def _parse_query_terms(self, payload: Dict[str, Any]) -> List[str]:
        """Keywords from ``keywords`` (pre-tokenized) or ``query`` (raw)."""
        if "keywords" in payload:
            return _require_keywords(payload["keywords"])
        raw = payload.get("query")
        if not isinstance(raw, str) or not raw.strip():
            raise BadRequestError(
                "provide 'keywords' (list of strings) or 'query' (string)"
            )
        parsed = self.live.pipeline().parser.parse(raw.lower())
        keywords = list(parsed.keywords)
        if not keywords:
            raise BadRequestError(f"query {raw!r} has no keywords")
        return keywords

    def _parse_lane(self, payload: Dict[str, Any]) -> str:
        """Validated lane name from the request (missing → default).

        Resolution is config-only, so an unknown lane 400s before any
        pipeline build; :class:`~repro.lanes.base.UnknownLaneError` is a
        :class:`ReproError`, which the dispatch layer maps to 400.
        """
        lane = payload.get("lane")
        if lane is not None and not isinstance(lane, str):
            raise BadRequestError("lane must be a string")
        return self.live.router_config.resolve(lane)

    def _degraded_single(
        self, keywords: Sequence[str], k: int, algorithm: str, lane: str
    ) -> Tuple[LaneResult, str]:
        """Fallback plan for one query: cached full answer, else top-1.

        The result cache is only consulted when the pipeline is fresh —
        a stale hit would resurrect pre-mutation suggestions that the
        normal path deliberately bypasses.  Lookups use the requested
        lane's cache tag, so a degraded answer can only come from the
        same lane (and fallback-chain setting) the request asked for.
        """
        cache = self.live.result_cache
        if cache is not None and not self.live.is_stale:
            cached = cache.get_result(
                ResultCache.key(
                    keywords, k, algorithm,
                    lane=self.live.router_config.cache_tag(lane),
                ),
                self.live.version,
            )
            if cached is not None:
                return cached, DEGRADE_CACHED
        # Cheapest well-formed answer: the plain Viterbi top-1 — an hmm
        # decode whichever lane was requested, and labeled as such.
        best = self.live.best(keywords)
        result = LaneResult(
            lane="hmm",
            suggestions=(best,),
            provenance=({"lane": "hmm", "relaxed": False},),
            requested=lane,
        )
        return result, DEGRADE_VITERBI

    def _count_degraded(self, mode: str, route: str) -> None:
        self._degraded_served += 1
        obs.annotate_trace("degraded_mode", mode)
        obs.counter(
            "repro_server_degraded_total",
            "Requests answered via a degradation fallback",
        ).inc()
        logger.debug("degraded %s via %s", route, mode)

    @staticmethod
    def _suggestion_dicts(result: LaneResult) -> List[Dict[str, Any]]:
        """Suggestion dicts with per-suggestion provenance merged in.

        The ``lane`` provenance key is omitted per suggestion — it is
        reported once at the response level.
        """
        out = []
        for scored, prov in zip(result.suggestions, result.provenance):
            entry = scored_to_dict(scored)
            entry.update(
                {key: value for key, value in prov.items() if key != "lane"}
            )
            out.append(entry)
        return out

    def handle_reformulate(
        self, payload: Dict[str, Any], deadline: Deadline
    ) -> Dict[str, Any]:
        """``POST /reformulate`` body -> response dict."""
        lane = self._parse_lane(payload)
        keywords = self._parse_query_terms(payload)
        k = _int_field(payload, "k", self.config.default_k)
        algorithm = payload.get("algorithm", "astar")
        if not isinstance(algorithm, str):
            raise BadRequestError("algorithm must be a string")
        obs.annotate_trace("algorithm", algorithm)
        obs.annotate_trace("keywords", keywords)
        degraded_mode: Optional[str] = None
        if should_degrade(deadline, self.latency, self.config.degrade_safety):
            result, degraded_mode = self._degraded_single(
                keywords, k, algorithm, lane
            )
            obs.annotate_trace("lane", result.lane)
            self._count_degraded(degraded_mode, "/reformulate")
        else:
            start = time.perf_counter()
            # The request deadline is handled by degradation above, not
            # by the lane budget: budgets change relaxation output, and
            # the result cache does not key on them.
            result = self.live.reformulate_lane(
                keywords, k=k, lane=lane, algorithm=algorithm,
            )
            self.latency.observe(time.perf_counter() - start)
        return {
            "keywords": keywords,
            "k": k,
            "algorithm": algorithm,
            "lane": result.lane,
            "lane_requested": lane,
            "relaxed": result.relaxed,
            "fallback_from": result.fallback_from,
            "suggestions": self._suggestion_dicts(result),
            "degraded": degraded_mode is not None,
            "degraded_mode": degraded_mode,
            "version": self.live.version,
        }

    def handle_batch(
        self, payload: Dict[str, Any], deadline: Deadline
    ) -> Dict[str, Any]:
        """``POST /reformulate/batch`` body -> response dict."""
        queries = payload.get("queries")
        if not isinstance(queries, (list, tuple)) or not queries:
            raise BadRequestError("queries must be a non-empty list")
        parsed = [
            _require_keywords(query, what=f"queries[{i}]")
            for i, query in enumerate(queries)
        ]
        k = _int_field(payload, "k", self.config.default_k)
        algorithm = payload.get("algorithm", "astar")
        if not isinstance(algorithm, str):
            raise BadRequestError("algorithm must be a string")
        workers = min(
            _int_field(payload, "workers", 1), self.config.max_batch_workers
        )
        lane = self._parse_lane(payload)
        obs.annotate_trace("algorithm", algorithm)
        obs.annotate_trace("keywords", [f"<batch of {len(parsed)}>"])
        degraded_mode: Optional[str] = None
        if should_degrade(deadline, self.latency, self.config.degrade_safety):
            # Cheapest well-formed answer per entry; one fallback flag
            # covers the batch (modes may mix, report the weaker one).
            modes = set()
            results = []
            for keywords in parsed:
                result, mode = self._degraded_single(
                    keywords, k, algorithm, lane
                )
                modes.add(mode)
                results.append(result)
            degraded_mode = (
                DEGRADE_VITERBI if DEGRADE_VITERBI in modes else DEGRADE_CACHED
            )
            if results:
                obs.annotate_trace("lane", results[0].lane)
            self._count_degraded(degraded_mode, "/reformulate/batch")
        else:
            start = time.perf_counter()
            results = self.live.reformulate_many_lane(
                parsed, k=k, lane=lane, algorithm=algorithm, workers=workers
            )
            elapsed = time.perf_counter() - start
            # Per-query latency is what the degrade decision needs.
            self.latency.observe(elapsed / max(1, len(parsed)))
        return {
            "k": k,
            "algorithm": algorithm,
            "lane_requested": lane,
            "degraded": degraded_mode is not None,
            "degraded_mode": degraded_mode,
            "version": self.live.version,
            "results": [
                {
                    "keywords": keywords,
                    "lane": result.lane,
                    "relaxed": result.relaxed,
                    "fallback_from": result.fallback_from,
                    "suggestions": self._suggestion_dicts(result),
                }
                for keywords, result in zip(parsed, results)
            ],
        }

    def handle_similar(self, params: Dict[str, List[str]]) -> Dict[str, Any]:
        """``GET /similar?term=...&n=...`` -> response dict."""
        terms = params.get("term")
        if not terms or not terms[0]:
            raise BadRequestError("missing required query parameter 'term'")
        term = terms[0].lower()
        try:
            n = int(params.get("n", ["10"])[0])
        except ValueError:
            raise BadRequestError("n must be an integer")
        if n < 1:
            raise BadRequestError("n must be an integer >= 1")
        pairs = self.live.similar_terms(term, n)
        return {
            "term": term,
            "similar": [
                {"term": other, "score": score} for other, score in pairs
            ],
        }

    def handle_admin_reload(self) -> Dict[str, Any]:
        """``POST /admin/reload`` -> drop cached relation stores.

        Per-worker semantics: inside a pre-fork pool this reload only
        affects the worker that happened to accept the connection (the
        response names it).  Reload every worker by hitting the endpoint
        until each worker index answered, or restart the pool.  Corpus
        deltas should use ``/admin/ingest`` instead — its layer chain
        fans out to every worker automatically.
        """
        self.live.reload_relations()
        logger.info("admin reload: relation store cache dropped")
        body = {
            "reloaded": True,
            "stale": self.live.is_stale,
            "version": self.live.version,
        }
        if self.config.metrics_spool_dir is not None:
            # pool mode: per-worker semantics — name the worker that
            # served this reload so callers can tell who was refreshed
            body["worker"] = self.config.worker_index
            body["pid"] = os.getpid()
        return body

    def handle_admin_ingest(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /admin/ingest`` -> fold rows in as one delta layer.

        Body: ``{"rows": [{"table": ..., "row": {...}}, ...]}`` plus
        optional ``n_similar``/``closeness_top``/``batch_size``.  The
        accepting worker runs the incremental offline stage
        (:class:`repro.offline.DeltaIngestor`) and writes a delta layer
        beside the relation store; sibling pre-fork workers replay the
        layer's rows from the chain on their next metrics-flush tick, so
        the whole pool converges on the new epoch without a restart.
        """
        rows = payload.get("rows")
        if not isinstance(rows, list) or not rows:
            raise BadRequestError("rows must be a non-empty list")
        options: Dict[str, Any] = {}
        for name in ("n_similar", "closeness_top", "batch_size"):
            if name in payload:
                value = payload[name]
                if not isinstance(value, int) or isinstance(value, bool):
                    raise BadRequestError(f"{name} must be an integer")
                options[name] = value
        start = time.perf_counter()
        stats = self.live.ingest(rows, **options)
        logger.info(
            "admin ingest: %d rows -> epoch %d (%d terms recomputed, "
            "%d invalidated) in %.3fs",
            stats.n_rows, stats.epoch, stats.n_recomputed,
            stats.n_invalidated, time.perf_counter() - start,
        )
        body = {"ingested": True, "stats": stats.to_dict()}
        if self.config.metrics_spool_dir is not None:
            body["worker"] = self.config.worker_index
            body["pid"] = os.getpid()
        return body

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #

    def record_request(
        self,
        route: str,
        status: int,
        seconds: float,
        trace_id: Optional[str] = None,
    ) -> None:
        """Per-request series (gated by the ``repro.obs`` switch).

        *trace_id* rides along as a histogram exemplar, so a latency
        outlier in the metrics view links straight to its span tree in
        ``GET /debug/traces``.
        """
        if not obs.is_enabled():
            return
        registry = obs.registry()
        registry.counter(
            "repro_server_requests_total",
            "HTTP requests served by the daemon",
            route=route, status=str(status),
        ).inc()
        registry.histogram(
            "repro_server_request_seconds",
            "End-to-end request latency (queue wait included)",
            route=route,
        ).observe(seconds, exemplar=trace_id)
        stats = self.admission.stats()
        registry.gauge(
            "repro_server_inflight",
            "Requests currently executing",
        ).set(stats.executing)
        registry.gauge(
            "repro_server_queue_waiting",
            "Requests waiting for an execution permit",
        ).set(stats.waiting)

    def record_shed(self, reason: str) -> None:
        """Count one shed request (gated)."""
        obs.counter(
            "repro_server_shed_total",
            "Requests shed by admission control (HTTP 429)",
        ).inc()
        obs.counter(
            "repro_server_shed_by_reason_total",
            "Shed requests by cause",
            reason=reason,
        ).inc()

    # ------------------------------------------------------------------ #
    # request tracing: sampling, flight recorder, access log
    # ------------------------------------------------------------------ #

    def sample_trace(self) -> bool:
        """Head-sampling decision for one incoming request."""
        rate = self.config.trace_sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return self._trace_rng.random() < rate

    def observe_trace(
        self,
        ctx: TraceContext,
        verb: str,
        route: str,
        status: int,
        seconds: float,
        stages: Dict[str, float],
        root_span: Optional[Span] = None,
        shed_reason: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Fold one finished request into the flight recorder + access log.

        Builds the request record from the handler-measured *stages*,
        the stage latencies lifted from the span tree (plan-cache
        assemble vs decode), and whatever the layers below annotated on
        the trace context (cache hit/miss, degraded mode, algorithm).
        """
        annotations = ctx.annotations
        merged_stages = dict(stages)
        if root_span is not None:
            merged_stages.update(_tree_stage_latencies(root_span))
        record: Dict[str, Any] = {
            "ts": time.time(),
            "trace_id": ctx.trace_id,
            "verb": verb,
            "route": route,
            "status": status,
            "duration_s": round(seconds, 6),
            "sampled": ctx.sampled,
            "worker": self.config.worker_index,
            "pid": os.getpid(),
            "stages": {
                name: round(value, 6)
                for name, value in merged_stages.items()
            },
            "degraded": annotations.get("degraded_mode") is not None,
            "degraded_mode": annotations.get("degraded_mode"),
            "shed": shed_reason is not None,
            "shed_reason": shed_reason,
            "cache": annotations.get("result_cache"),
            "lane": annotations.get("lane"),
            "algorithm": annotations.get("algorithm"),
            "keywords": annotations.get("keywords"),
            "error": annotations.get("error"),
        }
        if root_span is not None:
            record["span_tree"] = obs.export.span_to_dict(root_span)
        self.flight.observe(record)
        if self.access_log is not None:
            self.access_log.write(record)
        return record

    def write_traces_snapshot(self) -> Optional[Path]:
        """Atomically spool this worker's flight-recorder contents."""
        spool = self.config.metrics_spool_dir
        if spool is None:
            return None
        root = Path(spool)
        root.mkdir(parents=True, exist_ok=True)
        path = root / f"traces-worker-{self.config.worker_index:04d}.json"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps({
                "worker": self.config.worker_index,
                "traces": self.flight.snapshot(),
            }),
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    def debug_traces_dict(self, limit: int = 0) -> Dict[str, Any]:
        """``GET /debug/traces`` payload: retained traces, pool-wide.

        Standalone this is the local flight recorder.  Inside a pool,
        this worker spools its own snapshot first (so its view is as
        fresh as its ``/metrics``), then merges every sibling's
        ``traces-worker-*.json`` — the exact shape of the
        ``/metrics/aggregate`` merge, applied to trace records.
        """
        spool = self.config.metrics_spool_dir
        if spool is None:
            snapshots = [{
                "worker": self.config.worker_index,
                "traces": self.flight.snapshot(),
            }]
            return merge_trace_snapshots(snapshots, limit=limit)
        self.write_traces_snapshot()
        snapshots = []
        for path in sorted(Path(spool).glob("traces-worker-*.json")):
            try:
                snapshots.append(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            except (OSError, json.JSONDecodeError):
                continue  # a sibling is mid-rotation; skip this scrape
        return merge_trace_snapshots(snapshots, limit=limit)

    # ------------------------------------------------------------------ #
    # multi-process metrics spool (pre-fork pool support)
    # ------------------------------------------------------------------ #

    def _start_metrics_flusher(self) -> None:
        """Spool periodic metrics snapshots when configured (idempotent)."""
        if self.config.metrics_spool_dir is None or self._flusher is not None:
            return
        if obs.is_enabled():
            obs.registry().gauge(
                "repro_server_worker_up",
                "1 per live worker process (labelled by worker index)",
                worker=str(self.config.worker_index),
            ).set(1)

        def loop() -> None:
            while not self._flush_stop.wait(
                self.config.metrics_flush_interval_s
            ):
                try:
                    self.write_metrics_snapshot()
                    self.write_traces_snapshot()
                except Exception:  # noqa: BLE001 - keep serving
                    logger.exception("metrics spool write failed")
                try:
                    # delta-ingest fan-out: the layer chain doubles as
                    # the ingest journal, so polling it on the flush
                    # tick converges every worker on the newest epoch
                    applied = self.live.sync_ingest()
                    if applied:
                        logger.info(
                            "worker %d replayed %d delta layer(s), "
                            "now at ingest epoch %d",
                            self.config.worker_index, applied,
                            self.live.ingest_epoch,
                        )
                except Exception:  # noqa: BLE001 - keep serving
                    logger.exception("delta-ingest sync failed")

        self._flusher = threading.Thread(
            target=loop, name="repro-metrics-flush", daemon=True
        )
        self._flusher.start()

    def _stop_metrics_flusher(self) -> None:
        """Stop the flusher and leave one final post-drain snapshot."""
        self._flush_stop.set()
        if self._flusher is not None:
            self._flusher.join(timeout=5.0)
            self._flusher = None
        if self.config.metrics_spool_dir is not None:
            try:
                self.write_metrics_snapshot()
                self.write_traces_snapshot()
            except Exception:  # noqa: BLE001 - shutdown best-effort
                logger.exception("final metrics spool write failed")

    def write_metrics_snapshot(self) -> Optional[Path]:
        """Atomically write this worker's registry snapshot to the spool."""
        spool = self.config.metrics_spool_dir
        if spool is None:
            return None
        root = Path(spool)
        root.mkdir(parents=True, exist_ok=True)
        path = root / f"worker-{self.config.worker_index:04d}.json"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(obs.export.registry_to_dict(obs.registry())),
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    def aggregate_metrics_dict(self) -> Dict[str, Any]:
        """Pool-wide metrics: every spooled worker snapshot, merged.

        Standalone (no spool directory) this is simply the process's own
        registry, so ``/metrics/aggregate`` always answers.  Inside a
        pool, this worker writes a fresh snapshot first so its own
        numbers are as current as its ``/metrics`` view.
        """
        spool = self.config.metrics_spool_dir
        if spool is None:
            return obs.export.registry_to_dict(obs.registry())
        self.write_metrics_snapshot()
        snapshots: List[Dict[str, Any]] = []
        for path in sorted(Path(spool).glob("worker-*.json")):
            try:
                snapshots.append(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            except (OSError, json.JSONDecodeError):
                continue  # a sibling is mid-rotation; skip this scrape
        return obs.export.merge_snapshots(snapshots)


class _HTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server that drains on close.

    ``daemon_threads = False`` + ``block_on_close = True`` make
    ``server_close()`` join every in-flight handler thread — that join
    is the graceful-drain guarantee.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address, handler, app: ReformulationServer) -> None:
        self.app = app
        # SO_REUSEPORT lets N worker processes share one listening port
        # with kernel-balanced accepts (set per-instance: the attribute
        # is honoured by TCPServer.server_bind on Python >= 3.11).
        self.allow_reuse_port = app.config.reuse_port
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    """Route dispatch; all real work lives on :class:`ReformulationServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-server/1.0"
    # Responses are written as headers-then-body; with Nagle on, the
    # body segment stalls behind the peer's delayed ACK (~40ms per
    # request on Linux loopback).  Flush immediately.
    disable_nagle_algorithm = True

    # Routes that consume pipeline capacity and go through admission.
    QUERY_ROUTES = {"/reformulate", "/reformulate/batch", "/similar"}

    @property
    def app(self) -> ReformulationServer:
        return self.server.app  # type: ignore[attr-defined]

    def setup(self) -> None:
        super().setup()
        # Bounds idle keep-alive reads, which bounds drain time too.
        self.timeout = self.app.config.keepalive_timeout_s
        self.connection.settimeout(self.timeout)

    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    # ------------------------------------------------------------------ #
    # verbs
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, verb: str) -> None:
        split = urlsplit(self.path)
        route = split.path.rstrip("/") or "/"
        start = time.perf_counter()
        status = 500
        # Trace identity: echo the client's X-Request-Id when it is
        # well-formed, otherwise mint one.  The context rides a
        # contextvar so spans opened anywhere below (including pipeline
        # worker threads) attach to this request.
        ctx = TraceContext(
            trace_id=sanitize_trace_id(self.headers.get("X-Request-Id"))
            or new_trace_id(),
            sampled=self.app.sample_trace(),
        )
        self._trace_ctx: Optional[TraceContext] = ctx
        self._stages: Dict[str, float] = {}
        token = set_current_trace(ctx)
        root_span: Optional[Span] = None
        shed_reason: Optional[str] = None
        try:
            with obs.span("http.request", verb=verb, route=route) as root:
                if isinstance(root, Span):
                    root_span = root
                try:
                    # Always consume the body first: responding with
                    # unread bytes desyncs keep-alive framing.
                    parse_start = time.perf_counter()
                    payload = (
                        self._read_json_body() if verb == "POST" else {}
                    )
                    self._stages["parse"] = (
                        time.perf_counter() - parse_start
                    )
                    status = self._route(verb, route, split.query, payload)
                except OverloadedError as exc:
                    retry_after = self.app.retry_after_s()
                    self.app.record_shed(exc.reason)
                    shed_reason = exc.reason
                    self._stages["queue_wait"] = exc.waited_s
                    status = 429
                    self._send_json(
                        429,
                        {"error": str(exc), "retry_after_s": retry_after},
                        extra_headers={"Retry-After": str(retry_after)},
                    )
                except BadRequestError as exc:
                    ctx.annotate("error", str(exc))
                    status = 400
                    self._send_json(400, {"error": str(exc)})
                except ReproError as exc:
                    ctx.annotate("error", str(exc))
                    status = 400
                    self._send_json(400, {"error": str(exc)})
                except (BrokenPipeError, ConnectionResetError):
                    ctx.annotate("error", "client disconnected")
                    status = 499
                    self.close_connection = True
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    logger.exception(
                        "unhandled error on %s %s", verb, route
                    )
                    ctx.annotate("error", f"{type(exc).__name__}: {exc}")
                    status = 500
                    self._send_json(500, {"error": f"internal error: {exc}"})
                if root_span is not None:
                    root_span.set_attribute("status", status)
        finally:
            reset_current_trace(token)
            elapsed = time.perf_counter() - start
            label = route if route in self._known_routes() else "unknown"
            self.app.record_request(
                label, status, elapsed, trace_id=ctx.trace_id
            )
            try:
                self.app.observe_trace(
                    ctx, verb, label, status, elapsed,
                    self._stages, root_span, shed_reason,
                )
            except Exception:  # noqa: BLE001 - tracing never fails requests
                logger.exception("trace observation failed")

    @classmethod
    def _known_routes(cls) -> set:
        return cls.QUERY_ROUTES | {
            "/healthz", "/readyz", "/metrics", "/metrics/aggregate",
            "/debug/traces", "/admin/reload", "/admin/ingest",
        }

    def _route(
        self,
        verb: str,
        route: str,
        query_string: str,
        payload: Dict[str, Any],
    ) -> int:
        app = self.app
        if verb == "GET" and route == "/healthz":
            body = {
                "status": "ok",
                "draining": app.draining,
                "ingest_epoch": app.live.ingest_epoch,
            }
            if app.config.metrics_spool_dir is not None:
                # pool mode: identify which worker answered the probe
                body["worker"] = app.config.worker_index
                body["pid"] = os.getpid()
            return self._send_json(200, body)
        if verb == "GET" and route == "/readyz":
            if app.ready:
                return self._send_json(200, {
                    "status": "ready", "version": app.live.version,
                })
            return self._send_json(503, {
                "status": "draining" if app.draining else "warming",
            })
        if verb == "GET" and route == "/metrics":
            text = obs.export.registry_to_prometheus(obs.registry())
            return self._send_bytes(200, text.encode("utf-8"), _PROMETHEUS)
        if verb == "GET" and route == "/metrics/aggregate":
            text = obs.export.prometheus_from_dict(
                app.aggregate_metrics_dict()
            )
            return self._send_bytes(200, text.encode("utf-8"), _PROMETHEUS)
        if verb == "GET" and route == "/debug/traces":
            params = parse_qs(query_string)
            try:
                limit = int(params.get("n", ["0"])[0])
            except ValueError:
                raise BadRequestError("n must be an integer")
            if limit < 0:
                raise BadRequestError("n must be an integer >= 0")
            return self._send_json(200, app.debug_traces_dict(limit=limit))
        if verb == "POST" and route == "/admin/reload":
            return self._send_json(200, app.handle_admin_reload())
        if verb == "POST" and route == "/admin/ingest":
            return self._send_json(200, app.handle_admin_ingest(payload))
        if route not in self.QUERY_ROUTES:
            return self._send_json(404, {"error": f"no route {route}"})
        if (verb == "GET") != (route == "/similar"):
            return self._send_json(405, {"error": f"wrong verb for {route}"})

        deadline_ms = payload.get(
            "deadline_ms", self.app.config.default_deadline_ms
        )
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ):
            raise BadRequestError("deadline_ms must be a number")
        deadline = Deadline.from_ms(deadline_ms)
        wait_cap = None if deadline.unlimited else deadline.remaining()
        with obs.span("admission") as admission_span:
            waited = app.admission.acquire(timeout_s=wait_cap)
            admission_span.set_attribute("waited_s", round(waited, 6))
        self._stages["queue_wait"] = waited
        try:
            with obs.span("handle", route=route):
                if route == "/reformulate":
                    return self._send_json(
                        200, app.handle_reformulate(payload, deadline)
                    )
                if route == "/reformulate/batch":
                    return self._send_json(
                        200, app.handle_batch(payload, deadline)
                    )
                return self._send_json(
                    200, app.handle_similar(parse_qs(query_string))
                )
        finally:
            app.admission.release()

    # ------------------------------------------------------------------ #
    # body / response plumbing
    # ------------------------------------------------------------------ #

    def _read_json_body(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise BadRequestError("invalid Content-Length")
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise BadRequestError("body must be a JSON object")
        return payload

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> int:
        serialize_start = time.perf_counter()
        body = json.dumps(payload).encode("utf-8")
        stages = getattr(self, "_stages", None)
        if stages is not None:
            stages["serialize"] = (
                stages.get("serialize", 0.0)
                + time.perf_counter()
                - serialize_start
            )
        return self._send_bytes(status, body, _JSON, extra_headers)

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> int:
        # Every response — 200s, 400s, 429 sheds, health probes —
        # carries the request's trace id so clients can correlate.
        ctx = getattr(self, "_trace_ctx", None)
        trace_id = ctx.trace_id if ctx is not None else new_trace_id()
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("X-Request-Id", trace_id)
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, socket.timeout):
            self.close_connection = True
        return status
