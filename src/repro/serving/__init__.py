"""Online serving fast path: plan cache, result LRU, batch helpers.

The seed online stage rebuilt candidate lists, smoothed HMM matrices and
the decode heuristic from scratch on every
:meth:`~repro.core.reformulator.Reformulator.reformulate` call, even
when consecutive queries shared terms.  This package memoizes the
per-term artifacts queries recombine:

* :class:`PlanCache` — per-term candidate/frequency/similarity blocks
  and per-term-pair closeness sub-matrices, assembled into bit-identical
  HMMs through :meth:`~repro.core.hmm.ReformulationHMM.assemble`;
* :class:`ResultCache` — complete suggestion lists keyed on
  ``(keywords, k, algorithm)`` with version-aware invalidation, owned by
  :class:`~repro.live.LiveReformulator`;
* the batched API (``Reformulator.reformulate_many`` /
  ``repro reformulate --batch``) warms the plan cache once per distinct
  term and fans decode across a thread pool.

All cache layers report ``repro_plan_cache_*`` / ``repro_result_cache_*``
hit/miss/eviction counters through the gated :mod:`repro.obs` registry.
See ``docs/serving.md`` for keys, invalidation rules and tuning knobs.
"""

from repro.serving.plan_cache import (
    PairPlan,
    PlanCache,
    PlanCacheStats,
    TermPlan,
)
from repro.serving.result_cache import ResultCache, ResultCacheStats

__all__ = [
    "PairPlan",
    "PlanCache",
    "PlanCacheStats",
    "TermPlan",
    "ResultCache",
    "ResultCacheStats",
]
