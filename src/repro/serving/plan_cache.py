"""Per-term query-plan cache: the heart of the online serving fast path.

``Reformulator.build_hmm`` spends its time on three things that are pure
functions of a *term* (or an adjacent term *pair*), yet the seed path
recomputed all of them on every query:

* resolving the candidate list ``L(q_i)`` (similarity-backend lookups);
* the Eq 7 frequency column and Eq 9 raw similarity column of that list;
* the Eq 8 pairwise closeness sub-matrix between two adjacent lists,
  an ``O(n²)`` python loop over closeness lookups.

The plan cache memoizes those blocks in two LRU layers:

* **term layer** — ``(term, version, knobs) → TermPlan`` holding the
  candidate states plus frequency/similarity columns;
* **pair layer** — ``(term_a, term_b, version, knobs) → PairPlan``
  holding the raw Eq 8 sub-matrix, its Eq 6 row-smoothed form, and the
  log-transformed smoothed matrix for the log-space decode lane.

Assembly then runs only the per-query work that genuinely cannot be
memoized per term (Eq 5's query-global emission smoothing and the final
normalizations) through :meth:`ReformulationHMM.assemble` — the same
code path the uncached build uses, so cached and uncached HMMs are
bit-identical.

``version`` is a caller-bumped epoch: :meth:`PlanCache.bump_version`
makes every existing entry unreachable (and drops it), which is how a
mutated graph invalidates plans without enumerating terms.  ``knobs``
fingerprints the config values the blocks depend on, so two pipelines
sharing backends never mix plans.

All layers report hit/miss/eviction counters through the gated
``repro.obs`` registry (series ``repro_plan_cache_*``) and keep plain
integer counters for cheap inspection via :meth:`PlanCache.stats`.

Thread safety: every accessor takes one re-entrant lock, misses
included, so a batched decode fan-out may hit the cache concurrently
while the underlying extractors (plain-dict caches) are only ever driven
from one thread at a time.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.candidates import CandidateListBuilder, CandidateState
from repro.core.hmm import (
    ClosenessBackend,
    FrequencyBackend,
    ReformulationHMM,
    log_matrix,
    pair_closeness_matrix,
    term_frequencies,
)
from repro.core.scoring import smooth_rows
from repro.errors import ReformulationError


@dataclass(frozen=True)
class TermPlan:
    """Memoized per-term building blocks of the HMM."""

    term: str
    states: Tuple[CandidateState, ...]  # resolved candidate list L(q_i)
    freqs: np.ndarray                   # Eq 7 numerators, aligned with states
    sims: np.ndarray                    # Eq 9 raw similarity column

    @property
    def state_list(self) -> List[CandidateState]:
        """A fresh list view (HMM/state consumers expect lists)."""
        return list(self.states)


@dataclass(frozen=True)
class PairPlan:
    """Memoized Eq 8 sub-matrix between two adjacent candidate lists."""

    raw: np.ndarray            # unsmoothed closeness sub-matrix
    smoothed: np.ndarray       # Eq 6 row-smoothed transition matrix
    log_smoothed: np.ndarray   # log(smoothed), zeros -> -inf


@dataclass(frozen=True)
class PlanCacheStats:
    """Snapshot of the cache counters (also exported via ``repro.obs``)."""

    term_hits: int
    term_misses: int
    term_evictions: int
    pair_hits: int
    pair_misses: int
    pair_evictions: int
    terms_resident: int
    pairs_resident: int

    @property
    def hits(self) -> int:
        """Total hits across both layers."""
        return self.term_hits + self.pair_hits

    @property
    def misses(self) -> int:
        """Total misses across both layers."""
        return self.term_misses + self.pair_misses


def _readonly(array: np.ndarray) -> np.ndarray:
    """Lock an array so shared cached blocks cannot be mutated in place."""
    array.setflags(write=False)
    return array


class PlanCache:
    """Two-layer LRU of per-term and per-term-pair HMM blocks.

    Parameters
    ----------
    candidates:
        The candidate-list builder (resolves terms against the graph and
        similarity backend).
    closeness:
        Eq 8 closeness backend (live extractor or relation store).
    frequency:
        Eq 7 frequency backend.
    smoothing_lambda:
        λ of Eq 5-6; baked into the cached smoothed/log matrices.
    void_closeness:
        Raw closeness of transitions entering a void state.
    max_terms / max_pairs:
        LRU capacities; least-recently-used entries are evicted first.
    knobs:
        Hashable fingerprint of every config value the blocks depend on;
        part of each key.
    version:
        Cache epoch; bump to invalidate everything at once.
    """

    def __init__(
        self,
        candidates: CandidateListBuilder,
        closeness: ClosenessBackend,
        frequency: FrequencyBackend,
        smoothing_lambda: float = 0.8,
        void_closeness: float = 1e-4,
        max_terms: int = 512,
        max_pairs: int = 2048,
        knobs: Tuple = (),
        version: int = 0,
    ) -> None:
        if max_terms < 1:
            raise ReformulationError("plan cache needs max_terms >= 1")
        if max_pairs < 1:
            raise ReformulationError("plan cache needs max_pairs >= 1")
        self.candidates = candidates
        self.closeness = closeness
        self.frequency = frequency
        self.smoothing_lambda = smoothing_lambda
        self.void_closeness = void_closeness
        self.max_terms = max_terms
        self.max_pairs = max_pairs
        self.knobs = tuple(knobs)
        self.version = version
        self._terms: "OrderedDict[Tuple, TermPlan]" = OrderedDict()
        self._pairs: "OrderedDict[Tuple, PairPlan]" = OrderedDict()
        self._lock = threading.RLock()
        self._term_hits = 0
        self._term_misses = 0
        self._term_evictions = 0
        self._pair_hits = 0
        self._pair_misses = 0
        self._pair_evictions = 0

    # ------------------------------------------------------------------ #
    # keys and invalidation
    # ------------------------------------------------------------------ #

    def term_key(self, term: str) -> Tuple:
        """Cache identity of one term's plan."""
        return (term, self.version, self.knobs)

    def pair_key(self, term_a: str, term_b: str) -> Tuple:
        """Cache identity of one ordered adjacent term pair."""
        return (term_a, term_b, self.version, self.knobs)

    def bump_version(self) -> None:
        """Invalidate every cached plan (graph or backend changed)."""
        with self._lock:
            self.version += 1
            dropped = len(self._terms) + len(self._pairs)
            self._terms.clear()
            self._pairs.clear()
            if dropped:
                obs.counter(
                    "repro_plan_cache_evictions_total",
                    "Plan-cache entries dropped",
                    layer="version",
                ).inc(dropped)
            self._update_gauges()

    def clear(self) -> None:
        """Drop all entries without changing the version."""
        with self._lock:
            self._terms.clear()
            self._pairs.clear()
            self._update_gauges()

    # ------------------------------------------------------------------ #
    # the two layers
    # ------------------------------------------------------------------ #

    def term_plan(self, term: str) -> TermPlan:
        """The memoized plan of one term (computed on first request)."""
        key = self.term_key(term)
        with self._lock:
            plan = self._terms.get(key)
            if plan is not None:
                self._terms.move_to_end(key)
                self._term_hits += 1
                self._count_hit("term")
                return plan
            self._term_misses += 1
            self._count_miss("term")
            states = tuple(self.candidates.candidates_for(term))
            plan = TermPlan(
                term=term,
                states=states,
                freqs=_readonly(term_frequencies(states, self.frequency)),
                sims=_readonly(
                    np.array([s.sim for s in states], dtype=np.float64)
                ),
            )
            self._terms[key] = plan
            while len(self._terms) > self.max_terms:
                self._terms.popitem(last=False)
                self._term_evictions += 1
                self._count_eviction("term")
            self._update_gauges()
            return plan

    def pair_plan(self, term_a: str, term_b: str) -> PairPlan:
        """The memoized Eq 8 sub-matrix for one adjacent term pair."""
        key = self.pair_key(term_a, term_b)
        with self._lock:
            plan = self._pairs.get(key)
            if plan is not None:
                self._pairs.move_to_end(key)
                self._pair_hits += 1
                self._count_hit("pair")
                return plan
            self._pair_misses += 1
            self._count_miss("pair")
            prev = self.term_plan(term_a).states
            curr = self.term_plan(term_b).states
            raw = pair_closeness_matrix(
                prev, curr, self.closeness, self.void_closeness
            )
            smoothed = smooth_rows(raw, self.smoothing_lambda)
            plan = PairPlan(
                raw=_readonly(raw),
                smoothed=_readonly(smoothed),
                log_smoothed=_readonly(log_matrix(smoothed)),
            )
            self._pairs[key] = plan
            while len(self._pairs) > self.max_pairs:
                self._pairs.popitem(last=False)
                self._pair_evictions += 1
                self._count_eviction("pair")
            self._update_gauges()
            return plan

    # ------------------------------------------------------------------ #
    # assembly
    # ------------------------------------------------------------------ #

    def states_for(self, keywords: Sequence[str]) -> List[List[CandidateState]]:
        """Per-position candidate lists served from the term layer."""
        if not keywords:
            raise ReformulationError("empty query")
        return [self.term_plan(kw).state_list for kw in keywords]

    def build_hmm(
        self,
        keywords: Sequence[str],
        plans: Optional[List[TermPlan]] = None,
    ) -> ReformulationHMM:
        """Assemble one query's HMM from cached blocks.

        *plans*, when the caller already fetched the term plans (the
        candidates stage of ``Reformulator._run`` does), avoids a second
        round of term-layer lookups.
        """
        keywords = list(keywords)
        if plans is None:
            plans = [self.term_plan(kw) for kw in keywords]
        pairs = [
            self.pair_plan(keywords[i - 1], keywords[i])
            for i in range(1, len(keywords))
        ]
        return ReformulationHMM.assemble(
            query=tuple(keywords),
            states=[plan.state_list for plan in plans],
            freqs=plans[0].freqs,
            raw_sims=[plan.sims for plan in plans],
            transitions=[pair.smoothed for pair in pairs],
            smoothing_lambda=self.smoothing_lambda,
            log_transitions=[pair.log_smoothed for pair in pairs],
        )

    def warm(self, queries: Sequence[Sequence[str]]) -> int:
        """Pre-build plans for every distinct term and adjacent pair.

        Returns the number of distinct terms touched.  Used by the batch
        API so shared terms across a query set are resolved exactly once
        and the subsequent decode fan-out only ever hits the cache.
        """
        terms = list(dict.fromkeys(t for q in queries for t in q))
        pairs = list(dict.fromkeys(
            (q[i - 1], q[i]) for q in queries for i in range(1, len(q))
        ))
        for term in terms:
            self.term_plan(term)
        for a, b in pairs:
            self.pair_plan(a, b)
        return len(terms)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> PlanCacheStats:
        """Counter snapshot (mirrors the ``repro_plan_cache_*`` series)."""
        with self._lock:
            return PlanCacheStats(
                term_hits=self._term_hits,
                term_misses=self._term_misses,
                term_evictions=self._term_evictions,
                pair_hits=self._pair_hits,
                pair_misses=self._pair_misses,
                pair_evictions=self._pair_evictions,
                terms_resident=len(self._terms),
                pairs_resident=len(self._pairs),
            )

    def __len__(self) -> int:
        return len(self._terms) + len(self._pairs)

    # ------------------------------------------------------------------ #
    # gated metric recording
    # ------------------------------------------------------------------ #

    @staticmethod
    def _count_hit(layer: str) -> None:
        obs.counter(
            "repro_plan_cache_hits_total",
            "Plan-cache lookups served from memory",
            layer=layer,
        ).inc()

    @staticmethod
    def _count_miss(layer: str) -> None:
        obs.counter(
            "repro_plan_cache_misses_total",
            "Plan-cache lookups that had to compute",
            layer=layer,
        ).inc()

    @staticmethod
    def _count_eviction(layer: str, amount: float = 1.0) -> None:
        if amount:
            obs.counter(
                "repro_plan_cache_evictions_total",
                "Plan-cache entries dropped",
                layer=layer,
            ).inc(amount)

    def _update_gauges(self) -> None:
        if obs.is_enabled():
            registry = obs.registry()
            registry.gauge(
                "repro_plan_cache_entries",
                "Resident plan-cache entries",
                layer="term",
            ).set(len(self._terms))
            registry.gauge(
                "repro_plan_cache_entries",
                "Resident plan-cache entries",
                layer="pair",
            ).set(len(self._pairs))
