"""Query-level result LRU with version-aware invalidation.

Caches complete ``reformulate`` outputs keyed on
``(keywords, k, algorithm, lane)`` together with the pipeline **version**
the result was computed against.  :class:`~repro.live.LiveReformulator`
owns one of these: its ``version`` counter increments on every rebuild,
so entries computed against an older pipeline are unreachable and get
evicted — stale suggestions are never served after an insert.

Eviction has two causes, reported separately through the gated
``repro.obs`` registry (``repro_result_cache_evictions_total`` with a
``reason`` label):

* ``capacity`` — LRU overflow;
* ``stale`` — the entry's version no longer matches (either swept in
  bulk by :meth:`ResultCache.evict_stale` after a rebuild, or dropped
  lazily when a lookup lands on an outdated entry).

Stored results are tuples of frozen :class:`ScoredQuery` values; lookups
return a fresh list, so callers may mutate what they get back.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.scoring import ScoredQuery
from repro.errors import ReformulationError


@dataclass(frozen=True)
class ResultCacheStats:
    """Counter snapshot (mirrors the ``repro_result_cache_*`` series)."""

    hits: int
    misses: int
    evictions_capacity: int
    evictions_stale: int
    resident: int

    @property
    def evictions(self) -> int:
        """Total evictions, both causes."""
        return self.evictions_capacity + self.evictions_stale


class ResultCache:
    """LRU of complete suggestion lists, invalidated by pipeline version."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ReformulationError("result cache needs max_entries >= 1")
        self.max_entries = max_entries
        # value is either a Tuple[ScoredQuery, ...] (get/put) or a frozen
        # LaneResult (get_result/put_result); the version tag is shared.
        self._entries: "OrderedDict[Hashable, Tuple[int, object]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions_capacity = 0
        self._evictions_stale = 0

    @staticmethod
    def key(
        keywords: Sequence[str], k: int, algorithm: str, lane: str = "hmm"
    ) -> Hashable:
        """Canonical cache key of one request.

        *lane* is the router's :meth:`~repro.lanes.router.LaneRouter.cache_tag`
        — the requested lane plus, when a fallback chain applies to it,
        the chain and its threshold.  Different lanes (or the same lane
        with and without an active fallback chain) can return different
        suggestions for identical keywords, so the tag is part of the
        identity: a degraded ``relaxation`` answer can never be served
        for an ``hmm`` request.
        """
        return (tuple(keywords), int(k), algorithm, lane)

    # ------------------------------------------------------------------ #
    # lookup / insert
    # ------------------------------------------------------------------ #

    def get(self, key: Hashable, version: int) -> Optional[List[ScoredQuery]]:
        """The cached suggestion list, or None on miss.

        An entry computed against a different *version* counts as a miss
        and is dropped on the spot (lazy staleness sweep).
        """
        results = self._get_value(key, version)
        return None if results is None else list(results)

    def put(
        self, key: Hashable, version: int, results: Sequence[ScoredQuery]
    ) -> None:
        """Store one result list under *key* at *version*."""
        self._put_value(key, version, tuple(results))

    def get_result(self, key: Hashable, version: int):
        """A cached :class:`~repro.lanes.base.LaneResult`, or None.

        Same lookup semantics as :meth:`get`, but the stored value is
        returned as-is — lane results are frozen dataclasses, so no
        defensive copy is needed.  Lane-aware callers (the live wrapper)
        use this pair; :meth:`get`/:meth:`put` keep the original
        list-of-suggestions contract for existing callers.
        """
        return self._get_value(key, version)

    def put_result(self, key: Hashable, version: int, result) -> None:
        """Store one lane result under *key* at *version*."""
        self._put_value(key, version, result)

    def _get_value(self, key: Hashable, version: int):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                self._count("repro_result_cache_misses_total",
                            "Result-cache lookups that missed")
                return None
            entry_version, value = entry
            if entry_version != version:
                del self._entries[key]
                self._evictions_stale += 1
                self._count_eviction("stale")
                self._misses += 1
                self._count("repro_result_cache_misses_total",
                            "Result-cache lookups that missed")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._count("repro_result_cache_hits_total",
                        "Result-cache lookups served from memory")
            return value

    def _put_value(self, key: Hashable, version: int, value) -> None:
        with self._lock:
            self._entries[key] = (int(version), value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions_capacity += 1
                self._count_eviction("capacity")

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #

    def evict_stale(self, version: int) -> int:
        """Drop every entry not computed against *version*; returns count.

        Called by ``LiveReformulator`` right after a rebuild bumped its
        version, so the staleness gauge, the bypass counter and these
        evictions reconcile: every mutation-induced rebuild turns the
        whole resident set into ``stale`` evictions.
        """
        with self._lock:
            stale = [
                key for key, (entry_version, _results) in self._entries.items()
                if entry_version != version
            ]
            for key in stale:
                del self._entries[key]
            if stale:
                self._evictions_stale += len(stale)
                self._count_eviction("stale", len(stale))
            return len(stale)

    def clear(self) -> None:
        """Drop everything (not counted as evictions)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> ResultCacheStats:
        """Counter snapshot."""
        with self._lock:
            return ResultCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions_capacity=self._evictions_capacity,
                evictions_stale=self._evictions_stale,
                resident=len(self._entries),
            )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------ #
    # gated metric recording
    # ------------------------------------------------------------------ #

    @staticmethod
    def _count(name: str, help: str) -> None:
        obs.counter(name, help).inc()

    @staticmethod
    def _count_eviction(reason: str, amount: float = 1.0) -> None:
        obs.counter(
            "repro_result_cache_evictions_total",
            "Result-cache entries dropped",
            reason=reason,
        ).inc(amount)
