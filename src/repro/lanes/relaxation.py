"""The ``relaxation`` lane: degrade the query when substitution fails.

The HMM reformulator always answers — its smoothed parameters have no
true zeroes — so a query whose terms simply do not co-occur anywhere in
the corpus still gets a page of low-value substitutions.  Following
Wiese's algebraic query relaxation (PAPERS.md), this lane detects that
case via :func:`~repro.lanes.base.query_cohesion` and, instead of
substituting, **weakens the query semantically**:

* **generalization** — climb each term to its most similar neighbour
  (the store's ``similar_nodes`` list) and keep the climbed query when
  its own best path *is* cohesive;
* **term dropping** — remove terms in **idf-weighted order** (unknown
  terms first, then the least informative, lowest-idf terms) and decode
  the reduced query; a single surviving keyword is trivially cohesive,
  so the descent always terminates with a usable answer.

Relaxed suggestions are marked ``relaxed: true`` and their provenance
lists exactly what was dropped/generalized.  Dropped positions survive
as ``None`` in the suggestion's ``terms`` (with ``-1`` in
``state_path``), keeping positional alignment with the input — the eval
judges already treat ``None`` as a deletion.

On a cohesive query the lane is a pass-through: it returns the plain
HMM suggestions (marked ``relaxed: false``), which is also what lets it
serve as the router's fallback target without double-decoding.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.reformulator import Reformulator
from repro.core.scoring import ScoredQuery
from repro.errors import UnknownNodeError
from repro.lanes.base import Lane, LaneResult, query_cohesion
from repro.lanes.hmm import HmmLane


class RelaxationLane(Lane):
    """Drop/generalize terms when no cohesive substitution exists.

    Parameters
    ----------
    pipeline:
        The shared reformulator (decodes every reduced/climbed query).
    cohesion_threshold:
        Best-path cohesion below which the query counts as incohesive.
    max_decodes:
        Cap on relaxation variants decoded per request (the lane's own
        budget, independent of the wall-clock *budget* argument).
    climb_width:
        How many similar-term neighbours to try per position when
        generalizing.
    """

    name = "relaxation"
    capabilities = frozenset({"substitution", "relaxation", "cohesion"})

    def __init__(
        self,
        pipeline: Reformulator,
        cohesion_threshold: float = 1e-9,
        max_decodes: int = 16,
        climb_width: int = 2,
    ) -> None:
        self.pipeline = pipeline
        self.cohesion_threshold = cohesion_threshold
        self.max_decodes = max_decodes
        self.climb_width = climb_width
        self._hmm = HmmLane(pipeline)

    # ------------------------------------------------------------------ #
    # lane entry point
    # ------------------------------------------------------------------ #

    def reformulate(
        self,
        query: Sequence[str],
        k: int = 10,
        budget: Optional[float] = None,
        algorithm: str = "astar",
    ) -> LaneResult:
        """HMM suggestions when cohesive, relaxed variants otherwise."""
        keywords = list(query)
        base = self._hmm.reformulate(keywords, k=k, algorithm=algorithm)
        if base.cohesion is not None and base.cohesion >= self.cohesion_threshold:
            # Cohesive: substitution works, nothing to relax.
            return LaneResult(
                lane=self.name,
                suggestions=base.suggestions,
                provenance=tuple(
                    {"lane": self.name, "relaxed": False}
                    for _ in base.suggestions
                ),
                relaxed=False,
                cohesion=base.cohesion,
                metadata={"passthrough": "hmm"},
            )
        return self._relax(keywords, k, budget, algorithm, base.cohesion)

    # ------------------------------------------------------------------ #
    # relaxation search
    # ------------------------------------------------------------------ #

    def _relax(
        self,
        keywords: List[str],
        k: int,
        budget: Optional[float],
        algorithm: str,
        base_cohesion: Optional[float],
    ) -> LaneResult:
        deadline = (
            time.monotonic() + budget if budget and budget > 0 else None
        )
        decodes = 0
        suggestions: List[ScoredQuery] = []
        provenance: List[Dict[str, Any]] = []
        seen_texts = set()

        def out_of_budget() -> bool:
            return (
                len(suggestions) >= k
                or decodes >= self.max_decodes
                or (deadline is not None and time.monotonic() >= deadline)
            )

        def admit(
            scored: ScoredQuery, entry: Dict[str, Any]
        ) -> None:
            if scored.text and scored.text not in seen_texts:
                seen_texts.add(scored.text)
                suggestions.append(scored)
                provenance.append(entry)

        # 1. Generalization: similar-term climb, one position at a time.
        #    A climbed query keeps every position, so it is the weakest
        #    relaxation; only kept when the climb actually restores
        #    cohesion.
        for pos, neighbour_text in self._climb_candidates(keywords):
            if out_of_budget():
                break
            climbed = list(keywords)
            climbed[pos] = neighbour_text
            best = self.pipeline.best(climbed)
            decodes += 1
            if query_cohesion(self.pipeline, climbed, best) < self.cohesion_threshold:
                continue
            identity = self._identity_suggestion(climbed)
            if identity is not None:
                admit(identity, {
                    "lane": self.name,
                    "relaxed": True,
                    "dropped": [],
                    "generalized": {keywords[pos]: neighbour_text},
                })

        # 2. Term dropping in idf-weighted order: unknown terms first,
        #    then ascending idf (the least informative go first).  Each
        #    round drops one more term; a one-keyword remainder is
        #    trivially cohesive, so the descent terminates.
        drop_order = self._drop_order(keywords)
        dropped: List[int] = []
        remaining = list(range(len(keywords)))
        for drop_pos in drop_order:
            if out_of_budget() or len(remaining) <= 1:
                break
            dropped.append(drop_pos)
            remaining = [i for i in remaining if i != drop_pos]
            reduced = [keywords[i] for i in remaining]
            best = self.pipeline.best(reduced)
            decodes += 1
            if (
                len(reduced) > 1
                and query_cohesion(self.pipeline, reduced, best)
                < self.cohesion_threshold
            ):
                continue  # still incohesive: drop another term
            dropped_terms = [keywords[i] for i in sorted(dropped)]
            entry = {
                "lane": self.name,
                "relaxed": True,
                "dropped": dropped_terms,
                "generalized": {},
            }
            identity = self._identity_suggestion(reduced)
            if identity is not None:
                admit(self._realign(identity, remaining, len(keywords)),
                      dict(entry))
            if not out_of_budget():
                subs = self.pipeline.reformulate(
                    reduced, k=max(1, k - len(suggestions)),
                    algorithm=algorithm,
                )
                decodes += 1
                for scored in subs:
                    if len(suggestions) >= k:
                        break
                    admit(self._realign(scored, remaining, len(keywords)),
                          dict(entry))

        return LaneResult(
            lane=self.name,
            suggestions=tuple(suggestions),
            provenance=tuple(provenance),
            relaxed=bool(suggestions),
            cohesion=base_cohesion,
            metadata={"decodes": decodes, "input_length": len(keywords)},
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _drop_order(self, keywords: List[str]) -> List[int]:
        """Positions to drop, least informative first.

        Unknown terms (no corpus node: they are what breaks cohesion and
        cannot be substituted) come first, then known terms by ascending
        idf; position order breaks ties deterministically.
        """
        ranked = []
        for pos, keyword in enumerate(keywords):
            try:
                node_id = self.pipeline.graph.resolve_text_one(keyword)
                term = self.pipeline.graph.node(node_id).payload
                weight = (1, self.pipeline.graph.index.idf(term))
            except UnknownNodeError:
                weight = (0, 0.0)
            ranked.append((weight, pos))
        ranked.sort()
        return [pos for _weight, pos in ranked]

    def _climb_candidates(self, keywords: List[str]):
        """(position, neighbour text) pairs for the generalization climb.

        Follows the drop order so the least informative terms are
        climbed first; each position offers its ``climb_width`` most
        similar neighbours from the store.
        """
        for pos in self._drop_order(keywords):
            try:
                node_id = self.pipeline.graph.resolve_text_one(keywords[pos])
            except UnknownNodeError:
                continue  # nothing to climb to
            neighbours = self.pipeline.similarity.similar_nodes(
                node_id, self.climb_width + 1
            )
            for neighbour in neighbours[: self.climb_width + 1]:
                if neighbour.node_id == node_id:
                    continue
                text = self.pipeline.graph.node(neighbour.node_id).text
                if text and text != keywords[pos]:
                    yield pos, text

    def _identity_suggestion(
        self, keywords: List[str]
    ) -> Optional[ScoredQuery]:
        """The query itself as a scored path of its own HMM.

        The relaxed query *as written* is Wiese's primary answer (the
        normal decode path filters it out as the identity).  Returns
        None when some position lacks an original state (non-default
        ``include_original=False`` configurations).
        """
        hmm = self.pipeline.build_hmm(keywords)
        path = []
        for pos, keyword in enumerate(keywords):
            index = next(
                (
                    i for i, state in enumerate(hmm.states[pos])
                    if not state.is_void and state.text == keyword
                ),
                None,
            )
            if index is None:
                return None
            path.append(index)
        return hmm.scored_query(tuple(path))

    @staticmethod
    def _realign(
        scored: ScoredQuery, remaining: List[int], length: int
    ) -> ScoredQuery:
        """Re-insert dropped positions as ``None`` terms (``-1`` path).

        Keeps suggestions positionally aligned with the *input* query so
        downstream consumers (judges, diffing clients) see exactly which
        input positions were deleted.
        """
        terms: List[Optional[str]] = [None] * length
        path = [-1] * length
        for reduced_pos, original_pos in enumerate(remaining):
            terms[original_pos] = scored.terms[reduced_pos]
            path[original_pos] = scored.state_path[reduced_pos]
        return ScoredQuery(
            terms=tuple(terms), score=scored.score, state_path=tuple(path)
        )
