"""The ``schema`` lane: keywords that name schema elements bind fields.

Users of structured search mix *value* keywords with *schema* keywords —
"author jensen" means "jensen **as an author name**", not a paper about
authors (the schema-reference phenomenon studied by Martins et al.,
PAPERS.md).  The plain HMM treats "author" as just another term and
happily substitutes both words.  This lane instead:

1. detects schema-referencing keywords against a declared **field
   vocabulary** (``keyword → (table, column)``, emitted by the corpus
   generator or derived from any schema via
   :func:`derive_field_vocabulary`);
2. removes them from the decoded query — a schema token is an
   instruction, not content — letting each one bind the **next**
   value keyword to its field;
3. constrains the bound positions' candidate lists before decoding:
   SIMILAR candidates whose term node lives in a different field are
   filtered out (the TAT graph's ``node_class`` for a term node *is*
   its ``(table, column)``), so "author jensen" can only substitute
   "jensen" with other author names.

The constrained HMM then runs through the pipeline's normal decoder and
post-processing, so scoring semantics match the hmm lane exactly — the
lane only narrows the hypothesis space.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.candidates import CandidateState, StateKind
from repro.core.hmm import ReformulationHMM
from repro.core.reformulator import _TOPK_DECODERS, Reformulator
from repro.core.enumeration import brute_force_topk
from repro.errors import ReformulationError
from repro.index.inverted import FieldRef
from repro.lanes.base import Lane, LaneResult
from repro.lanes.hmm import HmmLane
from repro.storage.database import Database


class SchemaLane(Lane):
    """Field-constrained reformulation driven by schema keywords."""

    name = "schema"
    capabilities = frozenset({"substitution", "schema", "cohesion"})

    def __init__(
        self,
        pipeline: Reformulator,
        field_vocabulary: Dict[str, FieldRef],
    ) -> None:
        self.pipeline = pipeline
        self.field_vocabulary = {
            keyword.lower(): tuple(field)
            for keyword, field in field_vocabulary.items()
        }
        self._hmm = HmmLane(pipeline)

    # ------------------------------------------------------------------ #
    # lane entry point
    # ------------------------------------------------------------------ #

    def reformulate(
        self,
        query: Sequence[str],
        k: int = 10,
        budget: Optional[float] = None,
        algorithm: str = "astar",
    ) -> LaneResult:
        """Field-constrained top-k after consuming schema keywords."""
        del budget  # single decode, like the hmm lane
        keywords = list(query)
        reduced, bindings, schema_tokens = self.detect_bindings(keywords)
        if not reduced:
            raise ReformulationError(
                f"query {keywords!r} contains only schema keywords; "
                "nothing to reformulate"
            )
        if not bindings:
            # No schema references: behave exactly like the hmm lane.
            base = self._hmm.reformulate(reduced, k=k, algorithm=algorithm)
            return LaneResult(
                lane=self.name,
                suggestions=base.suggestions,
                provenance=tuple(
                    {"lane": self.name, "relaxed": False, "bindings": {}}
                    for _ in base.suggestions
                ),
                relaxed=False,
                cohesion=base.cohesion,
                metadata={"bindings": {}, "schema_tokens": []},
            )
        suggestions = self._constrained_decode(reduced, bindings, k, algorithm)
        binding_map = {
            reduced[pos]: list(field) for pos, field in bindings.items()
        }
        return LaneResult(
            lane=self.name,
            suggestions=tuple(suggestions),
            provenance=tuple(
                {"lane": self.name, "relaxed": False, "bindings": binding_map}
                for _ in suggestions
            ),
            relaxed=False,
            cohesion=None,  # constrained space: hmm-lane cohesion not comparable
            metadata={
                "bindings": binding_map,
                "schema_tokens": schema_tokens,
                "decoded_query": list(reduced),
            },
        )

    # ------------------------------------------------------------------ #
    # schema-token detection
    # ------------------------------------------------------------------ #

    def detect_bindings(
        self, keywords: Sequence[str]
    ) -> Tuple[List[str], Dict[int, FieldRef], List[str]]:
        """Split *keywords* into the decoded query and field bindings.

        A keyword found in the field vocabulary is consumed as a schema
        token and binds the **next** value keyword to its field (a
        trailing schema token binds nothing).  Returns ``(reduced
        query, {reduced position: field}, consumed schema tokens)``.
        """
        reduced: List[str] = []
        bindings: Dict[int, FieldRef] = {}
        schema_tokens: List[str] = []
        pending: Optional[FieldRef] = None
        for keyword in keywords:
            field = self.field_vocabulary.get(keyword.lower())
            if field is not None:
                schema_tokens.append(keyword)
                pending = field
                continue
            if pending is not None:
                bindings[len(reduced)] = pending
                pending = None
            reduced.append(keyword)
        return reduced, bindings, schema_tokens

    # ------------------------------------------------------------------ #
    # field-constrained decode
    # ------------------------------------------------------------------ #

    def _constrained_decode(
        self,
        reduced: List[str],
        bindings: Dict[int, FieldRef],
        k: int,
        algorithm: str,
    ):
        pipeline = self.pipeline
        states = pipeline.candidates.build(reduced)
        constrained = [
            self._constrain(states[pos], bindings.get(pos))
            for pos in range(len(states))
        ]
        hmm = ReformulationHMM.build(
            query=reduced,
            states=constrained,
            closeness=pipeline.closeness,
            frequency=pipeline.frequency,
            smoothing_lambda=pipeline.config.smoothing_lambda,
        )
        want = k + pipeline._slack(reduced)
        if algorithm in ("astar", "astar_log"):
            raw = _TOPK_DECODERS[(algorithm, pipeline.config.decode_impl)](
                hmm, want
            ).queries
        elif algorithm in ("viterbi_topk", "viterbi_topk_log"):
            raw = _TOPK_DECODERS[(algorithm, pipeline.config.decode_impl)](
                hmm, want
            )
        elif algorithm == "brute_force":
            raw = brute_force_topk(hmm, want)
        else:
            raise ReformulationError(f"unknown algorithm {algorithm!r}")
        return pipeline._postprocess(reduced, raw, k)

    def _constrain(
        self, states: List[CandidateState], field: Optional[FieldRef]
    ) -> List[CandidateState]:
        """Filter SIMILAR candidates of a bound position to *field*.

        ORIGINAL and VOID states always survive — the user's own word is
        never wrong, and deletion stays available — so a binding with no
        in-field similar terms degrades to "keep the word as typed"
        rather than failing the decode.
        """
        if field is None:
            return states
        kept = []
        for state in states:
            if state.kind is not StateKind.SIMILAR or state.node_id is None:
                kept.append(state)  # ORIGINAL / VOID always survive
                continue
            node = self.pipeline.graph.node(state.node_id)
            if node.node_class == field:
                kept.append(state)
        return kept


def derive_field_vocabulary(database: Database) -> Dict[str, FieldRef]:
    """A field vocabulary from any schema's own names.

    Each text field ``(table, column)`` is reachable by its table name,
    the singular of the table name (trailing ``s`` stripped), and — when
    unambiguous — the column name.  Keys claimed by more than one field
    are dropped entirely: a vocabulary must never guess.
    """
    claims: Dict[str, List[FieldRef]] = {}

    def claim(keyword: str, field: FieldRef) -> None:
        keyword = keyword.lower()
        if keyword:
            claims.setdefault(keyword, []).append(field)

    for table_name, table in database.schema.tables.items():
        text_fields = list(table.text_fields)
        if not text_fields:
            continue
        # The table name points at its first declared text field.
        primary: FieldRef = (table_name, text_fields[0])
        claim(table_name, primary)
        if table_name.endswith("s") and len(table_name) > 1:
            claim(table_name[:-1], primary)
        for column in text_fields:
            claim(column, (table_name, column))

    return {
        keyword: fields[0]
        for keyword, fields in claims.items()
        if len({tuple(f) for f in fields}) == 1
    }
