"""The ``hmm`` lane: the paper's reformulator behind the lane interface.

A pure wrapper — candidate extraction, HMM parameterization, top-k
decode and post-processing all run through the wrapped
:class:`~repro.core.reformulator.Reformulator`, so the suggestions are
**bit-identical** to calling it directly (an explicit contract, locked
by the equivalence tests).  The only thing the lane adds is
measurement: it stamps each suggestion's provenance and computes the
best path's :func:`~repro.lanes.base.query_cohesion`, which the router
compares against its threshold to decide whether to chain the
relaxation fallback.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.reformulator import Reformulator
from repro.core.scoring import ScoredQuery
from repro.lanes.base import Lane, LaneResult, query_cohesion


class HmmLane(Lane):
    """Substitutive reformulation via the HMM decoder (the default)."""

    name = "hmm"
    capabilities = frozenset({"substitution", "cohesion", "batch"})

    def __init__(self, pipeline: Reformulator) -> None:
        self.pipeline = pipeline

    def reformulate(
        self,
        query: Sequence[str],
        k: int = 10,
        budget: Optional[float] = None,
        algorithm: str = "astar",
    ) -> LaneResult:
        """Top-k substitutions, bit-identical to the bare pipeline."""
        del budget  # one decode; the server's deadline machinery governs it
        keywords = list(query)
        suggestions = self.pipeline.reformulate(
            keywords, k=k, algorithm=algorithm
        )
        return self.result_for(keywords, suggestions)

    def reformulate_batch(
        self,
        queries: Sequence[Sequence[str]],
        k: int = 10,
        budget: Optional[float] = None,
        algorithm: str = "astar",
        workers: int = 1,
    ) -> List[LaneResult]:
        """Shared-plan batched decode (``reformulate_many`` fast path)."""
        del budget
        parsed = [list(query) for query in queries]
        batches = self.pipeline.reformulate_many(
            parsed, k=k, algorithm=algorithm, workers=workers
        )
        return [
            self.result_for(keywords, suggestions)
            for keywords, suggestions in zip(parsed, batches)
        ]

    def result_for(
        self, keywords: List[str], suggestions: Sequence[ScoredQuery]
    ) -> LaneResult:
        """Wrap already-decoded suggestions (cohesion measured here).

        Used by both entry points above and by
        :meth:`LiveReformulator.reformulate_many_lane`'s batched path, so
        every hmm-lane answer — single, batched, cached — carries the
        same cohesion measurement.
        """
        suggestions = tuple(suggestions)
        best = suggestions[0] if suggestions else None
        cohesion = query_cohesion(self.pipeline, keywords, best)
        provenance: Tuple[Dict[str, Any], ...] = tuple(
            {"lane": self.name, "relaxed": False} for _ in suggestions
        )
        return LaneResult(
            lane=self.name,
            suggestions=suggestions,
            provenance=provenance,
            relaxed=False,
            cohesion=cohesion,
            metadata={"algorithm_family": "hmm"},
        )
