"""Lane registration, request routing, and the relaxation fallback chain.

The :class:`LaneRouter` is the single entry point the serving stack uses
to reach any reformulation strategy::

    router = build_router(pipeline, RouterConfig(fallback_lane="relaxation"))
    result = router.route(["probabilistic", "xml"], k=5, lane="hmm")

It owns three responsibilities:

* **validation** — an unknown lane name raises
  :class:`~repro.lanes.base.UnknownLaneError`, which the HTTP layer maps
  to a 400 (the router is the only place lane names are resolved, so the
  check happens exactly once per request);
* **fallback chaining** — when the routed lane reports a best-path
  cohesion below ``cohesion_threshold`` and a ``fallback_lane`` is
  configured, the router re-runs the query through the fallback and
  stamps ``fallback_from`` on the result (lanes that do not measure
  cohesion, like ``enumeration``, never fall back);
* **measurement** — per-lane request counters and latency histograms
  (``repro_lane_*``), a fallback-transition counter, and the lane name
  annotated onto the active trace so access logs and the flight
  recorder can attribute every request.

Routing state is deliberately tiny (a name → lane dict plus the frozen
config) so each pre-fork worker builds its own router from the shared
:class:`RouterConfig` after the fork.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.reformulator import Reformulator
from repro.errors import ReproError
from repro.index.inverted import FieldRef
from repro.lanes.base import Lane, LaneResult, UnknownLaneError
from repro.lanes.enumeration import EnumerationLane
from repro.lanes.hmm import HmmLane
from repro.lanes.relaxation import RelaxationLane
from repro.lanes.schema import SchemaLane, derive_field_vocabulary

#: Lane names :func:`build_router` knows how to construct.
KNOWN_LANES: Tuple[str, ...] = ("hmm", "enumeration", "relaxation", "schema")

#: Latency buckets for the per-lane histogram (seconds).
_LANE_SECONDS_BUCKETS = [
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
]


@dataclass(frozen=True)
class RouterConfig:
    """Everything a worker needs to rebuild its router after a fork.

    ``field_vocabulary`` feeds the schema lane; when ``None`` the
    vocabulary is derived from the pipeline's own schema
    (:func:`~repro.lanes.schema.derive_field_vocabulary`).
    """

    lanes: Tuple[str, ...] = KNOWN_LANES
    default_lane: str = "hmm"
    fallback_lane: Optional[str] = None
    cohesion_threshold: float = 1e-9
    max_relaxation_decodes: int = 16
    climb_width: int = 2
    field_vocabulary: Optional[Dict[str, FieldRef]] = None

    def validate(self) -> None:
        """Raise :class:`ReproError` on an inconsistent configuration."""
        if not self.lanes:
            raise ReproError("router config must enable at least one lane")
        unknown = [name for name in self.lanes if name not in KNOWN_LANES]
        if unknown:
            raise ReproError(
                f"unknown lanes {unknown!r}, expected a subset of {KNOWN_LANES}"
            )
        if len(set(self.lanes)) != len(self.lanes):
            raise ReproError(f"duplicate lanes in {self.lanes!r}")
        if self.default_lane not in self.lanes:
            raise ReproError(
                f"default lane {self.default_lane!r} is not among the "
                f"enabled lanes {self.lanes!r}"
            )
        if self.fallback_lane is not None and self.fallback_lane not in self.lanes:
            raise ReproError(
                f"fallback lane {self.fallback_lane!r} is not among the "
                f"enabled lanes {self.lanes!r}"
            )
        if self.cohesion_threshold < 0:
            raise ReproError(
                f"cohesion threshold must be >= 0, got {self.cohesion_threshold}"
            )
        if self.max_relaxation_decodes < 1:
            raise ReproError("max_relaxation_decodes must be >= 1")
        if self.climb_width < 0:
            raise ReproError("climb_width must be >= 0")

    def resolve(self, name: Optional[str]) -> str:
        """Validated lane name for a request (``None`` → default).

        Config-only — callers that must reject a bad lane name *before*
        paying for a pipeline build (the HTTP layer, the live wrapper)
        validate here; the router's own :meth:`LaneRouter.resolve` adds
        the registered-instance check.
        """
        if name is None:
            return self.default_lane
        if name not in self.lanes:
            raise UnknownLaneError(
                f"unknown lane {name!r}, expected one of {sorted(self.lanes)}"
            )
        return name

    def cache_tag(self, requested: str) -> str:
        """The lane component of a result-cache key.

        A lane whose answers can be replaced by the fallback chain must
        not share cache entries with the same lane running chain-free —
        an ``hmm`` request under ``fallback_lane=relaxation`` may return
        relaxed suggestions, which would poison a plain ``hmm`` cache
        line.  The tag therefore encodes the full decision function:
        the requested lane, and the chain + threshold when they apply.
        """
        fallback = self.fallback_lane
        if fallback is None or requested == fallback:
            return requested
        return f"{requested}>{fallback}@{self.cohesion_threshold:g}"


class LaneRouter:
    """Dispatches reformulation requests to registered lanes."""

    def __init__(self, config: Optional[RouterConfig] = None) -> None:
        self.config = config or RouterConfig()
        self.config.validate()
        self._lanes: Dict[str, Lane] = {}

    # ------------------------------------------------------------------ #
    # registration / resolution
    # ------------------------------------------------------------------ #

    def register(self, lane: Lane) -> None:
        """Add a lane; its :attr:`~repro.lanes.base.Lane.name` is the key."""
        if lane.name in self._lanes:
            raise ReproError(f"lane {lane.name!r} already registered")
        self._lanes[lane.name] = lane

    @property
    def names(self) -> Tuple[str, ...]:
        """Registered lane names, in registration order."""
        return tuple(self._lanes)

    def lane(self, name: str) -> Lane:
        """Resolve a lane by name (raises :class:`UnknownLaneError`)."""
        try:
            return self._lanes[name]
        except KeyError:
            raise UnknownLaneError(
                f"unknown lane {name!r}, expected one of {sorted(self._lanes)}"
            ) from None

    def resolve(self, name: Optional[str]) -> str:
        """Validated lane name for a request (``None`` → default)."""
        if name is None:
            name = self.config.default_lane
        self.lane(name)  # raises on unknown
        return name

    def cache_tag(self, requested: str) -> str:
        """See :meth:`RouterConfig.cache_tag` (pure config)."""
        return self.config.cache_tag(requested)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def route(
        self,
        query: Sequence[str],
        k: int = 10,
        lane: Optional[str] = None,
        budget: Optional[float] = None,
        algorithm: str = "astar",
    ) -> LaneResult:
        """Run one query through the requested (or default) lane.

        Applies the fallback chain and stamps routing provenance
        (``requested`` / ``fallback_from``) onto the result.
        """
        requested = self.resolve(lane)
        result = self._timed(requested, query, k, budget, algorithm)
        result = self._maybe_fallback(requested, result, query, k, budget, algorithm)
        self._observe(result)
        return result

    def route_many(
        self,
        queries: Sequence[Sequence[str]],
        k: int = 10,
        lane: Optional[str] = None,
        budget: Optional[float] = None,
        algorithm: str = "astar",
        workers: int = 1,
    ) -> List[LaneResult]:
        """Batched :meth:`route`: one lane resolution, per-entry fallback."""
        requested = self.resolve(lane)
        target = self.lane(requested)
        start = time.monotonic()
        results = target.reformulate_batch(
            queries, k=k, budget=budget, algorithm=algorithm, workers=workers
        )
        self._record(requested, time.monotonic() - start, count=len(queries))
        out = []
        for query, result in zip(queries, results):
            result = self._maybe_fallback(
                requested, result, query, k, budget, algorithm
            )
            self._observe(result, annotate=False)
            out.append(result)
        if out:
            obs.annotate_trace("lane", out[0].lane)
        return out

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _timed(
        self,
        name: str,
        query: Sequence[str],
        k: int,
        budget: Optional[float],
        algorithm: str,
    ) -> LaneResult:
        target = self.lane(name)
        start = time.monotonic()
        result = target.reformulate(query, k=k, budget=budget, algorithm=algorithm)
        self._record(name, time.monotonic() - start)
        return result

    def _maybe_fallback(
        self,
        requested: str,
        result: LaneResult,
        query: Sequence[str],
        k: int,
        budget: Optional[float],
        algorithm: str,
    ) -> LaneResult:
        fallback = self.config.fallback_lane
        if (
            fallback is not None
            and requested != fallback
            and result.cohesion is not None
            and result.cohesion < self.config.cohesion_threshold
        ):
            if obs.is_enabled():
                obs.registry().counter(
                    "repro_lane_fallback_total",
                    "Requests re-routed through the fallback lane",
                    from_lane=requested,
                    to_lane=fallback,
                ).inc()
            chained = self._timed(fallback, query, k, budget, algorithm)
            return chained.with_routing(requested, fallback_from=requested)
        return result.with_routing(requested)

    def _record(self, name: str, elapsed: float, count: int = 1) -> None:
        if not obs.is_enabled():
            return
        registry = obs.registry()
        registry.counter(
            "repro_lane_requests_total",
            "Reformulation requests served, by lane",
            lane=name,
        ).inc(count)
        registry.histogram(
            "repro_lane_seconds",
            "Lane execution latency (seconds)",
            buckets=_LANE_SECONDS_BUCKETS,
            lane=name,
        ).observe(elapsed)

    def _observe(self, result: LaneResult, annotate: bool = True) -> None:
        if result.relaxed and obs.is_enabled():
            obs.registry().counter(
                "repro_lane_relaxed_total",
                "Responses containing relaxed suggestions, by serving lane",
                lane=result.lane,
            ).inc()
        if annotate:
            obs.annotate_trace("lane", result.lane)


def build_router(
    pipeline: Reformulator, config: Optional[RouterConfig] = None
) -> LaneRouter:
    """A router with every lane named in *config* constructed and wired.

    The schema lane's vocabulary comes from ``config.field_vocabulary``
    when declared, else from the schema itself.
    """
    config = config or RouterConfig()
    router = LaneRouter(config)
    for name in config.lanes:
        if name == "hmm":
            router.register(HmmLane(pipeline))
        elif name == "enumeration":
            router.register(EnumerationLane(pipeline))
        elif name == "relaxation":
            router.register(
                RelaxationLane(
                    pipeline,
                    cohesion_threshold=config.cohesion_threshold,
                    max_decodes=config.max_relaxation_decodes,
                    climb_width=config.climb_width,
                )
            )
        elif name == "schema":
            vocabulary = config.field_vocabulary
            if vocabulary is None:
                vocabulary = derive_field_vocabulary(pipeline.graph.database)
            router.register(SchemaLane(pipeline, vocabulary))
    return router


__all__ = [
    "KNOWN_LANES",
    "LaneRouter",
    "RouterConfig",
    "build_router",
]
