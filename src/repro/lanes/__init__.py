"""Pluggable reformulation lanes over the HMM pipeline.

One *lane* = one complete reformulation strategy behind
:class:`~repro.lanes.base.Lane`; the
:class:`~repro.lanes.router.LaneRouter` validates requests, applies the
relaxation fallback chain, and records per-lane metrics.  See
``docs/architecture.md`` (Lanes) for the routing diagram.
"""

from repro.lanes.base import Lane, LaneResult, UnknownLaneError, query_cohesion
from repro.lanes.enumeration import EnumerationLane
from repro.lanes.hmm import HmmLane
from repro.lanes.relaxation import RelaxationLane
from repro.lanes.router import KNOWN_LANES, LaneRouter, RouterConfig, build_router
from repro.lanes.schema import SchemaLane, derive_field_vocabulary

__all__ = [
    "KNOWN_LANES",
    "EnumerationLane",
    "HmmLane",
    "Lane",
    "LaneResult",
    "LaneRouter",
    "RelaxationLane",
    "RouterConfig",
    "SchemaLane",
    "UnknownLaneError",
    "build_router",
    "derive_field_vocabulary",
    "query_cohesion",
]
