"""The ``enumeration`` lane: the paper's rank-based baseline.

Combines the per-position similar-term lists by **similarity alone**
(no closeness, no HMM) through
:class:`~repro.core.enumeration.RankBasedReformulator` — the "Rank-based
reformulation" arm of Section VI.  Candidate lists come from the shared
pipeline (plan cache when enabled, the candidate builder otherwise) and
the suggestions run through the same post-processing as the HMM lane,
so the two lanes differ only in the scoring model — exactly what the
A/B eval harness wants to isolate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.enumeration import RankBasedReformulator
from repro.core.reformulator import Reformulator
from repro.lanes.base import Lane, LaneResult


class EnumerationLane(Lane):
    """Similarity-product top-k enumeration (no cohesion model)."""

    name = "enumeration"
    capabilities = frozenset({"substitution"})

    def __init__(self, pipeline: Reformulator) -> None:
        self.pipeline = pipeline

    def reformulate(
        self,
        query: Sequence[str],
        k: int = 10,
        budget: Optional[float] = None,
        algorithm: str = "astar",
    ) -> LaneResult:
        """Top-k by similarity product (rank-based baseline)."""
        del budget, algorithm  # rank enumeration has a single algorithm
        keywords = list(query)
        states = self._candidate_states(keywords)
        want = k + self.pipeline._slack(keywords)
        raw = RankBasedReformulator(states).topk(want)
        suggestions = tuple(self.pipeline._postprocess(keywords, raw, k))
        provenance: Tuple[Dict[str, Any], ...] = tuple(
            {"lane": self.name, "relaxed": False} for _ in suggestions
        )
        return LaneResult(
            lane=self.name,
            suggestions=suggestions,
            provenance=provenance,
            relaxed=False,
            cohesion=None,  # the baseline has no cohesion notion
            metadata={"algorithm_family": "rank"},
        )

    def _candidate_states(self, keywords: List[str]):
        """Per-position candidate lists, via the shared plan cache."""
        cache = self.pipeline.plan_cache
        if cache is not None:
            return [cache.term_plan(kw).state_list for kw in keywords]
        return self.pipeline.candidates.build(keywords)
