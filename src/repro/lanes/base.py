"""The lane abstraction: one reformulation strategy behind one interface.

A *lane* is a complete reformulation strategy — the paper's HMM decoder,
the rank-based enumeration baseline, Wiese-style query relaxation, or
the schema-aware variant — exposed behind a single call::

    result = lane.reformulate(keywords, k=5, budget=0.05)

Every lane returns a :class:`LaneResult`: the ranked suggestions plus
**per-suggestion provenance** (which lane produced it, whether the query
was relaxed, which terms were dropped or generalized) and lane-level
metadata (the cohesion of the best substitution, schema bindings).  The
:class:`~repro.lanes.router.LaneRouter` selects lanes per request,
records per-lane metrics, and chains a relaxation fallback when the
best substitution is not cohesive.

The ``hmm`` lane is a pure wrapper over
:class:`~repro.core.reformulator.Reformulator` — bit-identical output is
a contract, locked by ``tests/test_lanes.py``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.scoring import ScoredQuery
from repro.errors import ReproError


class UnknownLaneError(ReproError):
    """A request named a lane the router does not serve (HTTP 400)."""


@dataclass(frozen=True)
class LaneResult:
    """What one lane returns for one query.

    ``suggestions[i]`` and ``provenance[i]`` are aligned: the provenance
    dict carries at least ``lane`` and ``relaxed``, plus ``dropped`` /
    ``generalized`` for relaxed suggestions.  ``cohesion`` is the
    minimum raw adjacent-pair closeness along the best substitution's
    path (``None`` when the lane does not measure it); the router
    compares it against the configured threshold to trigger the
    relaxation fallback.  ``requested`` / ``fallback_from`` are stamped
    by the router.
    """

    lane: str
    suggestions: Tuple[ScoredQuery, ...]
    provenance: Tuple[Dict[str, Any], ...]
    relaxed: bool = False
    cohesion: Optional[float] = None
    requested: Optional[str] = None
    fallback_from: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.suggestions) != len(self.provenance):
            raise ReproError(
                "suggestions and provenance must be aligned "
                f"({len(self.suggestions)} vs {len(self.provenance)})"
            )

    def with_routing(
        self, requested: str, fallback_from: Optional[str] = None
    ) -> "LaneResult":
        """Copy with the router's request bookkeeping stamped on."""
        return replace(
            self, requested=requested, fallback_from=fallback_from
        )


class Lane(abc.ABC):
    """One reformulation strategy.

    Subclasses set :attr:`name` (the routing key) and
    :attr:`capabilities` (feature tags: ``substitution``, ``relaxation``,
    ``schema``, ``batch``, ``cohesion``) and implement
    :meth:`reformulate`.
    """

    #: Routing key; must be unique within a router.
    name: str = "abstract"
    #: Feature tags consumers may inspect (e.g. ``"batch"`` marks a lane
    #: with an optimized :meth:`reformulate_batch`).
    capabilities: frozenset = frozenset()

    @abc.abstractmethod
    def reformulate(
        self,
        query: Sequence[str],
        k: int = 10,
        budget: Optional[float] = None,
        algorithm: str = "astar",
    ) -> LaneResult:
        """Top-k suggestions for *query*.

        *budget* is an optional wall-clock allowance in seconds; lanes
        that explore variants (relaxation) stop expanding when it runs
        out.  Lanes that run one decode may ignore it.
        """

    def reformulate_batch(
        self,
        queries: Sequence[Sequence[str]],
        k: int = 10,
        budget: Optional[float] = None,
        algorithm: str = "astar",
        workers: int = 1,
    ) -> List[LaneResult]:
        """Batched variant; the default just loops :meth:`reformulate`.

        Lanes tagged ``"batch"`` override this with a shared-plan fast
        path (the hmm lane delegates to ``reformulate_many``).
        """
        del workers  # the generic loop is sequential
        return [
            self.reformulate(query, k=k, budget=budget, algorithm=algorithm)
            for query in queries
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


def query_cohesion(
    pipeline, keywords: Sequence[str], best: Optional[ScoredQuery]
) -> float:
    """Cohesion of the best substitution: min raw adjacent closeness.

    The HMM always emits *some* top-k — its smoothed transition matrix
    has no true zeroes — so a low-quality answer for an incohesive query
    looks just like a good one.  This measures what smoothing hides: the
    **raw** (unsmoothed) closeness between the chosen terms of adjacent
    positions along the best path.  A pair whose closeness is ~0 means
    no tuple path of bounded length connects the two terms; a position
    holding an unknown (unsubstitutable) term counts as 0 outright.
    Single-keyword queries are trivially cohesive (1.0); no decoded
    suggestion at all is maximally incohesive (0.0).
    """
    if best is None:
        return 0.0
    keywords = list(keywords)
    if len(keywords) < 2:
        return 1.0
    hmm = pipeline.build_hmm(keywords)
    worst: Optional[float] = None
    path = best.state_path
    for i in range(1, len(path)):
        a = hmm.states[i - 1][path[i - 1]]
        b = hmm.states[i][path[i]]
        if a.is_void or b.is_void:
            continue  # deletion carries no adjacency constraint
        if a.node_id is None or b.node_id is None:
            worst = 0.0  # unknown term: no cohesive substitution exists
            continue
        raw = max(0.0, pipeline.closeness.closeness(a.node_id, b.node_id))
        worst = raw if worst is None else min(worst, raw)
    return 1.0 if worst is None else worst


__all__ = [
    "Lane",
    "LaneResult",
    "UnknownLaneError",
    "query_cohesion",
    "ScoredQuery",
]
