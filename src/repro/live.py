"""Live reformulation over a mutable database.

The offline structures (index, TAT graph, walk caches) are derived data:
once the database changes they are stale.  :class:`LiveReformulator`
owns the database-to-pipeline derivation, queues inserts, and rebuilds
lazily on the next query — the simplest correct maintenance policy, and
the right one for corpora updated in batches (nightly crawls, imports).

For per-insert freshness at scale a real deployment would maintain the
graph incrementally; the rebuild policy here is O(corpus) per refresh but
always exact, and the `version` counter lets callers see when a rebuild
happened.

The wrapper is safe under concurrent callers (the serving daemon fans
requests across threads): mutation bookkeeping and the check-then-rebuild
in :meth:`LiveReformulator.pipeline` are serialized by one rebuild lock,
so exactly one thread rebuilds after a mutation while the others wait and
then share the fresh pipeline.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.core.scoring import ScoredQuery
from repro.errors import ReproError
from repro.index.analyzer import Analyzer
from repro.lanes.base import LaneResult
from repro.lanes.router import LaneRouter, RouterConfig, build_router
from repro.serving.result_cache import ResultCache
from repro.storage.database import Database, TupleRef
from repro.storage.table import Row


class LiveReformulator:
    """A reformulation pipeline that follows database mutations.

    Parameters
    ----------
    database:
        The mutable database (inserts go through this wrapper OR directly
        to the database followed by :meth:`invalidate`).
    config:
        Pipeline configuration applied on every rebuild.
    analyzer:
        Analyzer for the rebuilt index.
    relations:
        Optional path to a precomputed term-relation store (v1 file or
        v2 shard directory).  When set, every rebuilt pipeline serves
        similarity/closeness from the store instead of live extractors;
        terms inserted after the store was built simply have no stored
        relations until the offline stage is rerun.
    router_config:
        Lane routing configuration (enabled lanes, default, fallback
        chain).  The default serves every lane with ``hmm`` as default
        and no fallback, which keeps :meth:`reformulate` bit-identical
        to the bare pipeline.  Replaceable per worker via
        :meth:`configure_router` (the server does this post-fork).
    """

    def __init__(
        self,
        database: Database,
        config: Optional[ReformulatorConfig] = None,
        analyzer: Optional[Analyzer] = None,
        relations=None,
        router_config: Optional[RouterConfig] = None,
    ) -> None:
        self.database = database
        self.config = config or ReformulatorConfig()
        self.analyzer = analyzer
        self.relations = relations
        self._router_config = router_config or RouterConfig()
        self._router_config.validate()
        self._router: Optional[LaneRouter] = None
        self._router_version = -1
        self._pipeline: Optional[Reformulator] = None
        self._version = 0
        self._dirty = True
        # Serializes the dirty-check-then-rebuild in pipeline() and the
        # mutation bookkeeping: without it two threads could both see
        # _dirty and rebuild twice (or read a half-updated version).
        # RLock so a locked caller may call pipeline() again.
        self._rebuild_lock = threading.RLock()
        # Relation stores loaded from disk, keyed on path: the store data
        # is keyed on term strings and independent of any one graph, so a
        # rebuild only needs to rebind the store to the fresh graph rather
        # than re-reading (and re-checksumming) the files.
        self._store_cache: Dict[str, "TermRelationStore"] = {}
        self._mutations_since_build = 0
        # Newest delta-layer epoch already folded into self.database.
        # The ingesting process advances it in ingest(); sibling pre-fork
        # workers advance it by replaying layers in sync_ingest().
        self._applied_epoch = 0
        # Query-level result LRU: entries are tagged with the pipeline
        # version, so every rebuild makes the resident set unreachable
        # (and pipeline() sweeps it).  Size 0 disables the layer.
        self.result_cache: Optional[ResultCache] = (
            ResultCache(self.config.result_cache_size)
            if self.config.result_cache_size > 0
            else None
        )
        self._cache_bypasses = 0

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def insert(self, table_name: str, row: Row) -> TupleRef:
        """Insert a row and mark the derived structures stale."""
        ref = self.database.insert(table_name, row)
        with self._rebuild_lock:
            self._dirty = True
            self._mutations_since_build += 1
        return ref

    def insert_many(self, table_name: str, rows: List[Row]) -> int:
        """Insert rows; mark stale when any were inserted."""
        count = self.database.insert_many(table_name, rows)
        if count:
            with self._rebuild_lock:
                self._dirty = True
                self._mutations_since_build += count
        return count

    def invalidate(self) -> None:
        """Mark stale after out-of-band database mutations."""
        with self._rebuild_lock:
            self._dirty = True
            self._mutations_since_build += 1

    def reload_relations(self) -> None:
        """Drop the cached relation store so the next rebuild re-reads it.

        Use after the offline stage rewrote the store files in place —
        the path-keyed cache in :meth:`pipeline` would otherwise keep
        serving the previously loaded contents.
        """
        with self._rebuild_lock:
            self._store_cache.clear()
            self._dirty = True

    # ------------------------------------------------------------------ #
    # delta ingest
    # ------------------------------------------------------------------ #

    @property
    def ingest_epoch(self) -> int:
        """Newest delta-layer epoch folded into this process's database."""
        return self._applied_epoch

    def ingest(self, rows: List[Dict[str, object]], **ingest_options):
        """Fold *rows* into the corpus as one delta layer (incremental).

        Unlike :meth:`insert` + a full offline rerun, this recomputes
        only the terms occurring in *rows* and writes them as a delta
        layer beside the configured relation store (see
        :class:`repro.offline.DeltaIngestor`); the next query rebuilds
        the serving graph and picks the layer up through the layered
        store.  Keyword options are forwarded to the ingestor
        (``n_similar``, ``closeness_top``, ``batch_size``,
        ``walk_method``).  Returns the run's
        :class:`~repro.offline.DeltaIngestStats`.
        """
        if self.relations is None:
            raise ReproError(
                "delta ingest needs a relation store (relations=... path)"
            )
        from repro.offline import DeltaIngestor

        with self._rebuild_lock:
            ingestor = DeltaIngestor(
                self.database, self.relations, **ingest_options
            )
            stats = ingestor.ingest(rows)
            self._applied_epoch = stats.epoch
            self._store_cache.clear()
            self._dirty = True
            self._mutations_since_build += stats.n_rows
        if obs.is_enabled():
            obs.gauge(
                "repro_live_ingest_epoch",
                "Delta-layer epoch applied to this process",
            ).set(self._applied_epoch)
        return stats

    def sync_ingest(self) -> int:
        """Catch up with delta layers written by another process.

        The relation store's layer chain doubles as the ingest journal:
        each layer persists the rows it folded in.  A process whose
        database copy is behind the chain tip (a sibling pre-fork worker,
        or a worker respawned from the master's pre-ingest image) replays
        exactly the pending layers' rows into its own database and marks
        the pipeline stale so the next query rebuilds against the merged
        corpus plus the layered store.  Returns the number of layers
        applied (0 when already at the tip — one small JSON read, cheap
        enough to poll on the metrics-flusher tick).
        """
        if self.relations is None:
            return 0
        from repro.storage import layers as layer_io

        if layer_io.latest_epoch(self.relations) <= self._applied_epoch:
            return 0
        applied = 0
        with self._rebuild_lock:
            pending = layer_io.pending_rows(
                self.relations, self._applied_epoch
            )
            for epoch, rows in pending:
                for item in rows:
                    self.database.insert(item["table"], dict(item["row"]))
                    self._mutations_since_build += 1
                self._applied_epoch = epoch
                applied += 1
            if applied:
                self._store_cache.clear()
                self._dirty = True
        if applied and obs.is_enabled():
            obs.counter(
                "repro_live_ingest_syncs_total",
                "Delta layers replayed from the chain by this process",
            ).inc(applied)
            obs.gauge(
                "repro_live_ingest_epoch",
                "Delta-layer epoch applied to this process",
            ).set(self._applied_epoch)
        return applied

    # ------------------------------------------------------------------ #
    # derived pipeline
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Incremented on every rebuild (0 before the first build)."""
        return self._version

    @property
    def is_stale(self) -> bool:
        """True when the pipeline lags the database."""
        return self._dirty

    def pipeline(self) -> Reformulator:
        """The current pipeline, rebuilt if the database changed.

        Thread-safe: the whole check-then-rebuild runs under the rebuild
        lock, so concurrent callers racing a mutation get exactly one
        rebuild (one version bump) and then share the same pipeline.
        """
        with self._rebuild_lock:
            return self._pipeline_locked()

    def _pipeline_locked(self) -> Reformulator:
        if self._dirty or self._pipeline is None:
            start = time.perf_counter()
            with obs.span(
                "live.rebuild",
                version=self._version + 1,
                mutations=self._mutations_since_build,
            ):
                if self.relations is None:
                    self._pipeline = Reformulator.from_database(
                        self.database, self.config, analyzer=self.analyzer
                    )
                else:
                    from repro.graph.tat import TATGraph
                    from repro.index.inverted import InvertedIndex
                    from repro.offline import TermRelationStore

                    index = InvertedIndex(
                        self.database, analyzer=self.analyzer
                    ).build()
                    graph = TATGraph(self.database, index)
                    key = str(self.relations)
                    store = self._store_cache.get(key)
                    if store is None:
                        store = TermRelationStore.load(self.relations, graph)
                        self._store_cache[key] = store
                    else:
                        # store contents are term-keyed and graph-agnostic;
                        # only the node-id resolver needs the fresh graph
                        store.graph = graph
                    self._pipeline = Reformulator(
                        graph, self.config, similarity=store, closeness=store
                    )
            self._version += 1
            self._dirty = False
            self._mutations_since_build = 0
            if self.result_cache is not None:
                self.result_cache.evict_stale(self._version)
            if obs.is_enabled():
                registry = obs.registry()
                registry.counter(
                    "repro_live_rebuilds_total",
                    "LiveReformulator pipeline rebuilds",
                ).inc()
                registry.histogram(
                    "repro_live_rebuild_seconds",
                    "Wall-clock seconds per pipeline rebuild",
                ).observe(time.perf_counter() - start)
        return self._pipeline

    # ------------------------------------------------------------------ #
    # lane routing
    # ------------------------------------------------------------------ #

    def configure_router(self, router_config: RouterConfig) -> None:
        """Replace the routing configuration (next query rebuilds the router).

        Cheap — validates the config and drops the current router; the
        pipeline itself is untouched.  The server calls this per worker
        after the fork so every worker routes with the served config.
        """
        router_config.validate()
        with self._rebuild_lock:
            self._router_config = router_config
            self._router = None
            self._router_version = -1

    @property
    def router_config(self) -> RouterConfig:
        """The active routing configuration."""
        return self._router_config

    def lane_names(self) -> tuple:
        """Enabled lane names, from config alone (no pipeline build)."""
        return tuple(self._router_config.lanes)

    def router(self) -> LaneRouter:
        """The lane router over the current pipeline (rebuilt with it).

        Lanes hold a reference to the pipeline they wrap, so a pipeline
        rebuild (version bump) invalidates the router too; both are
        refreshed under the same lock.
        """
        with self._rebuild_lock:
            self._pipeline_locked()
            if self._router is None or self._router_version != self._version:
                self._router = build_router(self._pipeline, self._router_config)
                self._router_version = self._version
            return self._router

    # ------------------------------------------------------------------ #
    # delegation
    # ------------------------------------------------------------------ #

    @property
    def cache_bypasses(self) -> int:
        """Queries that arrived while stale and so bypassed the result LRU."""
        return self._cache_bypasses

    def reformulate(
        self, keywords: Sequence[str], k: int = 10, algorithm: str = "astar"
    ) -> List[ScoredQuery]:
        """Top-k suggestions over the (possibly rebuilt) pipeline.

        Thin wrapper over :meth:`reformulate_lane` pinned to the ``hmm``
        lane: with the default router config (no fallback chain) the
        suggestions are bit-identical to calling the pipeline directly.
        """
        result = self.reformulate_lane(
            keywords, k=k, lane="hmm", algorithm=algorithm
        )
        return list(result.suggestions)

    def reformulate_lane(
        self,
        keywords: Sequence[str],
        k: int = 10,
        lane: Optional[str] = None,
        algorithm: str = "astar",
        budget: Optional[float] = None,
    ) -> LaneResult:
        """Top-k suggestions through one lane of the router.

        Served from the version-aware result LRU when an identical
        ``(keywords, k, algorithm, lane)`` request already ran against
        the current pipeline — the lane component is the router's cache
        tag, so a lane under an active fallback chain never shares
        entries with the same lane running chain-free.  A query arriving
        while :attr:`is_stale` cannot hit — the resident entries predate
        the pending mutations — so it bypasses the lookup (counted in
        ``repro_live_result_cache_bypass_total``), triggers the rebuild,
        and repopulates the cache at the new version.
        """
        requested = self._router_config.resolve(lane)  # 400s before any build
        if obs.is_enabled():
            obs.registry().gauge(
                "repro_live_staleness_at_query",
                "Mutations pending against the pipeline when a query arrived",
            ).set(self._mutations_since_build)
        stale = self.is_stale
        if stale:
            self._cache_bypasses += 1
            obs.annotate_trace("result_cache", "bypass")
            obs.counter(
                "repro_live_result_cache_bypass_total",
                "Queries that bypassed the result cache due to staleness",
            ).inc()
        key = ResultCache.key(
            keywords, k, algorithm, lane=self._router_config.cache_tag(requested)
        )
        router = self.router()  # may rebuild and bump the version
        if self.result_cache is not None and not stale:
            cached = self.result_cache.get_result(key, self._version)
            if cached is not None:
                obs.annotate_trace("result_cache", "hit")
                obs.annotate_trace("lane", cached.lane)
                return cached
            obs.annotate_trace("result_cache", "miss")
        result = router.route(
            keywords, k=k, lane=requested, budget=budget, algorithm=algorithm
        )
        if self.result_cache is not None:
            self.result_cache.put_result(key, self._version, result)
        return result

    def reformulate_many(
        self,
        queries: Sequence[Sequence[str]],
        k: int = 10,
        algorithm: str = "astar",
        workers: int = 1,
    ) -> List[List[ScoredQuery]]:
        """Batched suggestions, pinned to the ``hmm`` lane (see
        :meth:`reformulate`)."""
        results = self.reformulate_many_lane(
            queries, k=k, lane="hmm", algorithm=algorithm, workers=workers
        )
        return [list(result.suggestions) for result in results]

    def reformulate_many_lane(
        self,
        queries: Sequence[Sequence[str]],
        k: int = 10,
        lane: Optional[str] = None,
        algorithm: str = "astar",
        budget: Optional[float] = None,
        workers: int = 1,
    ) -> List[LaneResult]:
        """Batched :meth:`reformulate_lane` over one lane.

        Each batch entry goes through the same version-aware result LRU:
        resident entries are served from memory, only the misses reach
        the lane's batched path, and every decoded answer is cached for
        both future batches and single queries.  Staleness is handled
        like the single-query path — a batch arriving while
        :attr:`is_stale` bypasses the lookup entirely, counted once per
        entry in ``repro_live_result_cache_bypass_total``.
        """
        requested = self._router_config.resolve(lane)
        queries = [list(query) for query in queries]
        stale = self.is_stale
        if stale and queries:
            self._cache_bypasses += len(queries)
            obs.counter(
                "repro_live_result_cache_bypass_total",
                "Queries that bypassed the result cache due to staleness",
            ).inc(len(queries))
        router = self.router()  # may rebuild and bump the version
        if self.result_cache is None:
            return router.route_many(
                queries, k=k, lane=requested, budget=budget,
                algorithm=algorithm, workers=workers,
            )
        version = self._version
        tag = self._router_config.cache_tag(requested)
        keys = [
            ResultCache.key(query, k, algorithm, lane=tag) for query in queries
        ]
        results: List[Optional[LaneResult]] = [None] * len(queries)
        misses: List[int] = []
        for i, key in enumerate(keys):
            cached = (
                None if stale else self.result_cache.get_result(key, version)
            )
            if cached is None:
                misses.append(i)
            else:
                results[i] = cached
        obs.annotate_trace(
            "result_cache",
            "bypass" if stale else f"{len(queries) - len(misses)}"
            f"/{len(queries)} hits",
        )
        if misses:
            solved = router.route_many(
                [queries[i] for i in misses],
                k=k, lane=requested, budget=budget,
                algorithm=algorithm, workers=workers,
            )
            for i, result in zip(misses, solved):
                self.result_cache.put_result(keys[i], version, result)
                results[i] = result
        return list(results)

    def similar_terms(self, text: str, top_n: int = 10):
        """Similar terms over the (possibly rebuilt) pipeline."""
        return self.pipeline().similarity.similar_terms(text, top_n)

    def best(self, keywords: Sequence[str]) -> ScoredQuery:
        """Single best suggestion (plain Viterbi)."""
        return self.pipeline().best(keywords)
