"""Latent topic model for the synthetic DBLP corpus.

The paper's motivating phenomena are structural: quasi-synonyms like
"probabilistic"/"uncertain" almost never co-occur in one paper title, yet
share conferences and authors; researchers who never co-author still share
venues and vocabulary.  This module encodes exactly that structure as
ground truth:

* each :class:`Topic` owns a title vocabulary;
* the vocabulary is partitioned into **synonym clusters** — words that are
  interchangeable descriptions of one concept.  The generator draws at most
  one word per cluster into any single title, so cluster-mates co-occur
  with authors/conferences but (almost) never with each other;
* topics declare **related topics**, which share conferences.

The latent assignments double as the relevance ground truth for the
simulated judges of Figure 5 (see :mod:`repro.eval.judge`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class Topic:
    """One research topic: id, display name, vocabulary, relations."""

    topic_id: int
    name: str
    #: Synonym clusters: the union of all clusters is the vocabulary.
    #: Singleton clusters are ordinary topical words.
    clusters: Tuple[Tuple[str, ...], ...]
    related: Tuple[str, ...] = ()

    @property
    def vocabulary(self) -> Tuple[str, ...]:
        """All words of the topic (clusters flattened)."""
        return tuple(w for cluster in self.clusters for w in cluster)


def _t(topic_id: int, name: str, clusters: Sequence[Sequence[str]],
       related: Sequence[str] = ()) -> Topic:
    return Topic(
        topic_id=topic_id,
        name=name,
        clusters=tuple(tuple(c) for c in clusters),
        related=tuple(related),
    )


#: The default topic universe: 12 database/data-mining/IR topics mirroring
#: the DBLP areas the paper draws its examples from ("xml", "probabilistic",
#: "association rule", "spatio-temporal", ...).
DEFAULT_TOPICS: Tuple[Topic, ...] = (
    _t(0, "xml data management", [
        ("xml", "semistructured", "tree"),
        ("twig",), ("xpath", "xquery"), ("document",), ("schema",),
        ("validation",), ("native",), ("publishing",), ("path",),
        ("labeling",), ("html",),
    ], related=["keyword search", "query processing"]),
    _t(1, "probabilistic data", [
        ("probabilistic", "uncertain", "uncertainty"),
        ("lineage",), ("possible", "worlds"), ("confidence",),
        ("distribution",), ("sampling",), ("monte", "carlo"),
        ("tuple",), ("imprecise",), ("generation",),
    ], related=["query processing", "data mining"]),
    _t(2, "data mining", [
        ("mining", "discovery"),
        ("association", "correlation"), ("rule",),
        ("frequent", "itemset"), ("sequential", "episode"),
        ("pattern",), ("transaction",), ("support",), ("apriori",),
        ("lattice",),
    ], related=["clustering", "classification"]),
    _t(3, "clustering", [
        ("clustering", "grouping", "partitioning"),
        ("density",), ("hierarchical",), ("centroid", "medoid"),
        ("outlier", "anomaly"), ("subspace",), ("similarity",),
        ("distance",), ("dimension",),
    ], related=["data mining", "classification"]),
    _t(4, "classification", [
        ("classification", "categorization"),
        ("bayesian",), ("decision",), ("ensemble", "boosting", "bagging"),
        ("feature", "attribute"), ("label",), ("training",),
        ("margin", "kernel"), ("accuracy",),
    ], related=["data mining", "information retrieval"]),
    _t(5, "keyword search", [
        ("keyword", "term"),
        ("search", "retrieval"), ("ranking", "scoring"),
        ("relational",), ("steiner",), ("proximity",), ("answer",),
        ("effectiveness",), ("suggestion", "reformulation"),
    ], related=["xml data management", "information retrieval"]),
    _t(6, "query processing", [
        ("query", "queries"),
        ("optimization", "planning"), ("join",), ("index", "indexing"),
        ("selectivity", "cardinality"), ("cost",), ("execution",),
        ("aggregation",), ("view", "materialized"),
    ], related=["probabilistic data", "stream processing"]),
    _t(7, "spatio-temporal data", [
        ("spatial", "spatio"),
        ("temporal", "time"), ("moving", "mobile"), ("object",),
        ("trajectory", "movement"), ("nearest", "neighbor"),
        ("location",), ("road", "network"), ("knn",),
    ], related=["query processing", "stream processing"]),
    _t(8, "stream processing", [
        ("stream", "streaming", "continuous"),
        ("window", "sliding"), ("sensor",), ("realtime",),
        ("sketch", "synopsis"), ("load", "shedding"), ("event",),
        ("monitoring",), ("approximate",),
    ], related=["query processing", "spatio-temporal data"]),
    _t(9, "information retrieval", [
        ("information", "text"),
        ("web",), ("relevance",), ("feedback",), ("language", "topic"),
        ("model", "modeling"), ("corpus", "collection"),
        ("precision", "recall"), ("expansion",),
    ], related=["keyword search", "classification"]),
    _t(10, "graph data management", [
        ("graph", "network"),
        ("reachability",), ("subgraph", "isomorphism"),
        ("shortest",), ("random", "walk"), ("pagerank", "authority"),
        ("social",), ("community",), ("link",),
    ], related=["keyword search", "data mining"]),
    _t(11, "transaction processing", [
        ("transaction", "transactional"),
        ("concurrency",), ("locking", "latching"), ("recovery",),
        ("logging", "journaling"), ("isolation",), ("serializability",),
        ("commit",), ("durability",),
    ], related=["query processing", "stream processing"]),
)


#: Topic-free filler words that real paper titles are full of.  They
#: co-occur with every topic's vocabulary, so a frequent-co-occurrence
#: similarity happily suggests them — while they carry no latent topic and
#: are therefore judged irrelevant.  The contextual walk suppresses them
#: through the idf edge weighting.  This is the realistic "noise" that
#: separates the two similarity measures in Figure 5.
GENERIC_WORDS: Tuple[str, ...] = (
    "efficient", "effective", "novel", "scalable", "adaptive", "improved",
    "framework", "approach", "analysis", "evaluation", "system", "method",
    "algorithm", "technique", "study", "management", "processing", "large",
)


class TopicModel:
    """Lookup structure over a topic universe.

    Provides the ground-truth queries the simulated judge needs: which
    topics a word belongs to, whether two words are synonyms (same
    cluster), and whether two topics are related.
    """

    def __init__(self, topics: Sequence[Topic] = DEFAULT_TOPICS) -> None:
        self.topics: Tuple[Topic, ...] = tuple(topics)
        self._by_name: Dict[str, Topic] = {t.name: t for t in self.topics}
        self._word_topics: Dict[str, Set[int]] = {}
        self._word_cluster: Dict[str, Set[Tuple[int, int]]] = {}
        for topic in self.topics:
            for c_idx, cluster in enumerate(topic.clusters):
                for word in cluster:
                    self._word_topics.setdefault(word, set()).add(topic.topic_id)
                    self._word_cluster.setdefault(word, set()).add(
                        (topic.topic_id, c_idx)
                    )

    def __len__(self) -> int:
        return len(self.topics)

    def topic(self, topic_id: int) -> Topic:
        """Topic by id."""
        return self.topics[topic_id]

    def by_name(self, name: str) -> Topic:
        """Topic by display name."""
        return self._by_name[name]

    @property
    def vocabulary(self) -> List[str]:
        """Sorted distinct words across all topics."""
        return sorted(self._word_topics)

    def topics_of_word(self, word: str) -> Set[int]:
        """Latent topic ids a word belongs to (empty if out of vocabulary)."""
        return self._word_topics.get(word, set())

    def are_synonyms(self, a: str, b: str) -> bool:
        """True iff *a* and *b* share a synonym cluster in some topic."""
        if a == b:
            return True
        return bool(
            self._word_cluster.get(a, set()) & self._word_cluster.get(b, set())
        )

    def share_topic(self, a: str, b: str) -> bool:
        """True iff the two words belong to at least one common topic."""
        return bool(self.topics_of_word(a) & self.topics_of_word(b))

    def related_topic_ids(self, topic_id: int) -> Set[int]:
        """Ids of topics declared related to *topic_id* (plus itself)."""
        topic = self.topics[topic_id]
        related = {topic_id}
        for name in topic.related:
            other = self._by_name.get(name)
            if other is not None:
                related.add(other.topic_id)
        return related

    def topics_related(self, a: int, b: int) -> bool:
        """True iff topics a and b are identical or declared related."""
        return b in self.related_topic_ids(a) or a in self.related_topic_ids(b)
