"""Query workload generators mirroring the paper's evaluation sets.

Three workloads appear in Section VI:

* **mixed queries** — "10 different queries ... with various formats
  consisting of topical words, author or conference name" (Figure 5);
* **length-varied queries** — "randomly sample 400 queries, varying query
  length from 1 to 8 ... chosen from the following fields: author name,
  paper title and conference name" (Figures 7-10);
* **best-paper queries** — "keywords extracted from the title of 19 SIGMOD
  Best Papers" (Table III); we extract keywords from 19 sampled paper
  titles of the synthetic corpus.

Queries are **anchored**: like the paper's examples ("knn uncertain",
"Christian S. Jensen spatio-temporal"), a query's keywords belong
together.  Each query picks an anchor — an author, a conference, or a
paper — and draws its remaining keywords from that anchor's *observable*
neighborhood (the titles the author wrote / the venue published).  No
latent ground truth is consulted; an informed user could issue exactly
these queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.dblp_synth import SynthesizedCorpus
from repro.errors import ReproError
from repro.index.analyzer import Analyzer

Query = Tuple[str, ...]


@dataclass(frozen=True)
class WorkloadQuery:
    """One workload query plus the fields its keywords came from."""

    keywords: Query
    fields: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.keywords)


class WorkloadGenerator:
    """Samples anchored queries from a corpus, deterministic per seed."""

    def __init__(
        self,
        corpus: SynthesizedCorpus,
        seed: int = 42,
        analyzer: Optional[Analyzer] = None,
    ) -> None:
        self.corpus = corpus
        self.seed = seed
        self.analyzer = analyzer or Analyzer()
        db = corpus.database

        self._titles: List[str] = [
            str(row["title"]) for row in db.table("papers").scan() if row["title"]
        ]
        self._title_words = sorted(
            {
                word
                for title in self._titles
                for word in self.analyzer.tokenize(title)
            }
        )
        if not self._title_words:
            raise ReproError("corpus has no title vocabulary")

        # Observable neighborhoods: author -> words of their papers,
        # conference -> words of its papers.
        paper_words: Dict[object, List[str]] = {}
        conf_words: Dict[object, List[str]] = {}
        for row in db.table("papers").scan():
            words = self.analyzer.tokenize(str(row["title"] or ""))
            paper_words[row["pid"]] = words
            if row["cid"] is not None:
                conf_words.setdefault(row["cid"], []).extend(words)

        author_words: Dict[object, List[str]] = {}
        for row in db.table("writes").scan():
            words = paper_words.get(row["pid"], [])
            author_words.setdefault(row["aid"], []).extend(words)

        self._author_pool: List[Tuple[str, List[str]]] = []
        for row in db.table("authors").scan():
            words = sorted(set(author_words.get(row["aid"], [])))
            if words:
                self._author_pool.append((str(row["name"]), words))

        self._conf_pool: List[Tuple[str, List[str]]] = []
        for row in db.table("conferences").scan():
            words = sorted(set(conf_words.get(row["cid"], [])))
            if words:
                self._conf_pool.append((str(row["name"]), words))

        self._paper_pool: List[Tuple[List[str], List[str]]] = []
        for row in db.table("papers").scan():
            own = sorted(set(paper_words.get(row["pid"], [])))
            venue = sorted(
                set(conf_words.get(row["cid"], []))
            ) if row["cid"] is not None else own
            if own:
                self._paper_pool.append((own, venue or own))

        if not self._author_pool or not self._paper_pool:
            raise ReproError("corpus too small to build workloads")

    # ------------------------------------------------------------------ #
    # Figure 5 workload
    # ------------------------------------------------------------------ #

    def mixed_queries(self, count: int = 10) -> List[WorkloadQuery]:
        """Mixed-format anchored queries: topical words plus author or
        conference names, rotating through the formats the paper lists."""
        rng = random.Random(self.seed * 7 + 1)
        formats = (
            ("title", 2),        # "knn uncertain"
            ("author", 1),       # "christian s. jensen spatio-temporal"
            ("title", 3),
            ("conference", 1),
            ("author", 2),
        )
        queries: List[WorkloadQuery] = []
        for i in range(count):
            anchor_kind, n_words = formats[i % len(formats)]
            queries.append(self._anchored_query(anchor_kind, n_words, rng))
        return queries

    # ------------------------------------------------------------------ #
    # Figures 7-10 workload
    # ------------------------------------------------------------------ #

    def length_varied_queries(
        self,
        count: int = 400,
        min_len: int = 1,
        max_len: int = 8,
    ) -> List[WorkloadQuery]:
        """*count* queries spread evenly over lengths min_len..max_len."""
        if not 1 <= min_len <= max_len:
            raise ReproError("invalid length bounds")
        rng = random.Random(self.seed * 7 + 2)
        lengths = list(range(min_len, max_len + 1))
        queries: List[WorkloadQuery] = []
        for i in range(count):
            length = lengths[i % len(lengths)]
            queries.append(self._random_query(length, rng))
        return queries

    def queries_of_length(
        self, length: int, count: int
    ) -> List[WorkloadQuery]:
        """*count* queries all of the given length."""
        rng = random.Random(self.seed * 7 + 3 + length)
        return [self._random_query(length, rng) for _ in range(count)]

    # ------------------------------------------------------------------ #
    # Table III workload
    # ------------------------------------------------------------------ #

    def best_paper_queries(
        self, count: int = 19, keywords_per_query: int = 3
    ) -> List[WorkloadQuery]:
        """Queries built from the distinctive keywords of sampled titles."""
        rng = random.Random(self.seed * 7 + 4)
        if count > len(self._titles):
            raise ReproError(
                f"corpus has only {len(self._titles)} papers, need {count}"
            )
        chosen = rng.sample(self._titles, count)
        queries: List[WorkloadQuery] = []
        for title in chosen:
            words = self.analyzer.tokenize(title)
            uniq: List[str] = []
            for word in words:
                if word not in uniq:
                    uniq.append(word)
            take = min(keywords_per_query, len(uniq))
            keywords = tuple(rng.sample(uniq, take)) if take else ("data",)
            queries.append(WorkloadQuery(keywords, ("title",) * len(keywords)))
        return queries

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _anchored_query(
        self, anchor_kind: str, n_words: int, rng: random.Random
    ) -> WorkloadQuery:
        """One query around an author/conference/title anchor."""
        fields: List[str] = []
        keywords: List[str] = []
        if anchor_kind == "author":
            name, pool = rng.choice(self._author_pool)
            fields.append("author")
            keywords.append(name)
        elif anchor_kind == "conference":
            name, pool = rng.choice(self._conf_pool)
            fields.append("conference")
            keywords.append(name)
        elif anchor_kind == "title":
            own, venue = rng.choice(self._paper_pool)
            word = rng.choice(own)
            fields.append("title")
            keywords.append(word)
            pool = [w for w in own if w != word] or venue
        else:
            raise ReproError(f"unknown anchor kind {anchor_kind!r}")

        candidates = [w for w in pool if w not in keywords]
        rng.shuffle(candidates)
        for word in candidates[:n_words]:
            fields.append("title")
            keywords.append(word)
        # Pad from the global vocabulary only if the anchor was too sparse.
        while len(keywords) < 1 + n_words and len(keywords) < 1 + len(pool):
            word = rng.choice(self._title_words)
            if word not in keywords:
                fields.append("title")
                keywords.append(word)
        return WorkloadQuery(tuple(keywords), tuple(fields))

    def _random_query(self, length: int, rng: random.Random) -> WorkloadQuery:
        """A length-*length* anchored query for the efficiency workloads."""
        anchor_kind = rng.choices(
            ("title", "author", "conference"), weights=(6, 2, 1)
        )[0]
        query = self._anchored_query(anchor_kind, length - 1, rng)
        if len(query.keywords) >= length:
            return WorkloadQuery(
                query.keywords[:length], query.fields[:length]
            )
        # Sparse anchor: pad with global title words (still deduped).
        keywords = list(query.keywords)
        fields = list(query.fields)
        attempts = 0
        while len(keywords) < length and attempts < length * 20:
            attempts += 1
            word = rng.choice(self._title_words)
            if word not in keywords:
                keywords.append(word)
                fields.append("title")
        return WorkloadQuery(tuple(keywords), tuple(fields))
