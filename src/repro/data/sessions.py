"""Simulated interaction sessions over the reformulation system.

The paper's future work asks for "the collection of considerable query
logs [and] user interaction and feedback analysis".  We have no users,
so this module synthesizes the log: a simulated searcher issues workload
queries, inspects the top suggestions, and accepts/rejects them with
probabilities conditioned on their (ground-truth) relevance — a standard
click-model-style simulation.

The produced :class:`SessionLog` feeds the
:class:`~repro.extensions.feedback.FeedbackAdaptor`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.reformulator import Reformulator
from repro.core.scoring import ScoredQuery
from repro.data.workloads import WorkloadQuery
from repro.errors import ReproError
from repro.eval.judge import JudgePanel


@dataclass(frozen=True)
class Interaction:
    """One inspected suggestion within a session."""

    original: Tuple[str, ...]
    suggestion: ScoredQuery
    relevant: bool   # ground-truth panel verdict
    accepted: bool   # the simulated user's action


@dataclass
class SessionLog:
    """All interactions of one simulation run."""

    interactions: List[Interaction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.interactions)

    @property
    def accepted(self) -> List[Interaction]:
        """Interactions the simulated user accepted."""
        return [i for i in self.interactions if i.accepted]

    @property
    def acceptance_rate(self) -> float:
        """Accepted fraction over all interactions."""
        if not self.interactions:
            return 0.0
        return len(self.accepted) / len(self.interactions)


class SessionSimulator:
    """Click-model searcher over a reformulation pipeline.

    Parameters
    ----------
    reformulator:
        The pipeline producing suggestions.
    judges:
        Ground-truth relevance panel.
    accept_if_relevant:
        Probability of accepting a relevant suggestion the user inspects.
    accept_if_irrelevant:
        Probability of (mistakenly) accepting an irrelevant one.
    inspect_top:
        How many suggestions per query the user looks at.
    seed:
        Simulation seed (deterministic log for a fixed seed).
    """

    def __init__(
        self,
        reformulator: Reformulator,
        judges: JudgePanel,
        accept_if_relevant: float = 0.6,
        accept_if_irrelevant: float = 0.05,
        inspect_top: int = 5,
        seed: int = 99,
    ) -> None:
        for p in (accept_if_relevant, accept_if_irrelevant):
            if not 0.0 <= p <= 1.0:
                raise ReproError("acceptance probabilities must be in [0,1]")
        if inspect_top < 1:
            raise ReproError("inspect_top must be >= 1")
        self.reformulator = reformulator
        self.judges = judges
        self.accept_if_relevant = accept_if_relevant
        self.accept_if_irrelevant = accept_if_irrelevant
        self.inspect_top = inspect_top
        self.seed = seed

    def run(self, queries: Sequence[WorkloadQuery]) -> SessionLog:
        """Simulate one session per workload query."""
        rng = random.Random(self.seed)
        log = SessionLog()
        for wq in queries:
            keywords = list(wq.keywords)
            suggestions = self.reformulator.reformulate(
                keywords, k=self.inspect_top
            )
            for suggestion in suggestions:
                relevant = self.judges.is_relevant(keywords, suggestion)
                threshold = (
                    self.accept_if_relevant
                    if relevant
                    else self.accept_if_irrelevant
                )
                accepted = rng.random() < threshold
                log.interactions.append(Interaction(
                    original=tuple(keywords),
                    suggestion=suggestion,
                    relevant=relevant,
                    accepted=accepted,
                ))
        return log
