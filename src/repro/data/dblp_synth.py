"""Deterministic synthetic DBLP-style corpus generator.

This is the substitution for the paper's real DBLP dump (700k authors,
1.3M papers).  The generator reproduces the *structural semantics* the
paper exploits, at configurable laptop scale:

* the DBLP schema of Figure 1: ``conferences``, ``authors``, ``papers``
  (with FK to conference) and the ``writes`` relation;
* quasi-synonyms (one synonym-cluster word per title) that co-occur with
  the same venues/authors but not with each other;
* topic-coherent venues and authors, with repeat collaborations, so that
  non-collaborating experts of one area connect through conferences and
  shared title terms — the "Jiawei Han ↔ Christos Faloutsos" effect;
* related topics sharing venues, producing the "related items" use case.

Everything is driven by one integer seed; identical seeds give identical
databases bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.data.names import author_names, conference_names
from repro.data.topics import DEFAULT_TOPICS, GENERIC_WORDS, Topic, TopicModel
from repro.errors import ReproError
from repro.storage.database import Database
from repro.storage.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)


@dataclass(frozen=True)
class SynthConfig:
    """Size and shape knobs of the synthetic corpus."""

    n_authors: int = 300
    n_papers: int = 1200
    n_conferences: int = 24
    seed: int = 7
    #: authors per paper: 1..max_authors, geometric-ish
    max_authors_per_paper: int = 3
    #: title length in *clusters* (words) sampled from the paper's topic
    min_title_words: int = 4
    max_title_words: int = 7
    #: probability that a title borrows one word from a related topic
    related_word_prob: float = 0.15
    #: expected number of topic-free generic words per title (they make
    #: frequent co-occurrence fallible, as in real titles)
    generic_words_per_title: float = 1.2
    #: probability an author writes a paper in their secondary topic
    secondary_topic_prob: float = 0.25
    #: probability of reusing an existing collaborator pair
    repeat_collab_prob: float = 0.6
    year_range: Tuple[int, int] = (1994, 2011)

    def validate(self) -> None:
        """Raise on non-positive sizes or invalid bounds."""
        if self.n_authors < 1 or self.n_papers < 1 or self.n_conferences < 1:
            raise ReproError("corpus sizes must be positive")
        if self.max_authors_per_paper < 1:
            raise ReproError("max_authors_per_paper must be >= 1")
        if not 1 <= self.min_title_words <= self.max_title_words:
            raise ReproError("invalid title word bounds")


@dataclass
class GroundTruth:
    """Latent assignments behind the generated corpus.

    Used by the simulated relevance judges (Figure 5) and by tests that
    check the random walk recovers latent structure.
    """

    topic_model: TopicModel
    author_topics: Dict[str, Set[int]] = field(default_factory=dict)
    conference_topics: Dict[str, Set[int]] = field(default_factory=dict)
    paper_topic: Dict[int, int] = field(default_factory=dict)

    def topics_of_term(self, text: str) -> Set[int]:
        """Latent topics of any term: title word, author or venue name."""
        topics = self.topic_model.topics_of_word(text)
        if topics:
            return set(topics)
        if text in self.author_topics:
            return set(self.author_topics[text])
        if text in self.conference_topics:
            return set(self.conference_topics[text])
        return set()

    def terms_relevant(self, a: str, b: str) -> bool:
        """Ground-truth relevance between two terms: shared or related topic."""
        if a == b:
            return True
        topics_a = self.topics_of_term(a)
        topics_b = self.topics_of_term(b)
        if not topics_a or not topics_b:
            return False
        if topics_a & topics_b:
            return True
        return any(
            self.topic_model.topics_related(ta, tb)
            for ta in topics_a
            for tb in topics_b
        )


@dataclass
class SynthesizedCorpus:
    """The generated database plus its latent ground truth."""

    database: Database
    ground_truth: GroundTruth
    config: SynthConfig

    @property
    def topic_model(self) -> TopicModel:
        """The latent topic universe behind the corpus."""
        return self.ground_truth.topic_model

    @property
    def field_vocabulary(self) -> Dict[str, Tuple[str, str]]:
        """Schema-referencing keywords for the schema lane."""
        return dblp_field_vocabulary()


def dblp_field_vocabulary() -> Dict[str, Tuple[str, str]]:
    """Keywords users say when they mean a schema field, not a value.

    The schema lane (:mod:`repro.lanes.schema`) consumes this to bind
    "author jensen"-style queries: each key, when it appears as a query
    keyword, constrains the *next* keyword's candidates to the mapped
    ``(table, column)``.  Declared by the corpus rather than derived so
    natural synonyms ("venue", "writer") resolve too.
    """
    return {
        "author": ("authors", "name"),
        "authors": ("authors", "name"),
        "writer": ("authors", "name"),
        "conference": ("conferences", "name"),
        "conferences": ("conferences", "name"),
        "venue": ("conferences", "name"),
        "paper": ("papers", "title"),
        "papers": ("papers", "title"),
        "title": ("papers", "title"),
    }


def dblp_schema() -> DatabaseSchema:
    """The Figure 1 schema: conferences, authors, papers, writes."""
    schema = DatabaseSchema()
    schema.add_table(TableSchema(
        "conferences",
        [Column("cid", "int", nullable=False), Column("name", "text")],
        primary_key="cid",
        text_fields=["name"],
        atomic_fields=["name"],
    ))
    schema.add_table(TableSchema(
        "authors",
        [Column("aid", "int", nullable=False), Column("name", "text")],
        primary_key="aid",
        text_fields=["name"],
        atomic_fields=["name"],
    ))
    schema.add_table(TableSchema(
        "papers",
        [
            Column("pid", "int", nullable=False),
            Column("title", "text"),
            Column("cid", "int"),
            Column("year", "int"),
        ],
        primary_key="pid",
        text_fields=["title"],
    ))
    schema.add_table(TableSchema(
        "writes",
        [
            Column("wid", "int", nullable=False),
            Column("aid", "int"),
            Column("pid", "int"),
        ],
        primary_key="wid",
        text_fields=[],
    ))
    schema.add_foreign_key(ForeignKey("papers", "cid", "conferences", "cid"))
    schema.add_foreign_key(ForeignKey("writes", "aid", "authors", "aid"))
    schema.add_foreign_key(ForeignKey("writes", "pid", "papers", "pid"))
    return schema


def synthesize_dblp(
    config: Optional[SynthConfig] = None,
    topics: Sequence[Topic] = DEFAULT_TOPICS,
) -> SynthesizedCorpus:
    """Generate a DBLP-like corpus from *config* (deterministic in seed)."""
    config = config or SynthConfig()
    config.validate()
    rng = random.Random(config.seed)
    topic_model = TopicModel(topics)
    truth = GroundTruth(topic_model=topic_model)
    database = Database(dblp_schema())

    conf_topic_ids = _assign_conferences(database, truth, config, rng)
    author_topic_ids = _assign_authors(database, truth, config, rng)
    _generate_papers(
        database, truth, config, rng, topic_model,
        conf_topic_ids, author_topic_ids,
    )
    return SynthesizedCorpus(database, truth, config)


# --------------------------------------------------------------------- #
# generation stages
# --------------------------------------------------------------------- #

def _assign_conferences(
    database: Database,
    truth: GroundTruth,
    config: SynthConfig,
    rng: random.Random,
) -> Dict[int, List[int]]:
    """Create conferences; returns topic_id -> hosting conference ids."""
    model = truth.topic_model
    names = conference_names(config.n_conferences, seed=config.seed * 31 + 1)
    hosting: Dict[int, List[int]] = {t.topic_id: [] for t in model.topics}
    for cid, name in enumerate(names):
        primary = rng.randrange(len(model))
        topics = {primary}
        # a venue also hosts (some of) the related topics
        for related in model.related_topic_ids(primary):
            if related != primary and rng.random() < 0.5:
                topics.add(related)
        database.insert("conferences", {"cid": cid, "name": name})
        truth.conference_topics[name] = topics
        for topic_id in topics:
            hosting[topic_id].append(cid)
    # guarantee every topic has at least one venue
    for topic_id, cids in hosting.items():
        if not cids:
            cid = rng.randrange(config.n_conferences)
            cids.append(cid)
            name = database.table("conferences").get(cid)["name"]
            truth.conference_topics[name].add(topic_id)
    return hosting


def _assign_authors(
    database: Database,
    truth: GroundTruth,
    config: SynthConfig,
    rng: random.Random,
) -> Dict[int, List[int]]:
    """Create authors; returns topic_id -> author ids working on it."""
    model = truth.topic_model
    names = author_names(config.n_authors, seed=config.seed * 31 + 2)
    community: Dict[int, List[int]] = {t.topic_id: [] for t in model.topics}
    for aid, name in enumerate(names):
        primary = rng.randrange(len(model))
        topics = {primary}
        if rng.random() < config.secondary_topic_prob:
            related = sorted(model.related_topic_ids(primary) - {primary})
            if related:
                topics.add(rng.choice(related))
        database.insert("authors", {"aid": aid, "name": name})
        truth.author_topics[name] = topics
        for topic_id in topics:
            community[topic_id].append(aid)
    for topic_id, aids in community.items():
        if not aids:
            aid = rng.randrange(config.n_authors)
            aids.append(aid)
            name = database.table("authors").get(aid)["name"]
            truth.author_topics[name].add(topic_id)
    return community


def _sample_title(
    topic: Topic,
    model: TopicModel,
    config: SynthConfig,
    rng: random.Random,
) -> str:
    """Sample a title: one word per chosen synonym cluster.

    At most one word of each synonym cluster may appear, so cluster-mates
    ("probabilistic" / "uncertain") never co-occur in a single title.
    """
    n_words = rng.randint(config.min_title_words, config.max_title_words)
    n_clusters = min(n_words, len(topic.clusters))
    cluster_idxs = rng.sample(range(len(topic.clusters)), n_clusters)
    words = [rng.choice(topic.clusters[i]) for i in cluster_idxs]
    # Topic-free filler, Poisson-ish around the configured expectation.
    n_generic = int(config.generic_words_per_title)
    if rng.random() < config.generic_words_per_title - n_generic:
        n_generic += 1
    if n_generic:
        words.extend(
            rng.sample(GENERIC_WORDS, min(n_generic, len(GENERIC_WORDS)))
        )
    if rng.random() < config.related_word_prob:
        related_ids = sorted(model.related_topic_ids(topic.topic_id) - {topic.topic_id})
        if related_ids:
            related = model.topic(rng.choice(related_ids))
            cluster = related.clusters[rng.randrange(len(related.clusters))]
            borrowed = rng.choice(cluster)
            if borrowed not in words:
                words.append(borrowed)
    rng.shuffle(words)
    return " ".join(words)


def _generate_papers(
    database: Database,
    truth: GroundTruth,
    config: SynthConfig,
    rng: random.Random,
    model: TopicModel,
    hosting: Dict[int, List[int]],
    community: Dict[int, List[int]],
) -> None:
    wid = 0
    #: per-topic memory of collaborating author groups for repeat collabs
    past_groups: Dict[int, List[Tuple[int, ...]]] = {
        t.topic_id: [] for t in model.topics
    }
    for pid in range(config.n_papers):
        topic_id = rng.randrange(len(model))
        topic = model.topic(topic_id)
        cid = rng.choice(hosting[topic_id])
        title = _sample_title(topic, model, config, rng)
        year = rng.randint(*config.year_range)
        database.insert(
            "papers", {"pid": pid, "title": title, "cid": cid, "year": year}
        )
        truth.paper_topic[pid] = topic_id

        groups = past_groups[topic_id]
        if groups and rng.random() < config.repeat_collab_prob:
            authors = list(rng.choice(groups))
            # occasionally grow the group with a new community member
            if (
                len(authors) < config.max_authors_per_paper
                and rng.random() < 0.3
            ):
                extra = rng.choice(community[topic_id])
                if extra not in authors:
                    authors.append(extra)
        else:
            pool = community[topic_id]
            size = min(
                len(pool), 1 + rng.randrange(config.max_authors_per_paper)
            )
            authors = rng.sample(pool, size)
        groups.append(tuple(sorted(authors)))
        for aid in authors:
            database.insert("writes", {"wid": wid, "aid": aid, "pid": pid})
            wid += 1
