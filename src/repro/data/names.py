"""Name pools for the synthetic bibliographic corpus.

Author and conference names are generated deterministically from seeded
pools.  Names are atomic terms in the TAT graph (Section IV-A: author and
institute names are not segmented), so they only need to be unique and
pronounceable, not real.
"""

from __future__ import annotations

import random
from typing import List

_FIRST_NAMES = [
    "wei", "jun", "li", "ming", "yan", "hao", "anna", "boris", "carla",
    "david", "elena", "frank", "grace", "henrik", "ivana", "jorge", "kumar",
    "laura", "marco", "nadia", "oscar", "priya", "quentin", "rosa", "stefan",
    "tomas", "ulrike", "victor", "wendy", "xiang", "yuki", "zoltan", "amir",
    "bianca", "chen", "dmitri", "esther", "felipe", "gita", "hiro",
]

_LAST_NAMES = [
    "zhang", "wang", "chen", "liu", "yang", "mueller", "schmidt", "rossi",
    "garcia", "martin", "kowalski", "novak", "tanaka", "suzuki", "kim",
    "park", "nguyen", "tran", "patel", "sharma", "silva", "santos",
    "ivanov", "petrov", "johansson", "nielsen", "virtanen", "papadopoulos",
    "oconnor", "macleod", "dubois", "moreau", "fischer", "weber", "ricci",
    "romano", "almeida", "costa", "haddad", "farouk",
]

_VENUE_WORDS = [
    "data", "knowledge", "information", "systems", "management", "mining",
    "retrieval", "databases", "web", "intelligence", "analytics",
    "engineering", "discovery", "semantics", "integration", "search",
]

_VENUE_KINDS = ["conference", "symposium", "workshop", "forum", "meeting"]


def author_names(count: int, seed: int) -> List[str]:
    """*count* distinct author names, deterministic in *seed*."""
    rng = random.Random(seed)
    names: List[str] = []
    seen = set()
    suffix = 0
    while len(names) < count:
        name = f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
        if name in seen:
            suffix += 1
            name = f"{name} {_roman(suffix)}"
            if name in seen:
                continue
        seen.add(name)
        names.append(name)
    return names


def conference_names(count: int, seed: int) -> List[str]:
    """*count* distinct venue names, deterministic in *seed*.

    Names look like acronym-style venue titles ("icde", "vkdd", ...) so
    each is a single atomic term node.
    """
    rng = random.Random(seed)
    names: List[str] = []
    seen = set()
    while len(names) < count:
        # acronym: 3-5 letters sampled from venue words' initials
        length = rng.randint(3, 5)
        letters = "".join(rng.choice(_VENUE_WORDS)[0] for _ in range(length))
        name = letters
        if name in seen:
            name = f"{letters}{rng.randint(2, 99)}"
            if name in seen:
                continue
        seen.add(name)
        names.append(name)
    return names


def venue_full_name(acronym: str, seed: int) -> str:
    """Expand an acronym into a plausible full venue title."""
    rng = random.Random(hash((acronym, seed)) & 0xFFFFFFFF)
    words = rng.sample(_VENUE_WORDS, 2)
    kind = rng.choice(_VENUE_KINDS)
    return f"{kind} on {words[0]} {words[1]}"


def _roman(n: int) -> str:
    """Small-number roman numerals for disambiguating duplicate names."""
    numerals = [
        (10, "x"), (9, "ix"), (5, "v"), (4, "iv"), (1, "i"),
    ]
    out = []
    for value, symbol in numerals:
        while n >= value:
            out.append(symbol)
            n -= value
    return "".join(out) or "i"
