"""Synthetic DBLP-style corpus generation and query workloads."""

from repro.data.dblp_synth import (
    GroundTruth,
    SynthConfig,
    SynthesizedCorpus,
    dblp_schema,
    synthesize_dblp,
)
from repro.data.names import author_names, conference_names, venue_full_name
from repro.data.topics import DEFAULT_TOPICS, Topic, TopicModel
from repro.data.workloads import Query, WorkloadGenerator, WorkloadQuery

__all__ = [
    "GroundTruth",
    "SynthConfig",
    "SynthesizedCorpus",
    "dblp_schema",
    "synthesize_dblp",
    "author_names",
    "conference_names",
    "venue_full_name",
    "DEFAULT_TOPICS",
    "Topic",
    "TopicModel",
    "Query",
    "WorkloadGenerator",
    "WorkloadQuery",
]
