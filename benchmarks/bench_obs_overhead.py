"""Bench: the observability layer must be ~free while switched off.

The instrumented ``Reformulator.reformulate`` hot path carries four span
context managers, a handful of ``obs.is_enabled()`` checks and the
gated metric accessors.  With the module switch off, all of those
collapse to a boolean check plus a shared no-op object — this guard
pins the cost of that collapse at **under 5%** against an
un-instrumented baseline assembled from the pipeline's raw stage
components (``candidates.build`` + ``ReformulationHMM.build`` +
``astar_topk`` + ``_postprocess``), which carry no instrumentation at
all.

Interleaved best-of-N timing: both variants run round-robin within the
same measurement window, and each variant's score is its *minimum*
per-call time — the standard way to strip scheduler noise from a
CPU-bound microbenchmark.

Run as a script for a quick local check::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

import time

from repro import obs
from repro.core.astar import astar_topk
from repro.core.hmm import ReformulationHMM
from repro.obs.trace import TraceContext, new_trace_id, trace_scope

QUERY = ["probabilistic", "query"]
K = 8
ROUNDS = 30
CALLS_PER_ROUND = 3
#: The guard threshold: disabled instrumentation may add at most this
#: fraction to the un-instrumented hot path.
MAX_OVERHEAD = 0.05


def _uninstrumented(reformulator, keywords, k):
    """The reformulate pipeline rebuilt from raw stage components."""
    states = reformulator.candidates.build(keywords)
    hmm = ReformulationHMM.build(
        query=keywords,
        states=states,
        closeness=reformulator.closeness,
        frequency=reformulator.frequency,
        smoothing_lambda=reformulator.config.smoothing_lambda,
    )
    want = k + reformulator._slack(keywords)
    raw = astar_topk(hmm, want).queries
    return reformulator._postprocess(keywords, raw, k)


def _best_of(fn, rounds, calls_per_round):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(calls_per_round):
            fn()
        best = min(best, (time.perf_counter() - start) / calls_per_round)
    return best


def measure_overhead(reformulator, rounds=ROUNDS, calls=CALLS_PER_ROUND):
    """(baseline_s, instrumented_s, overhead_fraction), interleaved."""
    keywords = list(QUERY)

    def baseline():
        return _uninstrumented(reformulator, keywords, K)

    def instrumented():
        return reformulator.reformulate(keywords, k=K)

    # warmup both paths (caches, lazy imports)
    base_out = baseline()
    inst_out = instrumented()
    assert [q.text for q in base_out] == [q.text for q in inst_out]

    best_base = float("inf")
    best_inst = float("inf")
    for _ in range(rounds):
        best_base = min(best_base, _best_of(baseline, 1, calls))
        best_inst = min(best_inst, _best_of(instrumented, 1, calls))
    overhead = (best_inst - best_base) / best_base
    return best_base, best_inst, overhead


def test_disabled_instrumentation_overhead(small_context):
    obs.disable()
    reformulator = small_context.reformulator("tat")
    base_s, inst_s, overhead = measure_overhead(reformulator)
    print(
        f"\nreformulate hot path: baseline {base_s * 1e3:.3f} ms, "
        f"instrumented(off) {inst_s * 1e3:.3f} ms, "
        f"overhead {overhead * 100:+.2f}%"
    )
    assert overhead < MAX_OVERHEAD, (
        f"disabled instrumentation adds {overhead * 100:.2f}% "
        f"(limit {MAX_OVERHEAD * 100:.0f}%)"
    )


def test_enabled_tracing_overhead(small_context):
    """The serving-path guard: with the module switch ON and a sampled
    request context installed (the worst case — every span is recorded
    and stamped onto the live trace), the instrumented pipeline must
    still clear the same 5% bar against the un-instrumented baseline.
    The plan cache is what buys the headroom: span bookkeeping rides on
    a path that skips candidate/HMM assembly entirely."""
    reformulator = small_context.reformulator("tat")
    with obs.enabled():
        with trace_scope(TraceContext(new_trace_id(), sampled=True)):
            base_s, inst_s, overhead = measure_overhead(reformulator)
        obs.reset()
    print(
        f"\nreformulate hot path: baseline {base_s * 1e3:.3f} ms, "
        f"instrumented(tracing on, sampled) {inst_s * 1e3:.3f} ms, "
        f"overhead {overhead * 100:+.2f}%"
    )
    assert overhead < MAX_OVERHEAD, (
        f"enabled tracing adds {overhead * 100:.2f}% "
        f"(limit {MAX_OVERHEAD * 100:.0f}%)"
    )


def main():
    """Script mode: print the comparison without pytest."""
    from repro.experiments import build_context

    obs.disable()
    context = build_context(scale="small", seed=7)
    reformulator = context.reformulator("tat")
    base_s, inst_s, overhead = measure_overhead(reformulator)
    print(f"baseline (un-instrumented) : {base_s * 1e3:8.3f} ms/call")
    print(f"reformulate (obs disabled) : {inst_s * 1e3:8.3f} ms/call")
    print(f"overhead                   : {overhead * 100:+8.2f}%  "
          f"(limit {MAX_OVERHEAD * 100:.0f}%)")
    return 0 if overhead < MAX_OVERHEAD else 1


if __name__ == "__main__":
    raise SystemExit(main())
