"""Figure 4 bench — the contextual preference's synonym amplification.

Quantifies the paper's Figure 4 narrative over the vocabulary: synonym
cluster-mates are unreachable for co-occurrence, reachable for both walk
variants, and the contextual restart *amplifies* the synonym signal over
the basic (indicator-restart) walk.
"""

import pytest

from repro.experiments import fig4_context_effect, format_table


def test_fig4_context_effect(benchmark, context):
    report = benchmark.pedantic(
        lambda: fig4_context_effect.run(context, max_pairs=40),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print("Figure 4 quantified")
    print(format_table(["measure", "value"], report.rows()))

    assert report.n_pairs >= 10
    # the structural claim: co-occurrence cannot see synonym pairs at all
    assert report.cooccurrence_reachability == 0.0
    # both walks connect them through shared context
    assert report.contextual_reachability >= 0.9
    # and the contextual restart strengthens the signal
    assert report.mean_contextual_over_basic > 1.0
