"""Figure 5 bench — Precision@N of the three reformulation methods.

Regenerates the paper's effectiveness figure: average Precision@{1,3,5,
7,10} over mixed-format queries, judged by the simulated three-judge
panel.  Shape asserted: the TAT-based method dominates both baselines at
every reported rank position (the paper's headline result).

The relative order of the two baselines (Rank-based vs Co-occurrence)
varies with the corpus seed in our cleaner synthetic data; the paper's
Figure 5 had Rank-based ahead.  See EXPERIMENTS.md.
"""

import pytest

from repro.experiments import fig5_precision, format_table
from repro.experiments.fig5_precision import METHOD_LABELS, RANK_POSITIONS


def test_fig5_precision(benchmark, context):
    report = benchmark.pedantic(
        lambda: fig5_precision.run(context, n_queries=30, k=10),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print(f"Figure 5 — Precision@N over {report.n_queries} queries")
    headers = ["method"] + [f"P@{n}" for n in RANK_POSITIONS]
    rows = [
        [METHOD_LABELS[m]] + [report.curves[m][n] for n in RANK_POSITIONS]
        for m in report.curves
    ]
    print(format_table(headers, rows))

    tat = report.curves["tat"]
    rank = report.curves["rank"]
    cooc = report.curves["cooccurrence"]
    for n in RANK_POSITIONS:
        assert 0.0 <= tat[n] <= 1.0
        assert tat[n] >= rank[n] - 1e-9, f"TAT loses to rank-based at P@{n}"
        assert tat[n] >= cooc[n] - 1e-9, (
            f"TAT loses to co-occurrence at P@{n}"
        )
    # the win is real, not a tie artifact
    assert tat[10] > min(rank[10], cooc[10])

    # paired-bootstrap significance of the P@10 deltas (direction must
    # favor TAT; small-sample p-values are reported, not gated hard)
    for baseline in ("rank", "cooccurrence"):
        boot = report.significance_vs("tat", baseline, seed=1)
        print(
            f"TAT vs {baseline}: ΔP@10={boot.mean_difference:+.3f}, "
            f"bootstrap p={boot.p_value:.3f}"
        )
        assert boot.mean_difference >= 0
