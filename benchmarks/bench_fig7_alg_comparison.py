"""Figure 7 bench — Algorithm 2 vs Algorithm 3 run time by query length.

Regenerates the paper's efficiency comparison over a sampled workload of
queries with lengths 1..8.  Shapes asserted: Algorithm 3 (Viterbi + A*)
is faster than the extended top-k Viterbi on long queries, the gap grows
with length, and even length-8 queries decode at interactive speed.
"""

import pytest

from repro.experiments import fig7_alg_comparison, format_table


def test_fig7_alg2_vs_alg3(benchmark, context):
    report = benchmark.pedantic(
        lambda: fig7_alg_comparison.run(
            context, n_queries=160, max_len=8, k=10
        ),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print(f"Figure 7 — decode time by query length (k={report.k})")
    rows = [
        [
            length,
            report.alg2_by_length[length].mean * 1000,
            report.alg3_by_length[length].mean * 1000,
            report.speedup_at(length),
        ]
        for length in sorted(report.alg2_by_length)
    ]
    print(format_table(["length", "Alg2 ms", "Alg3 ms", "speedup"], rows))

    assert set(report.alg2_by_length) == set(range(1, 9))

    # Alg 3 wins on long queries and the advantage grows with length
    assert report.speedup_at(8) > 2.0
    assert report.speedup_at(8) > report.speedup_at(2)

    # both stay interactive (paper: < 0.2 s at length 8 on 2012 hardware)
    assert report.alg3_by_length[8].mean < 0.2

    # Alg 2 cost grows with query length (the O(m n^2 k log k) factor)
    assert (
        report.alg2_by_length[8].mean > report.alg2_by_length[2].mean
    )
