"""Table II bench — similar-term extraction, walk vs co-occurrence.

Regenerates the paper's Table II contrast for a polysemous target term:
the co-occurrence list holds only directly co-occurring subarea words,
while the contextual walk also surfaces alternative vocabulary — in our
corpus, ground-truth synonym cluster-mates that *never* share a title
with the target.
"""

import pytest

from repro.experiments import format_table, table2_similar_terms


def test_table2_similar_terms(benchmark, context):
    report = benchmark.pedantic(
        lambda: table2_similar_terms.run(context, target="xml", top_n=20),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print("Table II — similar terms of 'xml'")
    print("co-occurrence:")
    print(format_table(["term", "score"], report.cooccurrence_terms[:10]))
    print("contextual walk:")
    print(format_table(["term", "score"], report.contextual_terms[:10]))
    print(f"synonyms only the walk found: {report.recovered_synonyms}")

    # the paper's contrast: the walk recovers terms the co-occurrence
    # method cannot see at all
    assert report.recovered_synonyms
    coo_texts = {t for t, _s in report.cooccurrence_terms}
    for synonym in report.recovered_synonyms:
        assert synonym not in coo_texts


def test_table2_author_case(benchmark, context):
    report = benchmark.pedantic(
        lambda: table2_similar_terms.run_author_case(context, top_n=5),
        rounds=1,
        iterations=1,
    )

    print("\nauthor case — similar authors of " + repr(report.target))
    print(format_table(["author", "score"], report.contextual_terms))

    # co-occurrence finds nothing for atomic names; the walk finds the
    # research community (the paper's "Jiawei Han" example)
    assert report.cooccurrence_terms == []
    assert len(report.contextual_terms) == 5
    truth = context.corpus.ground_truth
    community = sum(
        truth.terms_relevant(report.target, author)
        for author, _s in report.contextual_terms
    )
    assert community >= 3
