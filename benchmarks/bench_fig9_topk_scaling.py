"""Figure 9 bench — time vs number of returned queries (k), length 6.

Shapes asserted, as in the paper: the Viterbi stage is insensitive to k
(it always computes the full table), while the A* stage grows roughly
linearly with k — "the time cost in A* search strategy stage grows
linearly with k ... which demonstrates the scalability in terms of the
result size".
"""

import pytest

from repro.experiments import fig9_topk_scaling, format_table

KS = (1, 5, 10, 20, 30, 40, 50)


def test_fig9_topk_scaling(benchmark, context):
    report = benchmark.pedantic(
        lambda: fig9_topk_scaling.run(
            context, ks=KS, query_length=6, n_queries=20
        ),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print(f"Figure 9 — time vs k (length {report.query_length})")
    rows = [
        [
            k,
            report.viterbi_by_k[k].mean * 1000,
            report.astar_by_k[k].mean * 1000,
        ]
        for k in KS
    ]
    print(format_table(["k", "viterbi ms", "a* ms"], rows))

    # A* stage grows with k
    assert report.astar_by_k[50].mean > report.astar_by_k[1].mean

    # roughly linear: growing k 5x from 10 to 50 grows time by far less
    # than the quadratic 25x (generous noise envelope)
    ratio = report.astar_by_k[50].mean / report.astar_by_k[10].mean
    assert ratio < 15.0

    # Viterbi stage is k-independent (allow noise)
    v_times = [report.viterbi_by_k[k].mean for k in KS]
    assert max(v_times) < 5 * min(v_times)
