"""Bench: lane-vs-lane A/B over one judged workload.

Exercises the :mod:`repro.lanes` routing layer the way the eval harness
means it to be used:

* **hmm vs enumeration** — the paper's HMM decoder against the
  rank-based baseline, judged by the three-judge panel and
  significance-tested with the paired bootstrap
  (:func:`repro.eval.lanes.compare_lanes`).  The expected direction is
  the paper's Table III: the HMM lane wins.
* **relaxation coverage** — every workload query is corrupted with an
  out-of-vocabulary token, which drives its best-path cohesion to zero;
  the acceptance bar is the relaxation lane answering **≥ 95 %** of
  these low-cohesion queries with at least one suggestion
  (:func:`repro.eval.lanes.fallback_coverage`).
* **hmm lane bit-identity** — the routed hmm lane must equal the bare
  pipeline on every workload query (the lane wrapper adds measurement,
  never behavior).

Script mode (used by the CI smoke job) runs the small corpus and writes
the numbers as JSON::

    PYTHONPATH=src python benchmarks/bench_lane_ab.py \
        --smoke --out BENCH_lane_ab.json
"""

import json
import time

from repro.eval.lanes import compare_lanes, fallback_coverage
from repro.experiments import build_context
from repro.lanes import RouterConfig, build_router


def _corrupt(queries, keep=1):
    """Low-cohesion variants: an out-of-vocab token after *keep* terms.

    An unknown term has no candidate node, so the best path's raw
    adjacent closeness through it is 0 — below any positive threshold.
    """
    return [
        list(query[:keep]) + [f"zz{i:03d}unknownzz"]
        for i, query in enumerate(queries)
    ]


def run(scale="medium", n_queries=60, k=10, n_resamples=2000):
    """Full A/B + coverage + bit-identity report over one workload."""
    context = build_context(scale, seed=7)
    pipeline = context.reformulator("tat")
    router = build_router(
        pipeline, RouterConfig(fallback_lane="relaxation")
    )
    queries = [
        list(entry.keywords)
        for entry in context.workloads.mixed_queries(n_queries)
    ]

    start = time.perf_counter()
    comparison = compare_lanes(
        router, context.judges, queries, "hmm", "enumeration",
        k=k, n_resamples=n_resamples,
    )
    ab_seconds = time.perf_counter() - start

    mismatches = 0
    for query in queries:
        routed = router.route(query, k=k, lane="hmm")
        if list(routed.suggestions) != pipeline.reformulate(query, k=k):
            mismatches += 1

    start = time.perf_counter()
    coverage = fallback_coverage(router, _corrupt(queries), k=k)
    coverage_seconds = time.perf_counter() - start

    return {
        "scale": scale,
        "n_queries": len(queries),
        "k": k,
        "hmm_precision": round(comparison.arm_a.mean_precision, 4),
        "enumeration_precision": round(comparison.arm_b.mean_precision, 4),
        "delta": round(comparison.delta, 4),
        "p_value": round(comparison.bootstrap.p_value, 4),
        "significant": comparison.bootstrap.significant,
        "hmm_answered": round(comparison.arm_a.answered, 4),
        "enumeration_answered": round(comparison.arm_b.answered, 4),
        "hmm_lane_mismatches": mismatches,
        "low_cohesion_queries": coverage.n_low_cohesion,
        "relaxation_answered": coverage.n_answered,
        "relaxation_coverage": round(coverage.coverage, 4),
        "ab_seconds": round(ab_seconds, 3),
        "coverage_seconds": round(coverage_seconds, 3),
    }


def test_lane_ab_quality_and_coverage(benchmark):
    report = benchmark.pedantic(
        lambda: run(scale="medium", n_queries=60),
        rounds=1, iterations=1,
    )

    print("\n" + "=" * 60)
    print(f"Lane A/B, {report['n_queries']} queries, k={report['k']}")
    print(f"  hmm precision        : {report['hmm_precision']:8.4f}")
    print(f"  enumeration precision: {report['enumeration_precision']:8.4f}")
    print(f"  delta (p={report['p_value']:.3f})     : "
          f"{report['delta']:+8.4f}")
    print(f"  relaxation coverage  : {report['relaxation_coverage']:8.1%} "
          f"({report['relaxation_answered']}/"
          f"{report['low_cohesion_queries']} low-cohesion)")
    print(f"  hmm lane mismatches  : {report['hmm_lane_mismatches']}")

    # the lane wrapper adds no behavior
    assert report["hmm_lane_mismatches"] == 0
    # the acceptance bar of the lane subsystem
    assert report["low_cohesion_queries"] >= 1
    assert report["relaxation_coverage"] >= 0.95
    # the paper's direction: the HMM beats rank enumeration
    assert report["delta"] >= 0.0


def run_smoke(out_path, n_queries=24):
    """CI smoke: small corpus, coverage + bit-identity enforced.

    The precision delta's *significance* is not asserted here — two
    dozen queries on the small corpus rarely clear p < 0.05; the full
    pytest bench covers the quality direction.
    """
    report = run(scale="small", n_queries=n_queries, n_resamples=500)
    print(json.dumps(report, indent=2))
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {out_path}")
    ok = (
        report["hmm_lane_mismatches"] == 0
        and report["low_cohesion_queries"] >= 1
        and report["relaxation_coverage"] >= 0.95
    )
    return 0 if ok else 1


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small corpus, coverage + bit-identity checks only",
    )
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--out", default="BENCH_lane_ab.json")
    args = parser.parse_args()
    if args.smoke:
        return run_smoke(args.out, n_queries=args.queries or 24)
    report = run(n_queries=args.queries or 60)
    print(json.dumps(report, indent=2))
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    ok = (
        report["hmm_lane_mismatches"] == 0
        and report["relaxation_coverage"] >= 0.95
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
