"""Offline-stage scalability bench (beyond the paper's reporting).

Sweeps corpus sizes and checks the growth behaviour an adopter cares
about: graph size grows with the corpus, and the offline per-term
extraction stays tractable at every size.
"""

import pytest

from repro.experiments import format_table
from repro.experiments import scale


def test_offline_scalability(benchmark):
    report = benchmark.pedantic(
        lambda: scale.run(paper_counts=(300, 600, 1200, 2400)),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print("Offline-stage scalability")
    rows = [
        [
            p.n_papers, p.nodes, p.edges,
            p.index_seconds * 1000, p.graph_seconds * 1000,
            p.similarity_per_term * 1000, p.closeness_per_term * 1000,
            p.store_per_term * 1000,
        ]
        for p in report.points
    ]
    print(format_table(
        ["papers", "nodes", "edges", "index ms", "graph ms",
         "sim/term ms", "clos/term ms", "store/term ms"],
        rows,
    ))

    by_papers = report.by_papers()
    # structure grows with the corpus
    assert by_papers[2400].nodes > by_papers[300].nodes
    assert by_papers[2400].edges > by_papers[300].edges

    # the offline stage stays tractable: per-term extraction under 1 s
    # even at the largest size (the whole vocabulary is a few thousand
    # walks, i.e. minutes — matching the paper's offline framing)
    for point in report.points:
        assert point.similarity_per_term < 1.0
        assert point.closeness_per_term < 1.0
        # the batched store path (direct solver + bulk BFS) is the
        # production offline path; it must stay well under the live
        # per-term cost at every size
        assert point.store_terms > 0
        assert point.store_per_term < 0.1
