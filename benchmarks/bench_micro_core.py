"""Micro-benchmarks of the core operations (proper multi-round timing).

These complement the table/figure macro-benches with stable per-operation
numbers: offline random walk, closeness extraction, HMM build, and the
three decoding algorithms on one fixed query.
"""

import pytest

from repro.core.astar import astar_topk, astar_topk_log
from repro.core.enumeration import RankBasedReformulator
from repro.core.viterbi import viterbi_top1, viterbi_topk, viterbi_topk_log
from repro.graph.closeness import ClosenessExtractor
from repro.graph.randomwalk import RandomWalkEngine
from repro.graph.similarity import SimilarityExtractor
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module")
def fixed_query(context):
    return list(
        context.workloads.queries_of_length(4, 1)[0].keywords
    )


@pytest.fixture(scope="module")
def fixed_hmm(context, fixed_query):
    return context.reformulator("tat").build_hmm(fixed_query)


def test_bench_index_build(benchmark, context):
    database = context.database
    result = benchmark(lambda: InvertedIndex(database).build())
    assert result.vocabulary_size() > 0


def test_bench_random_walk(benchmark, context):
    engine = RandomWalkEngine(context.graph.adjacency)
    node = context.graph.resolve_text_one("probabilistic")
    preference = engine.indicator_preference(node)
    result = benchmark(lambda: engine.walk(preference))
    assert result.converged


def test_bench_contextual_similarity_cold(benchmark, context):
    node = context.graph.resolve_text_one("probabilistic")

    def run():
        extractor = SimilarityExtractor(context.graph)
        return extractor.similar_nodes(node, 15)

    result = benchmark(run)
    assert len(result) == 15


def test_bench_closeness_extraction(benchmark, context):
    node = context.graph.resolve_text_one("probabilistic")

    def run():
        extractor = ClosenessExtractor(context.graph)
        return extractor.close_terms(node, 10)

    result = benchmark(run)
    assert result


def test_bench_hmm_build(benchmark, context, fixed_query):
    reformulator = context.reformulator("tat")
    hmm = benchmark(lambda: reformulator.build_hmm(fixed_query))
    assert hmm.length == len(fixed_query)


def test_bench_viterbi_top1(benchmark, fixed_hmm):
    result = benchmark(lambda: viterbi_top1(fixed_hmm))
    assert result.score >= 0


def test_bench_alg2_viterbi_topk(benchmark, fixed_hmm):
    result = benchmark(lambda: viterbi_topk(fixed_hmm, 10))
    assert result


def test_bench_alg3_astar_topk(benchmark, fixed_hmm):
    result = benchmark(lambda: astar_topk(fixed_hmm, 10))
    assert result.queries


def test_bench_alg2_viterbi_topk_log(benchmark, fixed_hmm):
    fixed_hmm.log_transitions  # warm the cached log lane out-of-band
    result = benchmark(lambda: viterbi_topk_log(fixed_hmm, 10))
    assert [q.state_path for q in result] == [
        q.state_path for q in viterbi_topk(fixed_hmm, 10)
    ]


def test_bench_alg3_astar_topk_log(benchmark, fixed_hmm):
    fixed_hmm.log_transitions  # warm the cached log lane out-of-band
    result = benchmark(lambda: astar_topk_log(fixed_hmm, 10))
    assert [q.state_path for q in result.queries] == [
        q.state_path for q in astar_topk(fixed_hmm, 10).queries
    ]


def test_bench_rank_baseline(benchmark, context, fixed_query):
    states = context.reformulator("rank").candidates.build(fixed_query)

    def run():
        return RankBasedReformulator(states).topk(10)

    result = benchmark(run)
    assert result


def test_bench_keyword_search(benchmark, context):
    def run():
        return context.search.search(["probabilistic", "query"])

    result = benchmark(run)
    assert result.size >= 0
