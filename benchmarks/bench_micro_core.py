"""Micro-benchmarks of the core operations (proper multi-round timing).

These complement the table/figure macro-benches with stable per-operation
numbers: offline random walk, closeness extraction, HMM build, and the
three decoding algorithms on one fixed query.

The second half is the **decode-lane comparison**: a dense synthetic
n=200 HMM pushed through every reference/vectorized lane pair, with
bit-identity asserted (the ref/vec twins must agree exactly — see
``tests/decode_oracle.py``) and cold single-query p50 speedups asserted
(≥5x for the Viterbi lanes; A* expands only ~k·m nodes so its floor is
lower).  Script mode::

    PYTHONPATH=src python benchmarks/bench_micro_core.py \\
        --smoke --out BENCH_micro_core.json

runs the comparison standalone and writes the per-lane numbers as JSON
for the CI artifact.
"""

import time

import numpy as np
import pytest

from repro.core.astar import (
    astar_topk,
    astar_topk_log,
    astar_topk_vec,
    astar_topk_vec_log,
)
from repro.core.candidates import CandidateState, StateKind
from repro.core.enumeration import RankBasedReformulator
from repro.core.hmm import ReformulationHMM
from repro.core.viterbi import (
    viterbi_top1,
    viterbi_top1_vec,
    viterbi_topk,
    viterbi_topk_log,
    viterbi_topk_vec,
    viterbi_topk_vec_log,
)
from repro.graph.closeness import ClosenessExtractor
from repro.graph.randomwalk import RandomWalkEngine
from repro.graph.similarity import SimilarityExtractor
from repro.index.inverted import InvertedIndex

# --------------------------------------------------------------------------- #
# decode-lane comparison (reference vs vectorized)
# --------------------------------------------------------------------------- #

#: (lane, reference fn, vectorized fn, minimum cold p50 speedup).
#: Measured on the n=200/m=4/k=10 instance: top1 ~11x, topk ~7x,
#: astar ~3.5-4x; the asserted floors leave headroom for CI noise.
LANES = [
    ("viterbi_top1",
     lambda hmm, k: [viterbi_top1(hmm)],
     lambda hmm, k: [viterbi_top1_vec(hmm)],
     5.0),
    ("viterbi_topk",
     lambda hmm, k: viterbi_topk(hmm, k),
     lambda hmm, k: viterbi_topk_vec(hmm, k),
     5.0),
    ("viterbi_topk_log",
     lambda hmm, k: viterbi_topk_log(hmm, k),
     lambda hmm, k: viterbi_topk_vec_log(hmm, k),
     5.0),
    ("astar",
     lambda hmm, k: astar_topk(hmm, k).queries,
     lambda hmm, k: astar_topk_vec(hmm, k).queries,
     1.5),
    ("astar_log",
     lambda hmm, k: astar_topk_log(hmm, k).queries,
     lambda hmm, k: astar_topk_vec_log(hmm, k).queries,
     1.5),
]


def make_dense_hmm(n: int = 200, m: int = 4, seed: int = 0) -> ReformulationHMM:
    """A dense synthetic HMM: n candidates per position, all weights
    positive (no zero short-circuits), magnitudes in [0.01, 1]."""
    rng = np.random.RandomState(seed)
    states = [
        [
            CandidateState(StateKind.SIMILAR, i * n + j, f"t{i}_{j}", 1.0)
            for j in range(n)
        ]
        for i in range(m)
    ]
    pi = rng.uniform(0.01, 1.0, n)
    pi /= pi.sum()
    emissions = []
    for _ in range(m):
        e = rng.uniform(0.01, 1.0, n)
        emissions.append(e / e.sum())
    transitions = [rng.uniform(0.01, 1.0, (n, n)) for _ in range(m - 1)]
    return ReformulationHMM(
        query=tuple(f"q{i}" for i in range(m)),
        states=states,
        pi=pi,
        emissions=emissions,
        transitions=transitions,
    )


def _p50(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]


def _signature(queries):
    return [(q.state_path, q.score) for q in queries]


def compare_lanes(n: int = 200, m: int = 4, k: int = 10, rounds: int = 3):
    """p50-per-lane comparison on one dense instance.

    Asserts the ref/vec twins are bit-identical before timing anything —
    a fast wrong lane is not a speedup.  Returns the per-lane report.
    """
    hmm = make_dense_hmm(n=n, m=m, seed=0)
    hmm.log_transitions  # warm the cached log lane out-of-band
    report = {"n": n, "m": m, "k": k, "rounds": rounds, "lanes": {}}
    for name, ref, vec in [(t[0], t[1], t[2]) for t in LANES]:
        assert _signature(ref(hmm, k)) == _signature(vec(hmm, k)), (
            f"{name}: ref/vec twins diverged"
        )
    for name, ref, vec, _floor in LANES:
        ref_p50 = _p50(lambda: ref(hmm, k), rounds)
        vec_p50 = _p50(lambda: vec(hmm, k), rounds)
        report["lanes"][name] = {
            "reference_p50_ms": ref_p50 * 1000.0,
            "vectorized_p50_ms": vec_p50 * 1000.0,
            "speedup": ref_p50 / vec_p50,
        }
    return report


def _print_report(report) -> None:
    print(f"\ndecode lanes @ n={report['n']} m={report['m']} "
          f"k={report['k']} ({report['rounds']} rounds, p50):")
    for name, row in report["lanes"].items():
        print(f"  {name:18s} ref {row['reference_p50_ms']:9.2f} ms  "
              f"vec {row['vectorized_p50_ms']:8.2f} ms  "
              f"{row['speedup']:6.1f}x")


def _check_floors(report) -> bool:
    ok = True
    for name, _ref, _vec, floor in LANES:
        speedup = report["lanes"][name]["speedup"]
        if speedup < floor:
            print(f"  FAIL {name}: {speedup:.1f}x < required {floor:.1f}x")
            ok = False
    return ok


def test_bench_decode_lane_speedup_n200(benchmark):
    """Cold single-query p50 at n=200: vectorized lanes vs reference.

    The ≥5x floor on the Viterbi lanes is the tentpole acceptance
    criterion; A* gets a lower floor because its expansion count is
    already ~k·m rather than k·n·m.
    """
    report = benchmark.pedantic(
        lambda: compare_lanes(n=200, m=4, k=10, rounds=3),
        rounds=1, iterations=1,
    )
    _print_report(report)
    assert _check_floors(report)


# --------------------------------------------------------------------------- #
# corpus micro-benches (context fixture from benchmarks/conftest.py)
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def fixed_query(context):
    return list(
        context.workloads.queries_of_length(4, 1)[0].keywords
    )


@pytest.fixture(scope="module")
def fixed_hmm(context, fixed_query):
    return context.reformulator("tat").build_hmm(fixed_query)


def test_bench_index_build(benchmark, context):
    database = context.database
    result = benchmark(lambda: InvertedIndex(database).build())
    assert result.vocabulary_size() > 0


def test_bench_random_walk(benchmark, context):
    engine = RandomWalkEngine(context.graph.adjacency)
    node = context.graph.resolve_text_one("probabilistic")
    preference = engine.indicator_preference(node)
    result = benchmark(lambda: engine.walk(preference))
    assert result.converged


def test_bench_contextual_similarity_cold(benchmark, context):
    node = context.graph.resolve_text_one("probabilistic")

    def run():
        extractor = SimilarityExtractor(context.graph)
        return extractor.similar_nodes(node, 15)

    result = benchmark(run)
    assert len(result) == 15


def test_bench_closeness_extraction(benchmark, context):
    node = context.graph.resolve_text_one("probabilistic")

    def run():
        extractor = ClosenessExtractor(context.graph)
        return extractor.close_terms(node, 10)

    result = benchmark(run)
    assert result


def test_bench_hmm_build(benchmark, context, fixed_query):
    reformulator = context.reformulator("tat")
    hmm = benchmark(lambda: reformulator.build_hmm(fixed_query))
    assert hmm.length == len(fixed_query)


def test_bench_viterbi_top1(benchmark, fixed_hmm):
    result = benchmark(lambda: viterbi_top1(fixed_hmm))
    assert result.score >= 0


def test_bench_viterbi_top1_vec(benchmark, fixed_hmm):
    expected = viterbi_top1(fixed_hmm)
    result = benchmark(lambda: viterbi_top1_vec(fixed_hmm))
    assert (result.state_path, result.score) == (
        expected.state_path, expected.score,
    )


def test_bench_alg2_viterbi_topk(benchmark, fixed_hmm):
    result = benchmark(lambda: viterbi_topk(fixed_hmm, 10))
    assert result


def test_bench_alg2_viterbi_topk_vec(benchmark, fixed_hmm):
    result = benchmark(lambda: viterbi_topk_vec(fixed_hmm, 10))
    assert _signature(result) == _signature(viterbi_topk(fixed_hmm, 10))


def test_bench_alg3_astar_topk(benchmark, fixed_hmm):
    result = benchmark(lambda: astar_topk(fixed_hmm, 10))
    assert result.queries


def test_bench_alg3_astar_topk_vec(benchmark, fixed_hmm):
    result = benchmark(lambda: astar_topk_vec(fixed_hmm, 10))
    assert _signature(result.queries) == _signature(
        astar_topk(fixed_hmm, 10).queries
    )


def test_bench_alg2_viterbi_topk_log(benchmark, fixed_hmm):
    fixed_hmm.log_transitions  # warm the cached log lane out-of-band
    result = benchmark(lambda: viterbi_topk_log(fixed_hmm, 10))
    assert [q.state_path for q in result] == [
        q.state_path for q in viterbi_topk(fixed_hmm, 10)
    ]


def test_bench_alg3_astar_topk_log(benchmark, fixed_hmm):
    fixed_hmm.log_transitions  # warm the cached log lane out-of-band
    result = benchmark(lambda: astar_topk_log(fixed_hmm, 10))
    assert [q.state_path for q in result.queries] == [
        q.state_path for q in astar_topk(fixed_hmm, 10).queries
    ]


def test_bench_rank_baseline(benchmark, context, fixed_query):
    states = context.reformulator("rank").candidates.build(fixed_query)

    def run():
        return RankBasedReformulator(states).topk(10)

    result = benchmark(run)
    assert result


def test_bench_keyword_search(benchmark, context):
    def run():
        return context.search.search(["probabilistic", "query"])

    result = benchmark(run)
    assert result.size >= 0


# --------------------------------------------------------------------------- #
# script mode (CI smoke artifact)
# --------------------------------------------------------------------------- #


def run_smoke(out: str, n: int = 200, rounds: int = 3) -> int:
    """Run the decode-lane comparison and write the report as JSON.

    Exit status is non-zero when any lane misses its speedup floor, so
    the CI job fails on a vectorization regression, not just on a
    correctness one.
    """
    import json

    report = compare_lanes(n=n, m=4, k=10, rounds=rounds)
    _print_report(report)
    ok = _check_floors(report)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote lane report to {out}")
    return 0 if ok else 1


def main() -> int:
    """Script entry point: ``--smoke`` runs the lane comparison."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the decode-lane comparison only (no corpus benches)",
    )
    parser.add_argument(
        "--out", default="BENCH_micro_core.json",
        help="where to write the JSON lane report",
    )
    parser.add_argument("--n", type=int, default=200)
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args()
    if not args.smoke:
        parser.error("script mode currently only implements --smoke; "
                     "run the full micro-bench suite through pytest")
    return run_smoke(args.out, n=args.n, rounds=args.rounds)


if __name__ == "__main__":
    raise SystemExit(main())
