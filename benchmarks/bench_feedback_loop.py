"""Feedback-loop bench (future-work extension, quantitative).

Trains the feedback adaptor on a simulated interaction log and checks
that interaction data helps where query logs help in practice: recurring
queries.  Held-out queries are reported for context (the delta there is
expected to hover around zero at this corpus scale).
"""

import pytest

from repro.experiments import feedback_loop, format_table


def test_feedback_loop(benchmark, context):
    report = benchmark.pedantic(
        lambda: feedback_loop.run(
            context, n_train_queries=20, n_eval_queries=10, k=10,
            learning_rate=1.0, seed=99,
        ),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print("Feedback loop")
    print(format_table(
        ["measure", "value"],
        [
            ["recurring baseline", report.recurring_baseline],
            ["recurring adapted", report.recurring_adapted],
            ["held-out baseline", report.heldout_baseline],
            ["held-out adapted", report.heldout_adapted],
            ["interactions", report.training_interactions],
            ["accepts", report.training_accepts],
            ["boosts", report.boost_count],
        ],
    ))

    # the log was actually learned from
    assert report.training_accepts > 0
    assert report.boost_count > 0
    # feedback must not hurt recurring queries (and typically helps)
    assert report.recurring_adapted >= report.recurring_baseline - 0.02
    # generalization stays in a sane band
    assert report.heldout_adapted >= report.heldout_baseline - 0.15
