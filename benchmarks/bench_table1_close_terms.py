"""Table I bench — close terms/conferences of a target term.

Regenerates the paper's Table I: the ranked close terms and close
conferences of "probabilistic", plus the joint-result validation the
paper ran against Google.  The shape asserted: close terms are topically
coherent and scores decrease monotonically.
"""

import pytest

from repro.experiments import format_table, table1_close_terms


def test_table1_close_terms(benchmark, context):
    report = benchmark.pedantic(
        lambda: table1_close_terms.run(context, top_n=8),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print("Table I — close terms of 'probabilistic'")
    print(format_table(["close term", "closeness"], report.close_terms))
    print(format_table(
        ["close conference", "closeness"], report.close_conferences
    ))
    print(format_table(
        ["conference", "joint results"], report.joint_result_counts
    ))

    # shape: non-empty, sorted, positive (paper: 'generation',
    # 'distribution' etc. top the list)
    scores = [s for _t, s in report.close_terms]
    assert len(scores) == 8
    assert scores == sorted(scores, reverse=True)
    assert all(s > 0 for s in scores)

    # topical coherence: most close terms share/relate to the target topic
    truth = context.corpus.ground_truth
    coherent = sum(
        truth.terms_relevant("probabilistic", term)
        or not truth.topics_of_term(term)
        for term, _s in report.close_terms
    )
    assert coherent >= 5

    # the validation column exists for every close conference
    assert len(report.joint_result_counts) == len(report.close_conferences)
