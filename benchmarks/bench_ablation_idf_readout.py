"""Ablation bench: the idf readout on walk scores (DESIGN.md decision 4).

Without the idf readout, high-frequency filler words ("efficient",
"novel", ...) ride their degree advantage into the similar-term lists;
with it, topical terms dominate.  Measured as the average number of
topic-free generic words in the top-10 similar list over a sample of
topical targets.
"""

import pytest

from repro.data.topics import GENERIC_WORDS
from repro.experiments import format_table
from repro.graph.similarity import SimilarityExtractor


def _generic_rate(extractor, graph, targets, top_n=20):
    total = 0
    generic = 0
    for node_id in targets:
        for sim in extractor.similar_nodes(node_id, top_n):
            total += 1
            text = graph.node(sim.node_id).text
            if text in GENERIC_WORDS:
                generic += 1
    return generic / max(1, total)


def test_idf_readout_suppresses_filler(benchmark, context):
    graph = context.graph
    model = context.corpus.topic_model
    title = ("papers", "title")
    targets = [
        graph.term_node_id(t)
        for t in sorted(graph.index.terms(), key=str)
        if t.field == title and model.topics_of_word(t.text)
    ][:25]

    def run():
        with_idf = SimilarityExtractor(graph, idf_readout=True)
        without_idf = SimilarityExtractor(graph, idf_readout=False)
        return (
            _generic_rate(with_idf, graph, targets),
            _generic_rate(without_idf, graph, targets),
        )

    with_rate, without_rate = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n" + "=" * 60)
    print("idf-readout ablation (generic words in top-20 similar lists)")
    print(format_table(
        ["variant", "generic rate"],
        [["with idf readout", with_rate],
         ["without idf readout", without_rate]],
    ))

    # the readout never makes filler pollution worse, and keeps it
    # bounded; the improvement is larger on smaller/sparser corpora
    assert with_rate <= without_rate
    assert with_rate < 0.4
