"""Bench: incremental delta ingest vs a from-scratch offline rebuild.

The acceptance bar for the incremental-offline rework: folding a **1 %**
corpus delta into an existing store via
:class:`repro.offline.DeltaIngestor` must cost **< 10 %** of a full
rebuild's wall-clock, while store-backed top-k reformulations over the
ingested terms stay **bit-identical** to a from-scratch build on the
merged corpus (the layered store's recomputed rows + lazy exact
closeness make this an equality, not a tolerance).

The corpus uses a wide synthetic topic pool (60 topics x ~50 words) so
the vocabulary scales with the corpus the way real title vocabularies
do; the stock 12-topic pool saturates at a few hundred distinct words,
which would make a 1 % row delta touch >10 % of the vocabulary — a
generator artifact, not an ingest property.

Also reported: the warm-started power iteration (seeding the iterative
solver with the pre-ingest fixed point) versus a cold start on the
extended graph — the iteration savings delta ingest gets when the
corpus moves only slightly.

Script mode (used by the CI smoke job) runs a smaller corpus, checks the
bit-identity only, and writes the numbers as JSON::

    PYTHONPATH=src python benchmarks/bench_delta_ingest.py \
        --smoke --out BENCH_delta_ingest.json
"""

import json
import shutil
import time

import numpy as np
import pytest

from repro.core.reformulator import ReformulatorConfig
from repro.data.dblp_synth import SynthConfig, dblp_schema, synthesize_dblp
from repro.data.topics import Topic
from repro.graph.context import ContextualPreference
from repro.graph.randomwalk import RandomWalkEngine
from repro.graph.tat import TATGraph
from repro.index.inverted import InvertedIndex
from repro.live import LiveReformulator
from repro.offline import DeltaIngestor, OfflinePrecomputer
from repro.offline_store import write_store_v2
from repro.server.app import scored_to_dict
from repro.storage.database import Database

N_SIMILAR = 15
CLOSENESS_TOP = 100


def make_rich_topics(n_topics=60, words_per_topic=50):
    """A wide topic pool whose vocabulary grows with the corpus."""
    topics = []
    for t in range(n_topics):
        words = [f"t{t:02d}w{i:02d}" for i in range(words_per_topic)]
        clusters = []
        i = 0
        while i < len(words):
            # every 7th slot becomes a 2-word synonym cluster, mirroring
            # the quasi-synonym structure of the stock pool
            if i % 7 == 0 and i + 1 < len(words):
                clusters.append((words[i], words[i + 1]))
                i += 2
            else:
                clusters.append((words[i],))
                i += 1
        topics.append(Topic(
            topic_id=t,
            name=f"topic {t:02d}",
            clusters=tuple(clusters),
            related=(
                f"topic {(t + 1) % n_topics:02d}",
                f"topic {(t + 2) % n_topics:02d}",
            ),
        ))
    return tuple(topics)


def split_corpus(n_papers, delta_frac=0.01, seed=7):
    """Synthesize, then hold out the last ``delta_frac`` of papers."""
    full = synthesize_dblp(
        SynthConfig(
            n_authors=max(60, n_papers // 4),
            n_papers=n_papers,
            n_conferences=30,
            seed=seed,
        ),
        topics=make_rich_topics(),
    ).database
    papers = list(full.table("papers").scan())
    writes = list(full.table("writes").scan())
    n_held = max(1, int(len(papers) * delta_frac))
    held = {p["pid"] for p in papers[-n_held:]}
    delta_rows = [
        {"table": "papers", "row": p} for p in papers if p["pid"] in held
    ] + [
        {"table": "writes", "row": w} for w in writes if w["pid"] in held
    ]
    base = Database(dblp_schema())
    for name in ("conferences", "authors"):
        for row in full.table(name).scan():
            base.insert(name, row)
    for paper in papers:
        if paper["pid"] not in held:
            base.insert("papers", paper)
    for write in writes:
        if write["pid"] not in held:
            base.insert("writes", write)
    return base, delta_rows


def probe_queries(delta_rows, n_queries=5):
    """2-keyword probes drawn from the ingested titles (keywords in R)."""
    queries = []
    for item in delta_rows:
        if item["table"] != "papers":
            continue
        words = item["row"]["title"].split()
        if len(words) >= 2:
            queries.append(words[:2])
        if len(queries) >= n_queries:
            break
    return queries


def _timed_full_build(database, out_dir):
    """From-scratch offline stage over *database*, written as v2."""
    start = time.perf_counter()
    graph = TATGraph(database, InvertedIndex(database))
    store = OfflinePrecomputer(
        graph, n_similar=N_SIMILAR, closeness_top=CLOSENESS_TOP
    ).build_store(batch_size=128, walk_method="direct")
    write_store_v2(
        store, out_dir, n_shards=8,
        build_info={"n_similar": N_SIMILAR, "closeness_top": CLOSENESS_TOP},
    )
    return time.perf_counter() - start, graph


def _warm_start_stat(base_db, delta_rows):
    """Iterations saved by seeding the power iteration after an ingest.

    Measured on a *separate* corpus copy so the timing runs above stay
    undisturbed: solve one term's contextual walk on the base graph,
    extend the graph in place with the delta rows, then solve the same
    term's walk on the extended graph cold vs seeded with the padded
    pre-ingest fixed point.
    """
    graph = TATGraph(base_db, InvertedIndex(base_db))
    probe = probe_queries(delta_rows, n_queries=1)
    if not probe:
        return {}
    term = None
    for field_term in graph.index.terms():
        if field_term.text == probe[0][0]:
            term = field_term
            break
    if term is None:
        return {}
    nid = graph.term_node_id(term)
    engine = RandomWalkEngine(graph.adjacency)
    r0 = ContextualPreference(graph).preference_matrix([nid])
    before = engine.walk_many_result(r0, method="iterative")

    refs = [
        base_db.insert(item["table"], dict(item["row"]))
        for item in delta_rows
    ]
    graph.add_tuples(refs)
    r1 = ContextualPreference(graph).preference_matrix([nid])
    cold = engine.walk_many_result(r1, method="iterative")
    seeds = np.zeros_like(r1)
    seeds[: before.scores.shape[0], :] = before.scores
    warm = engine.walk_many_result(r1, method="iterative", seeds=seeds)
    assert np.allclose(warm.scores, cold.scores, atol=1e-8)
    return {
        "cold_iterations": cold.iterations,
        "warm_iterations": warm.iterations,
    }


def run(n_papers=1200, delta_frac=0.01, tmp_root="/tmp/bench_delta_ingest"):
    """Full bench: timings, bit-identity probes, warm-start stat."""
    shutil.rmtree(tmp_root, ignore_errors=True)
    base_db, delta_rows = split_corpus(n_papers, delta_frac)
    base_root = f"{tmp_root}/base"
    oracle_root = f"{tmp_root}/oracle"

    base_seconds, _ = _timed_full_build(base_db, base_root)

    ingestor = DeltaIngestor(base_db, base_root, batch_size=128)
    start = time.perf_counter()
    stats = ingestor.ingest(delta_rows)
    delta_seconds = time.perf_counter() - start

    # the comparison baseline: a from-scratch build of the merged corpus
    # (base_db now holds every row)
    full_seconds, _ = _timed_full_build(base_db, oracle_root)

    # bit-identity: layered store vs oracle store, end to end through
    # the reformulation pipeline, for queries over the ingested terms
    config = ReformulatorConfig(n_candidates=8)
    layered_live = LiveReformulator(base_db, config, relations=base_root)
    oracle_live = LiveReformulator(base_db, config, relations=oracle_root)
    queries = probe_queries(delta_rows)
    mismatches = 0
    for keywords in queries:
        got = [
            scored_to_dict(s)
            for s in layered_live.reformulate(keywords, k=5)
        ]
        want = [
            scored_to_dict(s)
            for s in oracle_live.reformulate(keywords, k=5)
        ]
        if got != want:
            mismatches += 1

    warm_db, warm_rows = split_corpus(n_papers, delta_frac)
    warm = _warm_start_stat(warm_db, warm_rows)

    return {
        "n_papers": n_papers,
        "delta_rows": len(delta_rows),
        "terms_recomputed": stats.n_recomputed,
        "terms_invalidated": stats.n_invalidated,
        "full_build_seconds": round(full_seconds, 3),
        "base_build_seconds": round(base_seconds, 3),
        "delta_ingest_seconds": round(delta_seconds, 3),
        "ratio": round(delta_seconds / full_seconds, 4),
        "probe_queries": len(queries),
        "probe_mismatches": mismatches,
        **warm,
    }


def test_delta_ingest_speed_and_exactness(benchmark):
    report = benchmark.pedantic(
        lambda: run(n_papers=1200, delta_frac=0.01),
        rounds=1, iterations=1,
    )

    print("\n" + "=" * 60)
    print(f"Delta ingest, {report['n_papers']} papers, "
          f"{report['delta_rows']} rows (1%)")
    print(f"  full rebuild       : {report['full_build_seconds']:8.2f} s")
    print(f"  delta ingest       : {report['delta_ingest_seconds']:8.2f} s "
          f"({report['terms_recomputed']} terms recomputed, "
          f"{report['terms_invalidated']} invalidated)")
    print(f"  ratio              : {report['ratio']:8.1%}")
    print(f"  probe bit-identity : {report['probe_queries']} queries, "
          f"{report['probe_mismatches']} mismatches")
    if "cold_iterations" in report:
        print(f"  warm-started walk  : {report['warm_iterations']} vs "
              f"{report['cold_iterations']} cold iterations")

    # the acceptance bar of the rework
    assert report["ratio"] < 0.10
    # store-backed top-k over ingested terms == from-scratch merged build
    assert report["probe_queries"] >= 1
    assert report["probe_mismatches"] == 0
    # seeding from the pre-ingest fixed point never iterates longer
    if "cold_iterations" in report:
        assert report["warm_iterations"] <= report["cold_iterations"]


def run_smoke(out_path, n_papers=300):
    """CI smoke: small corpus, bit-identity enforced, timings reported.

    The <10 % ratio is NOT asserted here — at a few hundred papers the
    fixed per-ingest costs (graph rebuild, layer write) dominate and the
    ratio is a corpus-size artifact; the full pytest bench covers it.
    """
    report = run(n_papers=n_papers, delta_frac=0.01)
    print(json.dumps(report, indent=2))
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {out_path}")
    ok = (
        report["probe_queries"] >= 1
        and report["probe_mismatches"] == 0
        and report.get("warm_iterations", 0)
        <= report.get("cold_iterations", 0)
    )
    return 0 if ok else 1


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small corpus, bit-identity check only",
    )
    parser.add_argument("--papers", type=int, default=None)
    parser.add_argument("--out", default="BENCH_delta_ingest.json")
    args = parser.parse_args()
    if args.smoke:
        return run_smoke(args.out, n_papers=args.papers or 300)
    report = run(n_papers=args.papers or 1200)
    print(json.dumps(report, indent=2))
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    return 0 if report["ratio"] < 0.10 and not report["probe_mismatches"] \
        else 1


if __name__ == "__main__":
    raise SystemExit(main())
