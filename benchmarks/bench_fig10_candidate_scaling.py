"""Figure 10 bench — time vs size of the hidden-state candidate lists.

Regenerates the paper's sensitivity sweep: "how many similar terms for
each input term can we fetch to ensure a fast response?"  Shapes
asserted: cost grows with the candidate-list size n (the n² transition
factor) yet stays interactive through n = 20, the paper's recommended
operating range.
"""

import pytest

from repro.experiments import fig10_candidate_scaling, format_table

SIZES = (5, 10, 15, 20, 30, 40)


def test_fig10_candidate_scaling(benchmark, context):
    report = benchmark.pedantic(
        lambda: fig10_candidate_scaling.run(
            context, sizes=SIZES, query_length=4, n_queries=20, k=10
        ),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print(
        f"Figure 10 — time vs candidates/term "
        f"(length {report.query_length}, k={report.k})"
    )
    rows = [
        [size, report.total_by_size[size].mean * 1000] for size in SIZES
    ]
    print(format_table(["candidates per term", "mean ms"], rows))

    assert set(report.total_by_size) == set(SIZES)

    # decoding cost grows with the state space
    assert (
        report.total_by_size[40].mean > report.total_by_size[5].mean
    )

    # interactive at the paper's recommended n <= 20
    assert report.total_by_size[20].mean < 0.2
