"""Bench: online serving fast path vs the uncached per-query path.

The serving rework memoizes what consecutive queries share — per-term
candidate/frequency/similarity blocks and per-pair smoothed closeness
matrices in the :class:`~repro.serving.plan_cache.PlanCache`, complete
suggestion lists in the version-aware result LRU — and adds the batched
``reformulate_many`` API that warms every distinct term once and dedupes
textually identical queries.

Acceptance bars (asserted below):

* **>= 3x QPS** serving a realistic query log (distinct queries with
  Zipf-ish repetition) through the warm batched fast path vs the
  uncached query-at-a-time reference path;
* **>= 2x warm p50** for a repeated single query on the serving path
  (LiveReformulator: plan cache + result LRU) vs the uncached path;
* **bit-identical suggestions** — every fast-path result equals the
  uncached reference, compared on ``(text, score, state_path)``.

Both lanes get a warmup pass first so extractor-internal caches (which
predate this rework and benefit both paths equally) are excluded from
the comparison: the measured delta is the plan cache, the result LRU and
batch dedup, not cold-start effects.

Script mode (used by the CI smoke job) serves a tiny log with tracing on
and dumps the observability registry as JSON::

    PYTHONPATH=src python benchmarks/bench_online_serving.py \
        --smoke --metrics-out BENCH_online_serving.json
"""

import time

import pytest

from repro.core.reformulator import Reformulator, ReformulatorConfig

K = 5
N_CANDIDATES = 15
N_DISTINCT = 24
QUERY_LENGTH = 3
WORKERS = 4


def _config(plan_cache: bool) -> ReformulatorConfig:
    return ReformulatorConfig(
        n_candidates=N_CANDIDATES, enable_plan_cache=plan_cache
    )


def _distinct_queries(context, n=N_DISTINCT, length=QUERY_LENGTH):
    """Distinct keyword queries drawn from the synthetic workload."""
    out = []
    seen = set()
    for wq in context.workloads.queries_of_length(length, 2 * n):
        key = tuple(wq.keywords)
        if key not in seen:
            seen.add(key)
            out.append(list(wq.keywords))
        if len(out) == n:
            break
    return out


def _serving_log(distinct):
    """A query log with Zipf-ish repetition: head queries recur often.

    The first third of the distinct set appears 4x, the next third 2x,
    the tail once — the shape of a real serving log, and the regime the
    result LRU and batch dedup are built for.
    """
    log = []
    third = max(1, len(distinct) // 3)
    for i, query in enumerate(distinct):
        repeats = 4 if i < third else (2 if i < 2 * third else 1)
        log.extend([query] * repeats)
    return log


def _signature(results):
    """Exact comparison key of one suggestion list."""
    return [(q.text, q.score, q.state_path) for q in results]


def _p50(samples):
    return sorted(samples)[len(samples) // 2]


def test_online_serving_speedup(benchmark, small_context):
    from repro.live import LiveReformulator

    graph = small_context.graph
    distinct = _distinct_queries(small_context)
    log = _serving_log(distinct)

    def run():
        uncached = Reformulator(graph, _config(plan_cache=False))
        cached = Reformulator(graph, _config(plan_cache=True))

        # Warmup: extractor-internal caches on both lanes, plan cache on
        # the fast lane.  Neither lane pays cold-start in the timings.
        for query in distinct:
            uncached.reformulate(query, k=K)
        cached.reformulate_many(distinct, k=K, workers=1)

        # Reference lane: the seed serving loop, one query at a time.
        start = time.perf_counter()
        reference = [uncached.reformulate(q, k=K) for q in log]
        uncached_seconds = time.perf_counter() - start

        # Fast lane: batched API over the warm plan cache.
        start = time.perf_counter()
        fast = cached.reformulate_many(log, k=K, workers=WORKERS)
        batched_seconds = time.perf_counter() - start

        for ref, got in zip(reference, fast):
            assert _signature(ref) == _signature(got)

        # Warm single-query p50: the full serving path (plan cache +
        # result LRU) vs the uncached path, same repeated query.
        query = distinct[0]
        live = LiveReformulator(small_context.database, _config(True))
        live._pipeline = cached          # reuse the built pipeline
        live._dirty = False
        live._version = 1
        assert _signature(live.reformulate(query, k=K)) == _signature(
            uncached.reformulate(query, k=K)
        )
        uncached_lat, warm_lat = [], []
        for _ in range(30):
            start = time.perf_counter()
            uncached.reformulate(query, k=K)
            uncached_lat.append(time.perf_counter() - start)
            start = time.perf_counter()
            live.reformulate(query, k=K)
            warm_lat.append(time.perf_counter() - start)
        return uncached_seconds, batched_seconds, uncached_lat, warm_lat

    uncached_s, batched_s, uncached_lat, warm_lat = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    qps_ref = len(log) / uncached_s
    qps_fast = len(log) / batched_s
    qps_speedup = qps_fast / qps_ref
    p50_ref, p50_warm = _p50(uncached_lat), _p50(warm_lat)
    p50_speedup = p50_ref / p50_warm
    print("\n" + "=" * 60)
    print(f"Serving log: {len(log)} queries ({len(distinct)} distinct)")
    print(f"  uncached per-query : {uncached_s:7.2f} s  ({qps_ref:7.1f} QPS)")
    print(f"  warm batched       : {batched_s:7.2f} s  ({qps_fast:7.1f} QPS)")
    print(f"  QPS speedup        : {qps_speedup:7.1f}x")
    print(f"  single-query p50   : {p50_ref * 1e3:.2f} ms uncached, "
          f"{p50_warm * 1e3:.3f} ms warm ({p50_speedup:.0f}x)")

    assert qps_speedup >= 3.0
    assert p50_speedup >= 2.0


def test_plan_cache_alone_is_faster(benchmark, small_context):
    """Secondary bar: the plan cache helps even without repeats/dedup.

    Serving the *distinct* set (no duplicate queries, so batch dedup and
    the result LRU contribute nothing) through the warm plan cache must
    not be slower than the uncached path — the cached HMM assembly is
    pure savings.
    """
    graph = small_context.graph
    distinct = _distinct_queries(small_context)

    def run():
        uncached = Reformulator(graph, _config(plan_cache=False))
        cached = Reformulator(graph, _config(plan_cache=True))
        for query in distinct:  # warm both lanes
            uncached.reformulate(query, k=K)
            cached.reformulate(query, k=K)
        start = time.perf_counter()
        reference = [uncached.reformulate(q, k=K) for q in distinct]
        uncached_seconds = time.perf_counter() - start
        start = time.perf_counter()
        fast = [cached.reformulate(q, k=K) for q in distinct]
        cached_seconds = time.perf_counter() - start
        for ref, got in zip(reference, fast):
            assert _signature(ref) == _signature(got)
        return uncached_seconds, cached_seconds

    uncached_s, cached_s = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ndistinct-only serving: uncached {uncached_s:.2f} s, "
          f"plan-cached {cached_s:.2f} s "
          f"({uncached_s / cached_s:.2f}x)")
    assert cached_s <= uncached_s * 1.10  # never a regression


def run_smoke(metrics_out: str, scale: str = "small") -> int:
    """Traced fast-path serving; metrics JSON written to *metrics_out*.

    The CI smoke job runs this to prove the serving path end to end —
    plan-cache and result-cache counters, batch series, span tree — and
    uploads the JSON export as a workflow artifact.
    """
    from repro import obs
    from repro.experiments import build_context
    from repro.live import LiveReformulator
    from repro.obs.export import registry_to_json, render_span_tree

    obs.reset()
    with obs.enabled():
        context = build_context(scale=scale, seed=7)
        distinct = _distinct_queries(context, n=6)
        log = _serving_log(distinct)
        live = LiveReformulator(context.database, _config(True))
        start = time.perf_counter()
        batches = live.reformulate_many(log, k=K, workers=2)
        repeated = live.reformulate(distinct[0], k=K)
        repeated_again = live.reformulate(distinct[0], k=K)
        seconds = time.perf_counter() - start
        root = obs.tracer().last_root()

    assert _signature(repeated) == _signature(repeated_again)
    plan_stats = live.pipeline().plan_cache.stats()
    result_stats = live.result_cache.stats()
    print(f"smoke: {len(batches)} queries ({len(distinct)} distinct) "
          f"in {seconds:.2f} s")
    print(f"  plan cache  : {plan_stats}")
    print(f"  result cache: {result_stats}")
    if root is not None:
        print(render_span_tree(root))
    with open(metrics_out, "w", encoding="utf-8") as handle:
        handle.write(registry_to_json(obs.registry()))
    print(f"wrote metrics export to {metrics_out}")

    registry = obs.registry()
    ok = (
        plan_stats.term_hits > 0
        and plan_stats.pair_hits > 0
        and result_stats.hits >= 1
        and registry.get("repro_batch_queries_total") is not None
        and registry.get("repro_batch_queries_total").value == len(log)
        and registry.get("repro_plan_cache_hits_total", layer="term")
        is not None
        and registry.get("repro_result_cache_hits_total") is not None
    )
    obs.reset()
    return 0 if ok else 1


def main() -> int:
    """Script entry point: ``--smoke`` plus export/scale knobs."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the traced fast-path serving only (no lane comparison)",
    )
    parser.add_argument(
        "--metrics-out", default="BENCH_online_serving.json",
        help="where to write the JSON metrics export",
    )
    parser.add_argument(
        "--scale", default="small", choices=("small", "medium", "large"),
    )
    args = parser.parse_args()
    if not args.smoke:
        parser.error("script mode currently only implements --smoke; "
                     "run the full comparison through pytest")
    return run_smoke(args.metrics_out, scale=args.scale)


if __name__ == "__main__":
    raise SystemExit(main())
