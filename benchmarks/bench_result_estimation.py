"""Bench: result-size estimation vs exact search (Section IV-C's idea).

The paper argues candidate validation must estimate result sizes rather
than run searches.  This bench quantifies the trade: rank correlation
with the exact engine and the online speedup once the summary is warm.
"""

import time

import pytest
from scipy import stats

from repro.experiments import format_table
from repro.search.estimate import ResultSizeEstimator
from repro.search.keyword import KeywordSearchEngine


def test_estimation_fidelity_and_speed(benchmark, context):
    engine = KeywordSearchEngine(
        context.tuple_graph, context.index, max_depth=2, max_results=100_000
    )
    estimator = ResultSizeEstimator(
        context.tuple_graph, context.index, depth=2
    )
    queries = context.workloads.mixed_queries(30)

    def run():
        actual = [engine.result_size(list(q.keywords)) for q in queries]
        # warm the summary, then time the pure-intersection estimates
        for q in queries:
            estimator.estimate(list(q.keywords))
        start = time.perf_counter()
        estimated = [
            estimator.estimate(list(q.keywords)) for q in queries
        ]
        estimate_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for q in queries:
            engine.search(list(q.keywords))
        search_seconds = time.perf_counter() - start
        rho, _p = stats.spearmanr(actual, estimated)
        return float(rho), search_seconds, estimate_seconds

    rho, search_s, estimate_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    print("\n" + "=" * 60)
    print("Result-size estimation vs exact search (30 queries)")
    print(format_table(
        ["measure", "value"],
        [
            ["Spearman rho vs engine", rho],
            ["exact search seconds", search_s],
            ["estimation seconds (warm)", estimate_s],
            ["speedup", search_s / max(1e-9, estimate_s)],
        ],
    ))

    # the summary must rank queries like the engine does...
    assert rho > 0.7
    # ...and answer much faster once warm
    assert estimate_s < search_s
