"""Table III bench — result size and query distance of reformulations.

Regenerates the paper's Table III on 19 title-derived queries (the paper
used 19 SIGMOD Best Paper titles): average keyword-search result count
and average TAT-graph term distance of each method's top-10 suggestions.

Shapes asserted (paper: result size 20.89/9.21/14.16, distance
1.11/0.67/0.82 for TAT/Rank/Co-occurrence): the TAT method beats the
Rank-based baseline on *both* validity (result size) and diversity
(query distance).  In our cleaner synthetic corpus the co-occurrence
baseline's result size lands near the TAT method's rather than clearly
below it — its candidates are same-topic co-occurring terms with high
joint coverage; see EXPERIMENTS.md for the discussion.
"""

import pytest

from repro.experiments import format_table, table3_result_quality
from repro.experiments.fig5_precision import METHOD_LABELS


def test_table3_result_quality(benchmark, context):
    table = benchmark.pedantic(
        lambda: table3_result_quality.run(context, n_queries=19, k=10),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print(
        f"Table III — top-{table.k} reformulations of "
        f"{table.n_queries} title queries"
    )
    rows = [
        [
            METHOD_LABELS[m],
            table.reports[m].result_size,
            table.reports[m].query_distance,
        ]
        for m in table.reports
    ]
    print(format_table(["method", "result size", "query distance"], rows))

    tat = table.reports["tat"]
    rank = table.reports["rank"]
    cooc = table.reports["cooccurrence"]

    # TAT produces more valid queries (larger coverage) than rank-based...
    assert tat.result_size > rank.result_size
    # ...and more diverse substitutions than rank-based
    assert tat.query_distance > rank.query_distance
    # co-occurrence suggestions are less diverse than... in our corpus
    # they substitute aggressively; assert only that every method's
    # diversity is positive and bounded by the extractor depth
    for report in (tat, rank, cooc):
        assert 0.0 < report.query_distance < 7.0
        assert report.result_size > 0
