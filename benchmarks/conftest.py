"""Shared benchmark fixtures.

The experiment context (corpus + offline stage + all three pipelines) is
built once per session, mirroring the paper's offline/online split: the
benchmarks time the online algorithms and report the tables/figures.
"""

import pytest

from repro.experiments import build_context


@pytest.fixture(scope="session")
def context():
    return build_context(scale="medium", seed=7)


@pytest.fixture(scope="session")
def small_context():
    return build_context(scale="small", seed=7)
