"""Bench: batched whole-vocabulary precompute vs the seed sequential path.

The offline rework batches the vocabulary — contextual preference vectors
are built as columns and solved through one cached sparse-LU
factorization, closeness rows come from the vectorized bulk BFS — where
the seed walked the vocabulary one term at a time with pure-python
diffusion, one iterative walk per term, and a dict-based BFS.

``seed_reference.py`` freezes the seed algorithms so the comparison stays
honest as the live primitives keep improving.  The acceptance bar for the
rework: **>= 3x** end-to-end on a whole-vocabulary build over the
synthetic DBLP corpus, with equivalent stored relations.

Measured on the 1-core container (400-paper corpus): seed ~8.8 ms/term,
batched ~1.8 ms/term — about 4.8x.  Numbers recorded in EXPERIMENTS.md.

Script mode (used by the CI smoke job) runs just the batched build with
tracing enabled and dumps the observability registry as JSON::

    PYTHONPATH=src python benchmarks/bench_batch_precompute.py \
        --smoke --metrics-out BENCH_precompute_metrics.json
"""

import time

import pytest

from repro.graph.closeness import ClosenessExtractor
from repro.graph.similarity import SimilarityExtractor
from repro.offline import OfflinePrecomputer, TermRelationStore, _term_key

from seed_reference import SeedClosenessExtractor, SeedContextualPreference

N_SIMILAR = 15
CLOSENESS_TOP = 100


def _seed_build(graph):
    """The seed offline stage: per-term, python loops, iterative walks."""
    precomputer = OfflinePrecomputer(
        graph,
        similarity=SimilarityExtractor(
            graph, preference=SeedContextualPreference(graph)
        ),
        closeness=SeedClosenessExtractor(graph),
        n_similar=N_SIMILAR,
        closeness_top=CLOSENESS_TOP,
    )
    store = TermRelationStore(graph)
    for term in precomputer.vocabulary():
        store._relations[_term_key(term)] = precomputer.precompute_term(term)
    return store


def _batched_build(graph):
    """The reworked offline stage: batched direct solves + bulk BFS."""
    precomputer = OfflinePrecomputer(
        graph,
        closeness=ClosenessExtractor(graph),
        n_similar=N_SIMILAR,
        closeness_top=CLOSENESS_TOP,
    )
    store = precomputer.build_store(batch_size=128, walk_method="direct")
    return store, precomputer.stats


def _spot_check_equivalence(seed_store, new_store, tol=1e-8):
    """Stored relations agree (tie-tolerant at truncation boundaries)."""
    keys = sorted(seed_store._keys())
    assert sorted(new_store._keys()) == keys
    worst = 0.0
    for key in keys[:: max(1, len(keys) // 50)]:
        ref = seed_store._get(key)
        got = new_store._get(key)
        ref_scores = sorted((s for _, s in ref.similar), reverse=True)
        got_scores = sorted((s for _, s in got.similar), reverse=True)
        assert len(ref_scores) == len(got_scores), key
        for a, b in zip(ref_scores, got_scores):
            worst = max(worst, abs(a - b))
        assert bool(ref.closeness) == bool(got.closeness), key
        shared = set(ref.closeness) & set(got.closeness)
        for other in shared:
            worst = max(worst, abs(ref.closeness[other] - got.closeness[other]))
    assert worst < tol
    return worst


def test_batched_precompute_speedup(benchmark, small_context):
    graph = small_context.graph

    def run():
        start = time.perf_counter()
        seed_store = _seed_build(graph)
        seed_seconds = time.perf_counter() - start

        start = time.perf_counter()
        new_store, stats = _batched_build(graph)
        batch_seconds = time.perf_counter() - start

        worst = _spot_check_equivalence(seed_store, new_store)
        return seed_store, seed_seconds, batch_seconds, stats, worst

    seed_store, seed_s, batch_s, stats, worst = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    n_terms = len(seed_store)
    speedup = seed_s / batch_s
    print("\n" + "=" * 60)
    print(f"Whole-vocabulary precompute, {n_terms} terms")
    print(f"  seed sequential path : {seed_s:8.2f} s "
          f"({seed_s / n_terms * 1000:6.2f} ms/term)")
    print(f"  batched pipeline     : {batch_s:8.2f} s "
          f"({batch_s / n_terms * 1000:6.2f} ms/term, "
          f"{stats.terms_per_second:.0f} terms/s)")
    print(f"  speedup              : {speedup:8.1f}x")
    print(f"  walk residual (max)  : {stats.max_residual:.2e}")
    print(f"  spot-check max |diff|: {worst:.2e}")

    # the stored relations are the same data
    assert worst < 1e-8
    # the direct solver's verified residual is far below the walk tol
    assert stats.max_residual < 1e-10
    # the acceptance bar of the rework
    assert speedup >= 3.0


def run_smoke(metrics_out: str, scale: str = "small") -> int:
    """Batched build with tracing on; metrics JSON written to *metrics_out*.

    The CI smoke job runs this to prove the instrumented offline stage
    end to end (spans + repro_offline_* series) and uploads the JSON
    export as a workflow artifact.
    """
    from repro import obs
    from repro.experiments import build_context
    from repro.obs.export import registry_to_json, render_span_tree

    obs.reset()
    with obs.enabled():
        graph = build_context(scale=scale, seed=7).graph
        start = time.perf_counter()
        store, stats = _batched_build(graph)
        seconds = time.perf_counter() - start
        root = obs.tracer().last_root()

    print(f"smoke: {len(store)} terms in {seconds:.2f} s "
          f"({stats.terms_per_second:.0f} terms/s, "
          f"max residual {stats.max_residual:.2e})")
    if root is not None:
        print(render_span_tree(root))
    with open(metrics_out, "w", encoding="utf-8") as handle:
        handle.write(registry_to_json(obs.registry()))
    print(f"wrote metrics export to {metrics_out}")

    registry = obs.registry()
    ok = (
        registry.get("repro_offline_terms_total") is not None
        and registry.get("repro_offline_terms_total").value == len(store)
        and registry.get("repro_offline_batches_total").value
        == stats.n_batches
        and root is not None
        and root.name == "precompute.build_store"
    )
    obs.reset()
    return 0 if ok else 1


def main() -> int:
    """Script entry point: ``--smoke`` plus export/scale knobs."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the traced batched build only (no seed comparison)",
    )
    parser.add_argument(
        "--metrics-out", default="BENCH_precompute_metrics.json",
        help="where to write the JSON metrics export",
    )
    parser.add_argument(
        "--scale", default="small", choices=("small", "medium", "large"),
    )
    args = parser.parse_args()
    if not args.smoke:
        parser.error("script mode currently only implements --smoke; "
                     "run the full comparison through pytest")
    return run_smoke(args.metrics_out, scale=args.scale)


if __name__ == "__main__":
    raise SystemExit(main())
