"""Bench: offline extraction cost anatomy (per-term breakdown).

Characterizes where the offline similarity stage spends its time —
context-preference construction vs the random walk itself — and compares
node-by-node walks against the batched `walk_many` path.

Finding recorded in EXPERIMENTS.md: at laptop graph sizes the batched
walk has *no* advantage (sparse·dense matmul gains nothing over repeated
matvecs, and the batch iterates until its slowest column converges), and
the context construction, not the walk, dominates per-term cost.  Both
code paths stay because they are verified equivalent and the balance can
differ on other corpora.
"""

import time

import pytest

import numpy as np

from repro.experiments import format_table
from repro.graph.context import ContextualPreference
from repro.graph.randomwalk import RandomWalkEngine
from repro.graph.similarity import SimilarityExtractor


def test_offline_cost_anatomy(benchmark, context):
    graph = context.graph
    title = ("papers", "title")
    node_ids = [
        graph.term_node_id(t)
        for t in sorted(graph.index.terms(), key=str)
        if t.field == title
    ][:64]

    def run():
        engine = RandomWalkEngine(graph.adjacency)
        preference = ContextualPreference(graph)

        start = time.perf_counter()
        prefs = np.zeros((graph.adjacency.n_nodes, len(node_ids)))
        for col, node_id in enumerate(node_ids):
            weights = preference.preference_weights(node_id)
            prefs[:, col] = engine.weighted_preference(weights)
        context_seconds = time.perf_counter() - start

        start = time.perf_counter()
        singles = [
            engine.walk(prefs[:, col]).scores
            for col in range(len(node_ids))
        ]
        single_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batched = engine.walk_many(prefs)
        batch_seconds = time.perf_counter() - start

        max_diff = max(
            float(np.abs(batched[:, col] - singles[col]).max())
            for col in range(len(node_ids))
        )
        return context_seconds, single_seconds, batch_seconds, max_diff

    context_s, single_s, batch_s, max_diff = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    print("\n" + "=" * 60)
    print(f"Offline extraction anatomy ({64} terms)")
    print(format_table(
        ["stage", "seconds"],
        [
            ["context preference build", context_s],
            ["walks, node-by-node", single_s],
            ["walks, batched (walk_many)", batch_s],
        ],
    ))
    print(f"batched vs single max |diff|: {max_diff:.2e}")

    # the two walk strategies agree numerically
    assert max_diff < 1e-6
    # neither strategy is pathologically slower than the other
    assert batch_s < 3 * single_s
    assert single_s < 3 * batch_s
    # the finding: context construction is a first-class cost, not noise
    assert context_s > 0.1 * (single_s + context_s)
