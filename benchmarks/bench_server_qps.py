"""Bench: the HTTP serving daemon vs the in-process batched pipeline.

The daemon (:mod:`repro.server`) adds a network hop, JSON codec, and
admission control on top of :meth:`LiveReformulator.reformulate_many`.
This bench quantifies that tax and proves the overload story.

Acceptance bars (asserted below):

* **QPS within 20%** of in-process ``reformulate_many`` at concurrency
  8 — 8 closed-loop keep-alive clients vs an 8-worker batch over the
  same distinct query set, both lanes decode-bound (plan cache off,
  result LRUs dropped before timing) so the comparison measures the
  serving tax on real decodes, not HTTP overhead against a cache hit;
* **zero dropped requests at 2x capacity** — every request against a
  deliberately undersized daemon resolves to 200 or a clean 429 (with
  ``Retry-After``), nothing hangs or errors, and the 429s equal
  ``repro_server_shed_total``;
* **bit-identical suggestions** — every HTTP response equals the
  direct :meth:`LiveReformulator.reformulate` answer on
  ``(text, score, state_path)``; JSON floats round-trip exactly.
* **v3 cold start >= 10x faster than the v2 JSON parse** — opening the
  binary memmap store (checksums verified) through its first query vs
  decoding the v2 shard directory;
* **v3-backed responses bit-identical to v2-backed** on the same
  queries;
* **pre-fork pool >= 2.5x QPS at 4 workers vs 1** on decode-bound
  traffic (asserted where >= 4 cores exist; reported everywhere).

Script mode (used by the CI server smoke job) boots a daemon over the
small synthetic corpus, exercises every endpoint plus a forced shed and
a degraded request, boots a 2-worker pre-fork pool (healthz /
reformulate / aggregated metrics / drain), and dumps the metrics
registry as JSON::

    PYTHONPATH=src python benchmarks/bench_server_qps.py \
        --smoke --metrics-out BENCH_server.json
"""

import os
import threading
import time

import pytest

from repro.core.reformulator import Reformulator, ReformulatorConfig

K = 10
N_CANDIDATES = 25
N_DISTINCT = 48
QUERY_LENGTH = 4
CONCURRENCY = 8
ROUNDS = 3


def _config() -> ReformulatorConfig:
    # Plan cache off in BOTH lanes: with it warm, a "decode" is a
    # sub-millisecond cache assembly and the comparison would measure
    # HTTP overhead against a no-op.  The serving tax is meaningful
    # relative to the real per-query decode, which is what production
    # traffic (unbounded vocabulary, finite cache) actually pays.
    return ReformulatorConfig(
        n_candidates=N_CANDIDATES, enable_plan_cache=False
    )


def _distinct_queries(context, n=N_DISTINCT, length=QUERY_LENGTH):
    out = []
    seen = set()
    for wq in context.workloads.queries_of_length(length, 2 * n):
        key = tuple(wq.keywords)
        if key not in seen:
            seen.add(key)
            out.append(list(wq.keywords))
        if len(out) == n:
            break
    return out


def _make_live(context):
    """A LiveReformulator sharing the context's prebuilt graph."""
    from repro.live import LiveReformulator

    live = LiveReformulator(context.database, _config())
    live._pipeline = Reformulator(context.graph, _config())
    live._dirty = False
    live._version = 1
    return live


def _make_server(context, **config_kwargs):
    from repro.server import ReformulationServer, ServerConfig

    defaults = dict(
        port=0, max_concurrency=CONCURRENCY, queue_depth=4 * CONCURRENCY,
        warm_on_start=False,
    )
    defaults.update(config_kwargs)
    return ReformulationServer(
        _make_live(context), ServerConfig(**defaults)
    ).start()


def _signature(results):
    return [(q.text, q.score, q.state_path) for q in results]


def _closed_loop(port, queries, n_clients=CONCURRENCY, deadline_ms=None):
    """Drive *queries* through *n_clients* keep-alive connections.

    Returns (wall_seconds, responses) with responses in query order.
    Closed-loop: each client immediately issues its next query when the
    previous response lands — the standard saturation load shape.
    """
    from repro.server import ServerClient

    responses = [None] * len(queries)
    cursor = {"next": 0}
    lock = threading.Lock()
    errors = []

    def worker():
        try:
            with ServerClient(port=port) as client:
                while True:
                    with lock:
                        i = cursor["next"]
                        if i >= len(queries):
                            return
                        cursor["next"] = i + 1
                    responses[i] = client.reformulate(
                        queries[i], k=K, deadline_ms=deadline_ms
                    )
        except Exception as exc:  # noqa: BLE001 - a drop fails the bench
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    if errors:
        raise AssertionError(f"dropped requests: {errors[:3]}")
    return seconds, responses


def test_server_qps_within_20pct_of_inprocess(benchmark, small_context):
    """Primary bar: the HTTP hop costs at most 20% QPS at concurrency 8."""
    from repro.server import suggestions_signature

    queries = _distinct_queries(small_context)
    server = _make_server(small_context)
    try:
        live = _make_live(small_context)

        def run():
            # Warm extractor-internal caches on both lanes once; the
            # measured rounds then drop the result LRUs so every pass
            # decodes every query.  Best-of-ROUNDS per lane irons out
            # scheduler noise — the bar compares capability, not one
            # lucky or unlucky scheduling of 16 threads.
            live.reformulate_many(queries, k=K, workers=CONCURRENCY)
            server.live.reformulate_many(queries, k=K, workers=CONCURRENCY)
            inprocess_times, server_times = [], []
            expected = responses = None
            for _ in range(ROUNDS):
                live.result_cache.clear()
                start = time.perf_counter()
                expected = live.reformulate_many(
                    queries, k=K, workers=CONCURRENCY
                )
                inprocess_times.append(time.perf_counter() - start)

                server.live.result_cache.clear()
                seconds, responses = _closed_loop(server.port, queries)
                server_times.append(seconds)
            return min(inprocess_times), min(server_times), \
                expected, responses

        inprocess_s, server_s, expected, responses = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        qps_inprocess = len(queries) / inprocess_s
        qps_server = len(queries) / server_s
        ratio = qps_server / qps_inprocess
        print("\n" + "=" * 60)
        print(f"{len(queries)} distinct queries, concurrency {CONCURRENCY}")
        print(f"  in-process batch : {inprocess_s:6.2f} s "
              f"({qps_inprocess:7.1f} QPS)")
        print(f"  HTTP closed-loop : {server_s:6.2f} s "
              f"({qps_server:7.1f} QPS)")
        print(f"  server/in-process: {ratio:6.2f}x")

        for response, reference in zip(responses, expected):
            assert response.status == 200
            assert not response.json["degraded"]
            assert suggestions_signature(
                response.json["suggestions"]
            ) == _signature(reference)
        assert ratio >= 0.8
    finally:
        server.shutdown()


def test_overload_2x_capacity_sheds_cleanly(small_context):
    """At 2x capacity nothing is dropped: every request resolves to 200
    or an accounted-for 429, and the shed counter matches exactly."""
    from repro import obs

    queries = _distinct_queries(small_context)
    capacity = 2  # 2 executing + 2 queued...
    server = _make_server(
        small_context, max_concurrency=capacity, queue_depth=capacity,
        queue_timeout_s=0.05,
    )
    obs.reset()
    try:
        # ...driven by 2x (executing + queued) closed-loop clients.
        n_clients = 2 * (capacity + capacity)
        log = [queries[i % len(queries)] for i in range(6 * n_clients)]
        with obs.enabled():
            server.live.result_cache.clear()
            _, responses = _closed_loop(
                server.port, log, n_clients=n_clients
            )
        statuses = [response.status for response in responses]
        n_ok = statuses.count(200)
        n_shed = statuses.count(429)
        print(f"\noverload: {len(log)} requests -> "
              f"{n_ok} served, {n_shed} shed")
        assert n_ok + n_shed == len(log)  # nothing dropped or 5xx
        assert n_ok >= 1
        for response in responses:
            if response.status == 429:
                assert response.retry_after >= 1
        shed_counter = obs.registry().get("repro_server_shed_total")
        stats = server.admission.stats()
        assert stats.admitted == n_ok
        assert stats.shed == n_shed
        if n_shed:
            assert shed_counter is not None
            assert shed_counter.value == n_shed
    finally:
        obs.reset()
        server.shutdown()


# --------------------------------------------------------------------- #
# store format legs: v3 cold start + bit-identity, pre-fork scaling
# --------------------------------------------------------------------- #

COLD_START_MIN_RATIO = 10.0
PREFORK_MIN_RATIO = 2.5
PREFORK_WORKERS = 4
COLD_ROUNDS = 3


@pytest.fixture(scope="module")
def format_roots(context, tmp_path_factory):
    """One precomputed relation store persisted as both v2 and v3.

    Medium corpus, production-default row sizes (n_similar=20,
    closeness_top=200): big enough that format cost dominates fixed
    open overhead, small enough to build in seconds.
    """
    from repro.graph.closeness import ClosenessExtractor
    from repro.offline import OfflinePrecomputer
    from repro.storage.binary import write_store_v3

    precomputer = OfflinePrecomputer(
        context.graph, closeness=ClosenessExtractor(context.graph)
    )
    store = precomputer.build_store(batch_size=128, walk_method="direct")
    base = tmp_path_factory.mktemp("store-formats")
    v2_root = store.save_sharded(base / "v2", n_shards=8)
    v3_root = write_store_v3(store, base / "v3")
    return store, v2_root, v3_root


def test_v3_cold_start_10x_faster_than_v2(format_roots, context):
    """Cold start bar: opening the v3 memmap store (checksums verified)
    through its first query beats decoding the v2 JSON shards >= 10x.

    The v2 number is manifest + *all* shards decoded — what a worker
    must pay before arbitrary queries stop stalling on lazy shard
    loads, and exactly the parse the binary format deletes.  The v3
    number keeps its default integrity pass (sha256 over every block),
    so the bar is conservative: mmap open with verification still has
    to beat the parse by 10x.
    """
    from repro.offline import TermRelationStore
    from repro.storage.binary import BinaryTermRelationStore

    store, v2_root, v3_root = format_roots
    graph = context.graph
    probe = _distinct_queries(context, n=1)[0]
    node_ids = [graph.resolve_text_one(text) for text in probe[:2]]

    def first_query(loaded):
        return (
            loaded.closeness(node_ids[0], node_ids[-1]),
            [s.node_id for s in loaded.similar_nodes(node_ids[0], 5)],
        )

    def time_v2():
        start = time.perf_counter()
        loaded = TermRelationStore.load(v2_root, graph)
        dict(loaded._items())  # decode every shard
        answer = first_query(loaded)
        return time.perf_counter() - start, answer

    def time_v3():
        start = time.perf_counter()
        loaded = BinaryTermRelationStore.load(v3_root, graph)
        answer = first_query(loaded)
        return time.perf_counter() - start, answer

    v2_runs = [time_v2() for _ in range(COLD_ROUNDS)]
    v3_runs = [time_v3() for _ in range(COLD_ROUNDS)]
    # same first-query answer out of both formats, bit for bit
    assert len({repr(answer) for _, answer in v2_runs + v3_runs}) == 1
    v2_s = min(seconds for seconds, _ in v2_runs)
    v3_s = min(seconds for seconds, _ in v3_runs)
    ratio = v2_s / v3_s
    print("\n" + "=" * 60)
    print(f"cold start over {len(store)} terms")
    print(f"  v2 JSON shards : {v2_s * 1e3:8.1f} ms (full decode)")
    print(f"  v3 memmap open : {v3_s * 1e3:8.1f} ms (verified + first query)")
    print(f"  v2/v3          : {ratio:8.1f}x")
    assert ratio >= COLD_START_MIN_RATIO


def test_v3_responses_bit_identical_to_v2(format_roots, context):
    """Store-backed reformulations agree across formats bit for bit."""
    from repro.offline import TermRelationStore

    _store, v2_root, v3_root = format_roots
    graph = context.graph
    v2 = TermRelationStore.load(v2_root, graph)
    v3 = TermRelationStore.load(v3_root, graph)
    config = _config()
    pipeline_v2 = Reformulator(graph, config, similarity=v2, closeness=v2)
    pipeline_v3 = Reformulator(graph, config, similarity=v3, closeness=v3)
    for query in _distinct_queries(context, n=8):
        expected = [
            (sq.terms, sq.score, tuple(sq.state_path))
            for sq in pipeline_v2.reformulate(query, k=K)
        ]
        got = [
            (sq.terms, sq.score, tuple(sq.state_path))
            for sq in pipeline_v3.reformulate(query, k=K)
        ]
        assert got == expected


def _make_live_nocache(context):
    """Decode-bound pipeline: plan cache off AND result LRU off, so the
    pre-fork scaling leg measures per-request decode throughput rather
    than per-worker cache hit rates."""
    from repro.live import LiveReformulator

    config = ReformulatorConfig(
        n_candidates=N_CANDIDATES, enable_plan_cache=False,
        result_cache_size=0,
    )
    live = LiveReformulator(context.database, config)
    live._pipeline = Reformulator(context.graph, config)
    live._dirty = False
    live._version = 1
    return live


def _prefork_qps(context, queries, n_workers):
    from repro.server import PreforkServer, ServerConfig

    live = _make_live_nocache(context)  # built pre-fork: workers share CoW
    pool = PreforkServer(
        lambda: live,
        ServerConfig(
            port=0, max_concurrency=CONCURRENCY,
            queue_depth=4 * CONCURRENCY, warm_on_start=False,
        ),
        workers=n_workers,
        enable_metrics=False,
    )
    pool.start(ready_timeout_s=120.0)
    try:
        _closed_loop(pool.port, queries)  # warm connections + extractors
        best = min(
            _closed_loop(pool.port, queries)[0] for _ in range(ROUNDS)
        )
    finally:
        pool.shutdown()
    return len(queries) / best


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="pre-fork pool requires os.fork"
)
def test_prefork_4_workers_scales_qps(small_context):
    """Scaling bar: >= 2.5x QPS at 4 workers vs 1 on decode-bound load.

    The ratio is only asserted where >= 4 cores exist (CI runners);
    on smaller machines the leg still runs both pools end to end and
    reports the measured ratio, proving the multi-worker path works.
    """
    queries = _distinct_queries(small_context)
    qps_1 = _prefork_qps(small_context, queries, 1)
    qps_4 = _prefork_qps(small_context, queries, PREFORK_WORKERS)
    ratio = qps_4 / qps_1
    print("\n" + "=" * 60)
    print(f"{len(queries)} distinct queries, {CONCURRENCY} clients")
    print(f"  1 worker : {qps_1:7.1f} QPS")
    print(f"  {PREFORK_WORKERS} workers: {qps_4:7.1f} QPS")
    print(f"  scaling  : {ratio:6.2f}x")
    if (os.cpu_count() or 1) < PREFORK_WORKERS:
        pytest.skip(
            f"{os.cpu_count()} cores < {PREFORK_WORKERS}; "
            f"measured {ratio:.2f}x, ratio not asserted"
        )
    assert ratio >= PREFORK_MIN_RATIO


def run_smoke(metrics_out: str, scale: str = "small") -> int:
    """Boot the daemon, exercise every endpoint, export the registry.

    The CI server smoke job runs this after the curl-based liveness
    checks: it proves the in-process client, bit-identical responses,
    a forced shed, a degraded answer, and the metrics series end to end.
    """
    from repro import obs
    from repro.experiments import build_context
    from repro.obs.export import registry_to_json
    from repro.server import ServerClient, suggestions_signature

    obs.reset()
    context = build_context(scale=scale, seed=7)
    queries = _distinct_queries(context, n=6)
    failures = []

    def check(name, condition):
        print(f"  {'ok' if condition else 'FAIL'}: {name}")
        if not condition:
            failures.append(name)

    with obs.enabled():
        server = _make_server(context, max_concurrency=2, queue_depth=2)
        try:
            with ServerClient(port=server.port) as client:
                check("healthz", client.healthz().status == 200)
                check("readyz", client.readyz().status == 200)

                response = client.reformulate(queries[0], k=K)
                direct = server.live.reformulate(queries[0], k=K)
                check("reformulate 200", response.status == 200)
                check(
                    "bit-identical vs in-process",
                    suggestions_signature(response.json["suggestions"])
                    == _signature(direct),
                )

                batch = client.reformulate_batch(queries, k=K, workers=2)
                check(
                    "batch 200 with all entries",
                    batch.status == 200
                    and len(batch.json["results"]) == len(queries),
                )

                term = queries[0][0]
                check("similar 200", client.similar(term).status == 200)

                degraded = client.reformulate(
                    queries[1], k=K, deadline_ms=1
                )
                check(
                    "tight deadline degrades",
                    degraded.status == 200
                    and degraded.json["degraded"] is True
                    and degraded.json["suggestions"],
                )

                with server.admission.admit(), server.admission.admit():
                    shed = client.reformulate(queries[2], k=K)
                check(
                    "saturated daemon sheds 429 + Retry-After",
                    shed.status == 429 and shed.retry_after >= 1,
                )

                check(
                    "admin reload",
                    client.admin_reload().json.get("reloaded") is True,
                )
                metrics_text = client.metrics().text
                for series in (
                    "repro_server_requests_total",
                    "repro_server_request_seconds",
                    "repro_server_shed_total",
                    "repro_server_degraded_total",
                ):
                    check(f"metrics exports {series}",
                          series in metrics_text)
        finally:
            server.shutdown()
        check("daemon drained", server.draining)

    # pre-fork pool leg: 2 workers over the same corpus — boot, serve,
    # aggregate metrics, drain.  Mirrors `repro serve --workers 2`.
    if hasattr(os, "fork"):
        from repro.server import PreforkServer, ServerConfig

        live = _make_live(context)  # built pre-fork: workers share CoW
        pool = PreforkServer(
            lambda: live,
            ServerConfig(
                port=0, max_concurrency=4, queue_depth=8,
                warm_on_start=False, metrics_flush_interval_s=0.2,
            ),
            workers=2,
        )
        pool.start(ready_timeout_s=120.0)
        try:
            check("pool boots 2 workers", len(pool.worker_pids) == 2)
            with ServerClient(port=pool.port) as client:
                check("pool healthz", client.healthz().status == 200)
                response = client.reformulate(queries[0], k=K)
                check(
                    "pool reformulate bit-identical",
                    response.status == 200
                    and suggestions_signature(response.json["suggestions"])
                    == _signature(live.reformulate(queries[0], k=K)),
                )
                deadline = time.monotonic() + 15.0
                aggregated = ""
                while time.monotonic() < deadline:
                    aggregated = client.metrics_aggregate().text
                    if "repro_server_requests_total" in aggregated:
                        break
                    time.sleep(0.2)
                check(
                    "pool aggregate metrics",
                    "repro_server_requests_total" in aggregated,
                )
        finally:
            pool.shutdown()
        check("pool drained", pool.worker_pids == [])
    else:  # pragma: no cover - non-posix fallback
        print("  skip: pre-fork pool (no os.fork)")

    with open(metrics_out, "w", encoding="utf-8") as handle:
        handle.write(registry_to_json(obs.registry()))
    print(f"wrote metrics export to {metrics_out}")
    obs.reset()
    if failures:
        print(f"smoke FAILED: {failures}")
        return 1
    print("smoke passed")
    return 0


def main() -> int:
    """Script entry point: ``--smoke`` plus export/scale knobs."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="endpoint walk + shed + degrade on a tiny corpus (CI)",
    )
    parser.add_argument(
        "--metrics-out", default="BENCH_server.json",
        help="where to write the JSON metrics export",
    )
    parser.add_argument(
        "--scale", default="small", choices=("small", "medium", "large"),
    )
    args = parser.parse_args()
    if not args.smoke:
        parser.error("script mode currently only implements --smoke; "
                     "run the full comparison through pytest")
    return run_smoke(args.metrics_out, scale=args.scale)


if __name__ == "__main__":
    raise SystemExit(main())
