"""Frozen copy of the seed's sequential offline-extraction path.

The live primitives were vectorized and batched in the precompute rework,
so timing "new code, batch_size=1" would understate the change.  This
module preserves the original per-term algorithms — pure-python dict
diffusion for the context, one iterative walk per term, dict-based BFS
for closeness — exactly as the seed ran them, as the baseline that
``bench_batch_precompute.py`` measures the batched pipeline against.

Only used by benchmarks; not part of the package.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.closeness import ClosenessExtractor, PathInfo
from repro.graph.context import ContextEntry, ContextualPreference
from repro.graph.nodes import NodeClass, NodeKind


class SeedContextualPreference(ContextualPreference):
    """The seed's per-node python-loop context construction."""

    def neighborhood_mass(self, node_id: int) -> Dict[int, float]:
        mass: Dict[int, float] = {}
        frontier: Dict[int, float] = {node_id: 1.0}
        visited = {node_id}
        for _hop in range(self.hops):
            expand = frontier
            if (
                self.frontier_cap is not None
                and len(expand) > self.frontier_cap
            ):
                top = sorted(
                    expand.items(), key=lambda item: (-item[1], item[0])
                )[: self.frontier_cap]
                expand = dict(top)
            next_frontier: Dict[int, float] = {}
            for node, node_mass in expand.items():
                neighbors = list(self.graph.neighbors(node))
                total_weight = sum(w for _n, w in neighbors)
                if total_weight <= 0:
                    continue
                for nbr, weight in neighbors:
                    if nbr in visited:
                        continue
                    next_frontier[nbr] = next_frontier.get(nbr, 0.0) + (
                        node_mass * weight / total_weight
                    )
            if not next_frontier:
                break
            for node, node_mass in next_frontier.items():
                mass[node] = mass.get(node, 0.0) + node_mass
                visited.add(node)
            frontier = {
                node: node_mass * self.hop_decay
                for node, node_mass in next_frontier.items()
            }
        return mass

    def context_entries(self, node_id: int) -> List[ContextEntry]:
        by_field: Dict[NodeClass, List[ContextEntry]] = {}
        for ctx_id, ctx_mass in self.neighborhood_mass(node_id).items():
            field = self.graph.class_of(ctx_id)
            entry = ContextEntry(
                node_id=ctx_id,
                field=field,
                field_weight=1.0 / self.field_cardinality(field),
                node_weight=ctx_mass * self.node_idf(ctx_id),
            )
            by_field.setdefault(field, []).append(entry)
        kept: List[ContextEntry] = []
        for entries in by_field.values():
            entries.sort(key=lambda e: (-e.weight, e.node_id))
            kept.extend(entries[: self.top_per_field])
        return kept


class SeedClosenessExtractor(ClosenessExtractor):
    """The seed's per-source dict-based pruned BFS."""

    def paths_from(self, source: int) -> Dict[int, PathInfo]:
        cached = self._cache.get(source)
        if cached is not None:
            return cached
        info: Dict[int, PathInfo] = {source: PathInfo(0, 1.0)}
        frontier: Dict[int, float] = {source: 1.0}
        for depth in range(1, self.max_depth + 1):
            expand = frontier
            if self.beam_width is not None and len(expand) > self.beam_width:
                top = sorted(
                    expand.items(), key=lambda item: (-item[1], item[0])
                )[: self.beam_width]
                expand = dict(top)
            next_frontier: Dict[int, float] = {}
            for node, mass in expand.items():
                step_mass = mass
                if self.path_weighting == "degree" and depth > 1:
                    n_out = len(self.graph.adjacency.neighbor_ids(node))
                    if n_out == 0:
                        continue
                    step_mass = mass / n_out
                for nbr in self.graph.adjacency.neighbor_ids(node):
                    nbr = int(nbr)
                    if nbr in info and info[nbr].distance < depth:
                        continue
                    next_frontier[nbr] = next_frontier.get(nbr, 0.0) + step_mass
            for node, mass in next_frontier.items():
                if node not in info:
                    info[node] = PathInfo(depth, mass)
            frontier = {
                node: mass
                for node, mass in next_frontier.items()
                if info[node].distance == depth
            }
            if not frontier:
                break
        self._cache[source] = info
        return info

    def close_terms(self, node_id: int, top_n: int = 10) -> List[Tuple[int, float]]:
        reached = self.paths_from(node_id)
        scored = [
            (other, pinfo.closeness)
            for other, pinfo in reached.items()
            if other != node_id
            and self.graph.node(other).kind is NodeKind.TERM
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:top_n]
