"""Figure 8 bench — Algorithm 3 stage times by query length.

Regenerates the paper's two-stage breakdown (Viterbi initialization vs A*
search).  Shapes asserted: both stages grow with query length and the
total remains far below the paper's 0.2 s interactive bound.

Known constant-factor deviation: the paper found the Viterbi stage more
costly; in this implementation the Viterbi table is vectorized numpy
while the A* expansion is pure Python, so the stage ratio flips.  The
stage *curves* (both increasing in m, total interactive) match.
"""

import pytest

from repro.experiments import fig8_stage_breakdown, format_table


def test_fig8_stage_breakdown(benchmark, context):
    report = benchmark.pedantic(
        lambda: fig8_stage_breakdown.run(
            context, n_queries=160, max_len=8, k=10
        ),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print(f"Figure 8 — Alg 3 stage times (k={report.k})")
    rows = [
        [
            length,
            report.viterbi_by_length[length].mean * 1000,
            report.astar_by_length[length].mean * 1000,
            report.total_mean(length) * 1000,
        ]
        for length in sorted(report.viterbi_by_length)
    ]
    print(format_table(["length", "viterbi ms", "a* ms", "total ms"], rows))

    lengths = sorted(report.viterbi_by_length)
    assert lengths == list(range(1, 9))

    # both stages grow from short to long queries
    assert (
        report.viterbi_by_length[8].mean > report.viterbi_by_length[1].mean
    )
    assert report.astar_by_length[8].mean > report.astar_by_length[1].mean

    # interactive end to end
    assert report.total_mean(8) < 0.2
